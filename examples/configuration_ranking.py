"""Configuration ranking with enhanced cross-validation (Section IV-C).

Beyond full HPO runs, the paper's fold construction and metric apply
directly to k-fold cross-validation: this example cross-validates the
18-configuration grid on a small subset with three CV methods (random
k-fold, stratified k-fold, and the paper's grouped general+special folds
with the UCB metric), then compares the *predicted* configuration ranking
against the ground-truth test ranking via nDCG.

Run with::

    python examples/configuration_ranking.py [--ratio 0.2]
"""

from __future__ import annotations

import argparse

from repro.core import CrossValidationStudy
from repro.datasets import load_dataset
from repro.experiments import build_cv_evaluator, cv_experiment_space


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="splice")
    parser.add_argument("--scale", type=float, default=0.6)
    parser.add_argument("--ratio", type=float, default=0.2, help="subset size as a budget fraction")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = load_dataset(args.dataset, scale=args.scale, random_state=args.seed)
    configurations = cv_experiment_space().grid()
    print(f"{dataset.name}: ranking {len(configurations)} configurations "
          f"from a {args.ratio:.0%} subset\n")

    # Ground truth: every configuration refit on the full training set.
    truth_evaluator = build_cv_evaluator("stratified", dataset, max_iter=25)
    study = CrossValidationStudy(truth_evaluator, configurations)
    truth = study.ground_truth(dataset.X_test, dataset.y_test, random_state=args.seed)

    header = f"{'CV method':<12}{'recommended config acc.':>25}{'nDCG':>8}"
    print(header)
    print("-" * len(header))
    for variant in ("random", "stratified", "ours"):
        evaluator = build_cv_evaluator(variant, dataset, max_iter=25, random_state=args.seed)
        ranking = CrossValidationStudy(evaluator, configurations).run(
            subset_ratio=args.ratio, random_state=args.seed
        )
        recommended_accuracy = truth[ranking.recommended_index]
        print(f"{variant:<12}{recommended_accuracy:>25.4f}{ranking.ndcg(truth):>8.3f}")

    best = configurations[int(truth.argmax())]
    print(f"\nactual best configuration: {best} (test score {truth.max():.4f})")


if __name__ == "__main__":
    main()
