"""Regression HPO: tuning an MLP regressor on the kc-house analogue.

The paper notes its grouping strategy transfers to regression by binning
numeric targets into magnitude categories (Section III-A).  This example
runs SHA vs SHA+ on a regression problem with the R² metric.

Run with::

    python examples/house_price_regression.py [--scale 0.3]
"""

from __future__ import annotations

import argparse

from repro import optimize
from repro.core import MLPModelFactory
from repro.datasets import load_dataset
from repro.experiments import paper_search_space


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="kc-house", choices=["kc-house", "molecules"])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-iter", type=int, default=30)
    args = parser.parse_args()

    dataset = load_dataset(args.dataset, scale=args.scale, random_state=args.seed)
    print(f"{dataset.name}: {dataset.n_train} rows, {dataset.n_features} features (regression)")

    space = paper_search_space(2)
    factory = MLPModelFactory(task="regression", max_iter=args.max_iter, solver="lbfgs")

    for method in ("sha", "sha+"):
        outcome = optimize(
            dataset.X_train,
            dataset.y_train,
            space,
            method=method,
            metric="r2",
            task="regression",
            model_factory=factory,
            random_state=args.seed,
            configurations=space.grid(),
        )
        test_r2 = outcome.model.score(dataset.X_test, dataset.y_test)
        print(f"\n{method.upper():>5}: best config = {outcome.best_config}")
        print(f"       train R2 = {outcome.train_score:.4f}   test R2 = {test_r2:.4f}   "
              f"time = {outcome.result.wall_time:.1f}s")


if __name__ == "__main__":
    main()
