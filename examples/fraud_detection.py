"""Imbalanced fraud detection: HPO with the F1 metric.

The paper's introduction motivates bandit-based HPO for costly,
high-dimensional problems; the ``fraud`` analogue (1.5% positive class)
shows why the enhanced evaluation matters: random small subsets often
contain almost no positives, so the vanilla folds score configurations
unreliably, while the group-aware folds keep both classes represented.

This example compares all three enhanced bandit methods (SHA+, HB+, BOHB+)
against their vanilla versions.

Run with::

    python examples/fraud_detection.py [--scale 0.4]
"""

from __future__ import annotations

import argparse

from repro import optimize
from repro.core import MLPModelFactory
from repro.datasets import load_dataset
from repro.experiments import paper_search_space


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-iter", type=int, default=20)
    args = parser.parse_args()

    dataset = load_dataset("fraud", scale=args.scale, random_state=args.seed)
    positives = (dataset.y_train == 1).mean()
    print(f"fraud analogue: {dataset.n_train} rows, {positives:.2%} positive class")

    space = paper_search_space(2)
    factory = MLPModelFactory(task="classification", max_iter=args.max_iter)

    header = f"{'method':<8}{'test F1':>10}{'time (s)':>10}"
    print("\n" + header)
    print("-" * len(header))
    for method in ("sha", "sha+", "hb", "hb+", "bohb", "bohb+"):
        outcome = optimize(
            dataset.X_train,
            dataset.y_train,
            space,
            method=method,
            metric="f1",
            model_factory=factory,
            random_state=args.seed,
            configurations=space.grid(),
            searcher_kwargs={"min_budget_fraction": 1 / 9} if method.startswith(("hb", "bohb")) else None,
        )
        from repro.core import make_scorer

        test_f1 = make_scorer("f1")(outcome.model, dataset.X_test, dataset.y_test)
        print(f"{method:<8}{test_f1:>10.4f}{outcome.result.wall_time:>10.1f}")


if __name__ == "__main__":
    main()
