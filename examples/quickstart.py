"""Quickstart: tune an MLP with enhanced Successive Halving (SHA+).

Runs the paper's headline comparison on one dataset: vanilla SHA vs the
enhanced SHA+ (grouped subset sampling, general+special folds, variance- and
size-aware scoring) over the Table III search space.

Run with::

    python examples/quickstart.py [--scale 0.5] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import optimize
from repro.core import MLPModelFactory
from repro.datasets import load_dataset
from repro.experiments import paper_search_space


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="australian", help="registry dataset name")
    parser.add_argument("--scale", type=float, default=0.5, help="dataset size multiplier")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-iter", type=int, default=25, help="MLP epochs per evaluation")
    args = parser.parse_args()

    dataset = load_dataset(args.dataset, scale=args.scale, random_state=args.seed)
    print(f"dataset: {dataset.name}  ({dataset.n_train} train rows, "
          f"{dataset.n_features} features, task={dataset.task}, metric={dataset.metric})")

    # 2 hyperparameters -> 18 configurations; bump to paper_search_space(4)
    # for the paper's full 162-configuration space.
    space = paper_search_space(2)
    factory = MLPModelFactory(
        task="regression" if dataset.task == "regression" else "classification",
        max_iter=args.max_iter,
    )

    for method in ("sha", "sha+"):
        outcome = optimize(
            dataset.X_train,
            dataset.y_train,
            space,
            method=method,
            metric=dataset.metric,
            model_factory=factory,
            random_state=args.seed,
            configurations=space.grid(),
        )
        test_score = outcome.model.score(dataset.X_test, dataset.y_test)
        print(f"\n{method.upper():>5}: best config = {outcome.best_config}")
        print(f"       train score = {outcome.train_score:.4f}   "
              f"test score = {test_score:.4f}   "
              f"search time = {outcome.result.wall_time:.1f}s   "
              f"trials = {outcome.result.n_trials}")


if __name__ == "__main__":
    main()
