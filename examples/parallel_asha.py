"""Parallel HPO: real engine-backed execution vs simulated worker scaling.

ASHA (Li et al., 2018) removes SHA's synchronisation barriers.  This
example runs it in both of the package's execution modes:

1. **Real execution** through :class:`repro.engine.TrialEngine`: trials
   are dispatched to a ``SerialExecutor`` or a process-pool
   ``ParallelExecutor``; per-trial derived seeds keep every evaluation
   reproducible, the engine memoizes repeated (config, budget) pairs, and
   ``measured_makespan_`` is actual wall-clock time.
2. **Simulation** (no engine): ``n_workers`` *virtual* workers advance an
   event clock by each evaluation's measured cost — useful to ask "how
   long would this search take on N machines?" without owning them.

PASHA's progressive rung unlocking is shown alongside: it spends less
total budget when cheap budgets already rank configurations consistently.

Run with::

    python examples/parallel_asha.py [--scale 0.4] [--workers 4]
"""

from __future__ import annotations

import argparse

from repro.bandit import ASHA, PASHA
from repro.core import MLPModelFactory, grouped_evaluator, vanilla_evaluator
from repro.datasets import load_dataset
from repro.engine import ParallelExecutor, SerialExecutor, TrialEngine
from repro.experiments import paper_search_space


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-iter", type=int, default=15)
    parser.add_argument("--workers", type=int, default=4,
                        help="process-pool size for the real-executor run")
    args = parser.parse_args()

    dataset = load_dataset("NTICUSdroid", scale=args.scale, random_state=args.seed)
    space = paper_search_space(2)
    pool = space.grid()
    factory = MLPModelFactory(task="classification", max_iter=args.max_iter)
    print(f"{dataset.name}: {len(pool)} configurations, {dataset.n_train} rows\n")

    # -- real execution through the engine ---------------------------------
    print("engine-backed ASHA (real executors, memoized, fault-tolerant)")
    header = (f"{'executor':<22}{'best cfg acc':>14}{'measured (s)':>14}"
              f"{'cache hits':>12}")
    print(header)
    print("-" * len(header))
    for label, executor, n_workers in (
        ("serial", SerialExecutor(), 1),
        (f"process pool x{args.workers}", ParallelExecutor(n_workers=args.workers), args.workers),
    ):
        evaluator = vanilla_evaluator(dataset.X_train, dataset.y_train, factory,
                                      metric=dataset.metric)
        with TrialEngine(executor=executor) as engine:
            asha = ASHA(space, evaluator, random_state=args.seed,
                        n_workers=n_workers, engine=engine)
            result = asha.fit(configurations=pool)
            model = evaluator.fit_full(result.best_config, random_state=args.seed)
            accuracy = model.score(dataset.X_test, dataset.y_test)
            print(f"{label:<22}{accuracy:>14.4f}{asha.measured_makespan_:>14.2f}"
                  f"{engine.stats.cache_hits:>12}")

    # -- simulated worker scaling ------------------------------------------
    print("\nsimulated ASHA (virtual workers over an event clock)")
    header = f"{'searcher':<10}{'workers':>8}{'best cfg acc':>14}{'work (s)':>10}{'makespan (s)':>14}"
    print(header)
    print("-" * len(header))
    for n_workers in (1, 4, 8):
        evaluator = vanilla_evaluator(dataset.X_train, dataset.y_train, factory, metric=dataset.metric)
        asha = ASHA(space, evaluator, random_state=args.seed, n_workers=n_workers)
        result = asha.fit(configurations=pool)
        model = evaluator.fit_full(result.best_config, random_state=args.seed)
        accuracy = model.score(dataset.X_test, dataset.y_test)
        print(f"{'ASHA':<10}{n_workers:>8}{accuracy:>14.4f}"
              f"{result.total_evaluation_cost:>10.1f}{asha.simulated_makespan_:>14.1f}")

    # PASHA / PASHA+ (sequential scheduling; the point is total budget).
    for label, make_evaluator in (
        ("PASHA", lambda: vanilla_evaluator(dataset.X_train, dataset.y_train, factory, metric=dataset.metric)),
        ("PASHA+", lambda: grouped_evaluator(dataset.X_train, dataset.y_train, factory,
                                             metric=dataset.metric, random_state=args.seed)),
    ):
        evaluator = make_evaluator()
        pasha = PASHA(space, evaluator, random_state=args.seed)
        result = pasha.fit(configurations=pool)
        model = evaluator.fit_full(result.best_config, random_state=args.seed)
        accuracy = model.score(dataset.X_test, dataset.y_test)
        budget = sum(t.budget_fraction for t in result.trials)
        print(f"{label:<10}{'-':>8}{accuracy:>14.4f}{result.total_evaluation_cost:>10.1f}"
              f"{'(budget ' + format(budget, '.1f') + ')':>14}")


if __name__ == "__main__":
    main()
