"""Simulated parallel HPO: ASHA and PASHA worker scaling.

ASHA (Li et al., 2018) removes SHA's synchronisation barriers; this example
runs the package's simulated-asynchronous ASHA with different virtual
worker counts, and compares the *simulated makespan* (how long the search
would take on that many machines) with the total sequential work.  PASHA's
progressive rung unlocking is shown alongside: it spends less total budget
when cheap budgets already rank configurations consistently.

Run with::

    python examples/parallel_asha.py [--scale 0.4]
"""

from __future__ import annotations

import argparse

from repro.bandit import ASHA, PASHA
from repro.core import MLPModelFactory, grouped_evaluator, vanilla_evaluator
from repro.datasets import load_dataset
from repro.experiments import paper_search_space


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-iter", type=int, default=15)
    args = parser.parse_args()

    dataset = load_dataset("NTICUSdroid", scale=args.scale, random_state=args.seed)
    space = paper_search_space(2)
    pool = space.grid()
    factory = MLPModelFactory(task="classification", max_iter=args.max_iter)
    print(f"{dataset.name}: {len(pool)} configurations, {dataset.n_train} rows\n")

    header = f"{'searcher':<10}{'workers':>8}{'best cfg acc':>14}{'work (s)':>10}{'makespan (s)':>14}"
    print(header)
    print("-" * len(header))
    for n_workers in (1, 4, 8):
        evaluator = vanilla_evaluator(dataset.X_train, dataset.y_train, factory, metric=dataset.metric)
        asha = ASHA(space, evaluator, random_state=args.seed, n_workers=n_workers)
        result = asha.fit(configurations=pool)
        model = evaluator.fit_full(result.best_config, random_state=args.seed)
        accuracy = model.score(dataset.X_test, dataset.y_test)
        print(f"{'ASHA':<10}{n_workers:>8}{accuracy:>14.4f}"
              f"{result.total_evaluation_cost:>10.1f}{asha.simulated_makespan_:>14.1f}")

    # PASHA / PASHA+ (sequential scheduling; the point is total budget).
    for label, make_evaluator in (
        ("PASHA", lambda: vanilla_evaluator(dataset.X_train, dataset.y_train, factory, metric=dataset.metric)),
        ("PASHA+", lambda: grouped_evaluator(dataset.X_train, dataset.y_train, factory,
                                             metric=dataset.metric, random_state=args.seed)),
    ):
        evaluator = make_evaluator()
        pasha = PASHA(space, evaluator, random_state=args.seed)
        result = pasha.fit(configurations=pool)
        model = evaluator.fit_full(result.best_config, random_state=args.seed)
        accuracy = model.score(dataset.X_test, dataset.y_test)
        budget = sum(t.budget_fraction for t in result.trials)
        print(f"{label:<10}{'-':>8}{accuracy:>14.4f}{result.total_evaluation_cost:>10.1f}"
              f"{'(budget ' + format(budget, '.1f') + ')':>14}")


if __name__ == "__main__":
    main()
