"""Tuning a different model family: decision trees via a custom factory.

The enhancement is model-agnostic — anything with ``fit`` / ``score``
works through the evaluator seam.  This example tunes a CART classifier's
structural hyperparameters with SHA+ using a custom model factory instead
of the default MLP one.

Run with::

    python examples/tree_model_tuning.py [--scale 0.4]
"""

from __future__ import annotations

import argparse

from repro import optimize
from repro.learners import DecisionTreeClassifier
from repro.datasets import load_dataset
from repro.space import Categorical, SearchSpace

TREE_SPACE = SearchSpace(
    [
        Categorical("max_depth", [2, 4, 6, 8, 12]),
        Categorical("min_samples_leaf", [1, 5, 20]),
        Categorical("criterion", ["gini", "entropy"]),
    ]
)


def tree_factory(config, random_state=None):
    """Model factory: configuration dict -> unfitted decision tree."""
    return DecisionTreeClassifier(random_state=random_state, **config)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="satimage")
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = load_dataset(args.dataset, scale=args.scale, random_state=args.seed)
    print(f"{dataset.name}: tuning a decision tree over "
          f"{TREE_SPACE.n_configurations} configurations")

    for method in ("sha", "sha+"):
        outcome = optimize(
            dataset.X_train,
            dataset.y_train,
            TREE_SPACE,
            method=method,
            metric=dataset.metric,
            model_factory=tree_factory,
            random_state=args.seed,
            configurations=TREE_SPACE.grid(),
        )
        test = outcome.model.score(dataset.X_test, dataset.y_test)
        print(f"\n{method.upper():>5}: {outcome.best_config}")
        print(f"       train = {outcome.train_score:.4f}  test = {test:.4f}  "
              f"time = {outcome.result.wall_time:.1f}s")


if __name__ == "__main__":
    main()
