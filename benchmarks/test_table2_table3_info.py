"""Tables II & III — dataset inventory and hyperparameter search space.

These tables report no measurements; the benchmark regenerates their
contents from the registry (dataset analogues with their paper-scale
originals) and the search-space definition, and times the generation.
"""

from repro.datasets import dataset_info_table
from repro.experiments import search_space_table

from conftest import BENCH_SCALE


def test_table2_dataset_info(benchmark):
    """Regenerate Table II: the 12 datasets with sizes and feature counts."""
    table = benchmark.pedantic(dataset_info_table, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1)
    print("\n=== Table II (dataset analogues; last column = paper original) ===")
    print(table)


def test_table3_search_space(benchmark):
    """Regenerate Table III: the 8-hyperparameter search space."""
    table = benchmark.pedantic(search_space_table, rounds=1, iterations=1)
    print("\n=== Table III (hyperparameter search space) ===")
    print(table)
