"""Extension — numerical check of Proposition 1 (sampling stability).

The paper's proposition compares random sampling (one binomial) against
group-based sampling (a convolution of two skewed half-size binomials) for
a balanced binary dataset.  This bench evaluates both distributions across
the eps range and prints the variance and the probability of drawing the
exactly-representative subset — the quantity the proposition argues grows
with group purity.
"""

import numpy as np

from repro.core.theory import compare_sampling_stability
from repro.experiments import format_series

EPS_GRID = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
N, P = 40, 0.5


def run():
    rows = {"random var": [], "grouped var": [], "random P(exact)": [], "grouped P(exact)": []}
    for eps in EPS_GRID:
        comparison = compare_sampling_stability(N, P, eps)
        rows["random var"].append(comparison["random"].variance)
        rows["grouped var"].append(comparison["grouped"].variance)
        rows["random P(exact)"].append(comparison["random"].mode_probability)
        rows["grouped P(exact)"].append(comparison["grouped"].mode_probability)
    return rows


def test_ext_proposition1(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Extension: Proposition 1 (n={N}, p={P}) ===")
    print(format_series("eps", EPS_GRID, rows))
    # The proposition's claims: identical at eps=0, strictly more stable
    # for eps>0, deterministic at eps=p.
    np.testing.assert_allclose(rows["grouped var"][0], rows["random var"][0])
    assert all(g <= r + 1e-9 for g, r in zip(rows["grouped var"], rows["random var"]))
    assert rows["grouped P(exact)"][-1] > 0.999
