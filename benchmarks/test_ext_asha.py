"""Extension — ASHA vs ASHA+ (not in the paper's tables).

The paper states its method applies to *all* bandit-based methods and
discusses ASHA in related work; this bench applies the enhancement to the
simulated-asynchronous ASHA and reports the same row structure as Table IV,
plus the simulated parallel makespan.
"""

from repro.experiments import format_table, mean_std, run_hpo_methods

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset, table4_configurations  # noqa: F401


def test_ext_asha_vs_asha_plus(benchmark, table4_configurations):
    dataset = bench_dataset("australian")

    def run():
        return run_hpo_methods(
            dataset,
            methods=("asha", "asha+"),
            configurations=table4_configurations,
            seeds=BENCH_SEEDS,
            max_iter=BENCH_MAX_ITER,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["testAcc (%)"] + [mean_std(results[m].test_scores, scale=100.0) for m in ("asha", "asha+")],
        ["time (sec.)"] + [mean_std(results[m].times, decimals=2) for m in ("asha", "asha+")],
    ]
    print("\n=== Extension: ASHA vs ASHA+ (australian) ===")
    print(format_table(["australian", "ASHA", "ASHA+"], rows))
    assert results["asha+"].mean_test >= results["asha"].mean_test - 0.05
