"""Figure 1 — the Successive Halving schematic (8 configurations, eta=2).

Reproduces the budget/candidate trace of the paper's Figure 1: 8 configs at
1/8 budget, then 4 at 1/4, then 2 at 1/2, then the winner trained on the
full dataset.
"""

from collections import Counter

from repro.bandit import SuccessiveHalving
from repro.core import MLPModelFactory, vanilla_evaluator
from repro.experiments import format_table
from repro.space import Categorical, SearchSpace

from conftest import BENCH_MAX_ITER, bench_dataset


def run_trace():
    dataset = bench_dataset("australian")
    space = SearchSpace(
        [
            Categorical("hidden_layer_sizes", [(30,), (30, 30), (40,), (40, 40), (50,), (50, 50), (20,), (20, 20)]),
        ]
    )
    factory = MLPModelFactory(task="classification", max_iter=BENCH_MAX_ITER, solver="lbfgs")
    evaluator = vanilla_evaluator(dataset.X_train, dataset.y_train, factory, metric=dataset.metric)
    sha = SuccessiveHalving(space, evaluator, random_state=0, eta=2.0)
    result = sha.fit(configurations=space.grid())
    return result


def test_fig1_sha_trace(benchmark):
    result = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    rounds = Counter(round(t.budget_fraction, 6) for t in result.trials)
    rows = [
        [f"iteration {i}", f"{n} configs", f"{budget:.3f} budget each"]
        for i, (budget, n) in enumerate(sorted(rounds.items()))
    ]
    print("\n=== Figure 1 (SHA trace, 8 configurations, eta=2) ===")
    print(format_table(["round", "candidates", "budget"], rows))
    print(f"winner: {result.best_config}")
    # The paper's schedule: candidates halve, budgets double.
    assert dict(sorted(rounds.items())) == {0.125: 8, 0.25: 4, 0.5: 2}
