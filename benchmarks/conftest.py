"""Shared configuration for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and prints
the same row/series structure.  Defaults are scaled down to finish on a
laptop in minutes; environment knobs grow them toward paper scale:

- ``REPRO_BENCH_SCALE``   dataset size multiplier (default 0.3)
- ``REPRO_BENCH_SEEDS``   repeats per cell           (default 3; paper: 5)
- ``REPRO_BENCH_CONFIGS`` candidate-pool size cap    (default 36; paper: 162)
- ``REPRO_BENCH_MAX_ITER``MLP epochs per evaluation  (default 12)
- ``REPRO_BENCH_DATASETS``comma-separated dataset subset for Table IV
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.experiments import paper_search_space


def env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


BENCH_SCALE = env_float("REPRO_BENCH_SCALE", 0.3)
BENCH_SEEDS = range(env_int("REPRO_BENCH_SEEDS", 3))
BENCH_CONFIGS = env_int("REPRO_BENCH_CONFIGS", 36)
BENCH_MAX_ITER = env_int("REPRO_BENCH_MAX_ITER", 12)
BENCH_DATASETS = tuple(
    name.strip()
    for name in os.environ.get("REPRO_BENCH_DATASETS", "australian,splice,machine").split(",")
    if name.strip()
)


@pytest.fixture(scope="session")
def table4_configurations():
    """The Table IV candidate pool: the 162-config grid, capped for speed."""
    grid = paper_search_space(4).grid()
    if BENCH_CONFIGS >= len(grid):
        return grid
    rng = np.random.default_rng(0)
    picks = rng.choice(len(grid), size=BENCH_CONFIGS, replace=False)
    return [grid[i] for i in picks]


def bench_dataset(name: str, seed: int = 0):
    """Load a dataset analogue at the benchmark scale."""
    return load_dataset(name, scale=BENCH_SCALE, random_state=seed)
