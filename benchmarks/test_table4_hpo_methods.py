"""Table IV — the main HPO comparison.

For each dataset, runs random / SHA / SHA+ / HB / HB+ / BOHB / BOHB+ over
several seeds on the 4-hyperparameter (162-configuration) space and prints
train score, test score and search time as mean +/- std — the same block
structure as the paper's Table IV.

Paper shape to reproduce: every ``+`` variant matches or beats its vanilla
version on test score (often with lower variance), at comparable or lower
search time.  Scale knobs in conftest grow this toward the paper's full
setting (scale=1, 5 seeds, all 162 configurations, 10 datasets).
"""

import pytest

from repro.experiments import TABLE4_METHODS, format_table4_rows, run_hpo_methods

from conftest import BENCH_DATASETS, BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
def test_table4_hpo_methods(benchmark, dataset_name, table4_configurations):
    dataset = bench_dataset(dataset_name)

    def run():
        return run_hpo_methods(
            dataset,
            methods=TABLE4_METHODS,
            configurations=table4_configurations,
            seeds=BENCH_SEEDS,
            max_iter=BENCH_MAX_ITER,
            searcher_kwargs={
                key: {"min_budget_fraction": 1.0 / 9.0}
                for key in ("hb", "hb+", "bohb", "bohb+")
            },
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Table IV block: {dataset_name} "
          f"({len(table4_configurations)} configs, {len(list(BENCH_SEEDS))} seeds) ===")
    print(format_table4_rows(dataset_name, dataset.metric, results))

    # Shape check (soft): the enhanced variants should not lose badly.
    for vanilla, plus in (("sha", "sha+"), ("hb", "hb+"), ("bohb", "bohb+")):
        assert results[plus].mean_test >= results[vanilla].mean_test - 0.05, (
            f"{plus} fell more than 5 points behind {vanilla} on {dataset_name}"
        )
