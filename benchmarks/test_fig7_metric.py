"""Figure 7 — metric ablation: mean-only vs the variance/size-aware metric.

Grouping and fold construction are held fixed (grouped sampling, 3 general
+ 2 special folds); only the halving metric changes between the vanilla
mean and Equation 3's UCB with the beta(gamma) weight.

Paper shape: at small subset sizes the UCB metric improves both the
recommended configuration's accuracy and the ranking nDCG on all datasets;
at full budget the two coincide (beta(100) = 0).
"""

import pytest

from repro.experiments import cv_experiment_space, format_series, run_cv_experiment

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset

RATIOS = (0.1, 0.2, 0.4, 1.0)
DATASETS = ("australian", "a9a")


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_fig7_metric(benchmark, dataset_name):
    dataset = bench_dataset(dataset_name)
    configurations = cv_experiment_space().grid()

    def run():
        return run_cv_experiment(
            dataset,
            variants=("ours-mean", "ours"),
            ratios=RATIOS,
            seeds=BENCH_SEEDS,
            configurations=configurations,
            max_iter=BENCH_MAX_ITER,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Figure 7: {dataset_name} (metric ablation) ===")
    print(format_series(
        "ratio", RATIOS,
        {
            "mean-metric acc": [results["ours-mean"].mean_accuracy(r) for r in RATIOS],
            "UCB-metric acc": [results["ours"].mean_accuracy(r) for r in RATIOS],
            "mean-metric nDCG": [results["ours-mean"].mean_ndcg(r) for r in RATIOS],
            "UCB-metric nDCG": [results["ours"].mean_ndcg(r) for r in RATIOS],
        },
    ))
    # At full budget beta(100) = 0, so the two metrics pick identically
    # given the same folds (they see the same rng stream per seed).
    full_mean = results["ours-mean"].mean_accuracy(1.0)
    full_ucb = results["ours"].mean_accuracy(1.0)
    assert abs(full_mean - full_ucb) < 0.05
