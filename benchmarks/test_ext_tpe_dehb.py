"""Extension — the paper's Section IV-B side claims about other optimizers.

Two textual claims from the paper are made measurable here:

1. "SMAC3 and Optuna performed similarly to random search when the time
   budget was similar to Successive Halving" — reproduced with the
   sequential TPE baseline (Optuna's default sampler family) given the same
   number of full-budget evaluations as the random baseline.
2. DEHB (related work (iv)) is run alongside HB/DEHB+ to show the
   enhancement also composes with differential-evolution proposals.
"""

import numpy as np

from repro.experiments import format_table, mean_std, run_hpo_methods

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset


def test_ext_tpe_similar_to_random(benchmark, table4_configurations):
    dataset = bench_dataset("NTICUSdroid")

    def run():
        return run_hpo_methods(
            dataset,
            methods=("random", "tpe", "smac", "sha", "sha+"),
            configurations=table4_configurations,
            seeds=BENCH_SEEDS,
            max_iter=BENCH_MAX_ITER,
            n_random=10,
            searcher_kwargs={"tpe": {"n_trials": 10}, "smac": {"n_trials": 10}},
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    methods = ("random", "tpe", "smac", "sha", "sha+")
    rows = [
        ["testAcc (%)"] + [mean_std(results[m].test_scores, scale=100.0) for m in methods],
        ["time (sec.)"] + [mean_std(results[m].times, decimals=2) for m in methods],
    ]
    print("\n=== Extension: TPE & SMAC vs random (paper Section IV-B claim) ===")
    print(format_table(["NTICUSdroid", *methods], rows))
    # The claim: sequential optimizers land in random search's neighbourhood.
    assert abs(results["tpe"].mean_test - results["random"].mean_test) < 0.1
    assert abs(results["smac"].mean_test - results["random"].mean_test) < 0.1


def test_ext_dehb_composes_with_enhancement(benchmark, table4_configurations):
    dataset = bench_dataset("australian")

    def run():
        return run_hpo_methods(
            dataset,
            methods=("hb", "dehb", "dehb+"),
            seeds=BENCH_SEEDS,
            max_iter=BENCH_MAX_ITER,
            use_pool=False,  # DEHB proposes its own configurations
            searcher_kwargs={
                key: {"min_budget_fraction": 1.0 / 9.0} for key in ("hb", "dehb", "dehb+")
            },
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    methods = ("hb", "dehb", "dehb+")
    rows = [
        ["testAcc (%)"] + [mean_std(results[m].test_scores, scale=100.0) for m in methods],
        ["time (sec.)"] + [mean_std(results[m].times, decimals=2) for m in methods],
    ]
    print("\n=== Extension: DEHB and DEHB+ (australian) ===")
    print(format_table(["australian", *methods], rows))
    assert results["dehb+"].mean_test >= results["dehb"].mean_test - 0.05
