"""Figure 6 — allocating the 5 folds between general and special.

Sweeps (k_gen, k_spe) from (5,0) to (0,5) while keeping the total at the
standard 5 folds, with grouped sampling and the mean metric (isolating the
fold-construction component).

Paper shape: all-general and all-special perform similarly; a *mixture*
often evaluates best (the reason the paper defaults to 3 general + 2
special), though not uniformly across datasets.
"""

import pytest

from repro.experiments import cv_experiment_space, format_series, run_cv_experiment

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset

ALLOCATIONS = ["folds-g5s0", "folds-g4s1", "folds-g3s2", "folds-g2s3", "folds-g1s4", "folds-g0s5"]
RATIO = 0.3
DATASETS = ("splice", "usps")


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_fig6_fold_allocation(benchmark, dataset_name):
    dataset = bench_dataset(dataset_name)
    configurations = cv_experiment_space().grid()

    def run():
        return run_cv_experiment(
            dataset,
            variants=ALLOCATIONS,
            ratios=(RATIO,),
            seeds=BENCH_SEEDS,
            configurations=configurations,
            max_iter=BENCH_MAX_ITER,
            n_groups=5,  # k_spe up to 5 requires 5 groups
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = [a.replace("folds-", "") for a in ALLOCATIONS]
    print(f"\n=== Figure 6: {dataset_name} (subset ratio {RATIO:.0%}) ===")
    print(format_series(
        "(gen,spe)", labels,
        {
            "testAcc": [results[a].mean_accuracy(RATIO) for a in ALLOCATIONS],
            "nDCG": [results[a].mean_ndcg(RATIO) for a in ALLOCATIONS],
        },
    ))
    # Shape: the all-general and all-special extremes land in a similar band.
    g5 = results["folds-g5s0"].mean_ndcg(RATIO)
    s5 = results["folds-g0s5"].mean_ndcg(RATIO)
    assert abs(g5 - s5) < 0.25
