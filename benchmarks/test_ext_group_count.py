"""Extension — sweep of the group count v (and r_group's re-clustering).

The paper recommends keeping v <= 5 so the total fold count stays at the
usual 5; this ablation sweeps v with k_spe = min(v, 2) and reports ranking
quality, plus the effect of disabling the r_group re-clustering rule.
"""

import numpy as np

from repro.core import CrossValidationStudy, MLPModelFactory, ScoreParams, SubsetCVEvaluator, generate_groups
from repro.experiments import build_cv_evaluator, cv_experiment_space, format_series

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset

GROUP_COUNTS = (2, 3, 4, 5)
RATIO = 0.25


def test_ext_group_count(benchmark):
    dataset = bench_dataset("satimage")
    configurations = cv_experiment_space().grid()

    def run():
        truth_evaluator = build_cv_evaluator("stratified", dataset, max_iter=BENCH_MAX_ITER)
        study = CrossValidationStudy(truth_evaluator, configurations)
        out = {v: {"acc": [], "ndcg": []} for v in GROUP_COUNTS}
        factory = MLPModelFactory(task="classification", max_iter=BENCH_MAX_ITER)
        for seed in BENCH_SEEDS:
            truth = study.ground_truth(dataset.X_test, dataset.y_test, random_state=seed)
            for v in GROUP_COUNTS:
                grouping = generate_groups(
                    dataset.X_train, dataset.y_train, n_groups=v, random_state=seed
                )
                evaluator = SubsetCVEvaluator(
                    dataset.X_train, dataset.y_train, factory,
                    metric=dataset.metric, sampling="grouped", folding="grouped",
                    grouping=grouping, k_gen=5 - min(v, 2), k_spe=min(v, 2),
                    score_params=ScoreParams(),
                )
                ranking = CrossValidationStudy(evaluator, configurations).run(
                    subset_ratio=RATIO, random_state=seed
                )
                out[v]["acc"].append(float(truth[ranking.recommended_index]))
                out[v]["ndcg"].append(float(ranking.ndcg(truth)))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Extension: group count v sweep (satimage, ratio {RATIO:.0%}) ===")
    print(format_series(
        "v", GROUP_COUNTS,
        {
            "testF1": [float(np.mean(out[v]["acc"])) for v in GROUP_COUNTS],
            "nDCG": [float(np.mean(out[v]["ndcg"])) for v in GROUP_COUNTS],
        },
    ))


def test_ext_r_group_reclustering(benchmark):
    """Compare grouping with and without the small-cluster re-clustering."""
    dataset = bench_dataset("splice")

    def run():
        sizes = {}
        for r_group in (0.0, 0.8):
            grouping = generate_groups(
                dataset.X_train, dataset.y_train, n_groups=3,
                r_group=r_group, random_state=0,
            )
            sizes[r_group] = grouping.group_sizes.tolist()
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Extension: r_group re-clustering effect on group sizes (splice) ===")
    for r_group, counts in sizes.items():
        balance = min(counts) / max(counts)
        print(f"r_group={r_group}: group sizes {counts} (balance {balance:.2f})")
