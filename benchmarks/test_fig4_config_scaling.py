"""Figure 4 — SHA vs SHA+ as the configuration count grows.

Left half of the figure: adding hyperparameters (Table III order) on the
*australian* dataset.  Right half: growing the model-size space (layers x
widths).  The paper's shape: SHA+ maintains or extends an accuracy edge as
the space grows, and its time advantage widens.
"""

from repro.experiments import format_series, run_config_scaling

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset


def test_fig4a_hyperparameter_axis(benchmark):
    dataset = bench_dataset("australian")
    values = [1, 2, 3, 4]

    def run():
        return run_config_scaling(
            dataset,
            axis="hyperparameters",
            values=values,
            methods=("sha", "sha+"),
            seeds=BENCH_SEEDS,
            max_iter=BENCH_MAX_ITER,
            max_grid=64,
        )

    output = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Figure 4 (left): accuracy & time vs #hyperparameters (australian) ===")
    print(format_series(
        "#HPs", values,
        {
            "SHA acc": output["sha"]["accuracy"],
            "SHA+ acc": output["sha+"]["accuracy"],
            "SHA time": output["sha"]["time"],
            "SHA+ time": output["sha+"]["time"],
            "#configs": output["sha"]["n_configs"],
        },
    ))
    # Shape: averaged over the sweep, SHA+ is at least competitive.
    mean_gap = sum(p - v for p, v in zip(output["sha+"]["accuracy"], output["sha"]["accuracy"])) / len(values)
    assert mean_gap >= -0.05


def test_fig4b_model_size_axis(benchmark):
    dataset = bench_dataset("australian")
    values = [1, 2]

    def run():
        return run_config_scaling(
            dataset,
            axis="layers",
            values=values,
            methods=("sha", "sha+"),
            seeds=BENCH_SEEDS,
            max_iter=BENCH_MAX_ITER,
            max_grid=48,
        )

    output = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Figure 4 (right): accuracy & time vs model depth (australian) ===")
    print(format_series(
        "#layers", values,
        {
            "SHA acc": output["sha"]["accuracy"],
            "SHA+ acc": output["sha+"]["accuracy"],
            "SHA time": output["sha"]["time"],
            "SHA+ time": output["sha+"]["time"],
        },
    ))
