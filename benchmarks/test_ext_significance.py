"""Extension — paired significance testing of SHA+ vs SHA.

The paper reports mean ± std across 5 seeds; this bench adds the formal
instrument: a paired t-test and Wilcoxon signed-rank test of per-seed test
scores of SHA+ against SHA across several datasets, with Holm correction.
At benchmark scale the differences are usually *not* significant on easy
datasets — an honest negative worth printing next to the means.
"""

from repro.experiments import (
    format_table,
    holm_correction,
    paired_t_test,
    run_hpo_methods,
    wilcoxon_test,
    win_rate,
)

from conftest import BENCH_DATASETS, BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset, table4_configurations  # noqa: F401


def test_ext_significance(benchmark, table4_configurations):
    def run():
        per_dataset = {}
        for name in BENCH_DATASETS:
            dataset = bench_dataset(name)
            results = run_hpo_methods(
                dataset,
                methods=("sha", "sha+"),
                configurations=table4_configurations,
                seeds=BENCH_SEEDS,
                max_iter=BENCH_MAX_ITER,
            )
            per_dataset[name] = (results["sha"].test_scores, results["sha+"].test_scores)
        return per_dataset

    per_dataset = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    raw_p = {}
    for name, (sha_scores, plus_scores) in per_dataset.items():
        t = paired_t_test(plus_scores, sha_scores)
        w = wilcoxon_test(plus_scores, sha_scores)
        raw_p[name] = t.p_value
        rows.append([
            name,
            f"{t.mean_difference * 100:+.2f}",
            f"{win_rate(plus_scores, sha_scores):.2f}",
            f"{t.p_value:.3f}",
            f"{w.p_value:.3f}",
        ])
    adjusted = holm_correction(raw_p)
    for row in rows:
        row.append(f"{adjusted[row[0]]:.3f}")
    print("\n=== Extension: SHA+ vs SHA paired tests (positive diff = SHA+ better) ===")
    print(format_table(
        ["dataset", "mean diff (%)", "win rate", "t-test p", "wilcoxon p", "holm p"], rows
    ))
    # Structural assertions only: p-values are valid probabilities.
    for name in per_dataset:
        assert 0.0 <= raw_p[name] <= 1.0
        assert adjusted[name] >= raw_p[name] - 1e-12
