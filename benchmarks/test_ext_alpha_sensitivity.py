"""Extension — sensitivity of the metric weights alpha and beta_max.

DESIGN.md calls out the alpha = 0.1 / beta_max = 10 = 1/alpha normalisation
as a design choice; this ablation sweeps alpha with beta_max = 1/alpha and
reports ranking quality at a small subset ratio.
"""

from repro.experiments import build_cv_evaluator, cv_experiment_space, format_series
from repro.core import CrossValidationStudy

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset

ALPHAS = (0.0, 0.05, 0.1, 0.2, 0.4)
RATIO = 0.2


def test_ext_alpha_sensitivity(benchmark):
    dataset = bench_dataset("splice")
    configurations = cv_experiment_space().grid()

    def run():
        truth_evaluator = build_cv_evaluator("stratified", dataset, max_iter=BENCH_MAX_ITER)
        study = CrossValidationStudy(truth_evaluator, configurations)
        per_alpha = {alpha: {"acc": [], "ndcg": []} for alpha in ALPHAS}
        for seed in BENCH_SEEDS:
            truth = study.ground_truth(dataset.X_test, dataset.y_test, random_state=seed)
            for alpha in ALPHAS:
                evaluator = build_cv_evaluator(
                    "ours", dataset, max_iter=BENCH_MAX_ITER, random_state=seed,
                    alpha=alpha if alpha > 0 else 0.0,
                    beta_max=(1.0 / alpha) if alpha > 0 else 10.0,
                )
                if alpha == 0.0:
                    # alpha = 0 disables the variance term entirely.
                    from repro.core import ScoreParams
                    evaluator.score_params = ScoreParams(use_variance=False)
                ranking = CrossValidationStudy(evaluator, configurations).run(
                    subset_ratio=RATIO, random_state=seed
                )
                per_alpha[alpha]["acc"].append(float(truth[ranking.recommended_index]))
                per_alpha[alpha]["ndcg"].append(float(ranking.ndcg(truth)))
        return per_alpha

    per_alpha = benchmark.pedantic(run, rounds=1, iterations=1)
    import numpy as np

    print(f"\n=== Extension: alpha sensitivity (splice, ratio {RATIO:.0%}, beta_max = 1/alpha) ===")
    print(format_series(
        "alpha", ALPHAS,
        {
            "testAcc": [float(np.mean(per_alpha[a]["acc"])) for a in ALPHAS],
            "nDCG": [float(np.mean(per_alpha[a]["ndcg"])) for a in ALPHAS],
        },
    ))
