"""Table V — the grouping-only ablation.

Isolates the first component (instance grouping): both methods use
stratified-style sampling and folds with the plain mean metric; "vanilla"
stratifies by label, "ours" stratifies by the feature+label groups.
Measured at 10% and 100% subset ratios, as in the paper.

Paper shape: small but consistent gains in accuracy and nDCG, larger at the
10% ratio, with generally smaller variance.
"""

import numpy as np
import pytest

from repro.experiments import cv_experiment_space, format_table, mean_std, run_cv_experiment

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset

RATIOS = (0.1, 1.0)
DATASETS = ("australian", "splice", "satimage")


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_table5_grouping(benchmark, dataset_name):
    dataset = bench_dataset(dataset_name)
    configurations = cv_experiment_space().grid()

    def run():
        return run_cv_experiment(
            dataset,
            variants=("stratified", "grouped-mean"),
            ratios=RATIOS,
            seeds=BENCH_SEEDS,
            configurations=configurations,
            max_iter=BENCH_MAX_ITER,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for ratio in RATIOS:
        for variant, label in (("stratified", "vanilla"), ("grouped-mean", "ours")):
            record = results[variant]
            rows.append([
                f"{ratio:.0%}",
                label,
                mean_std(record.test_accuracy[ratio], scale=100.0),
                f"{record.mean_ndcg(ratio):.3f}",
            ])
    print(f"\n=== Table V block: {dataset_name} ===")
    print(format_table(["ratio", "method", "testAcc (%)", "nDCG"], rows))

    # Shape: grouping alone should not hurt ranking quality materially.
    for ratio in RATIOS:
        ours = results["grouped-mean"].mean_ndcg(ratio)
        vanilla = results["stratified"].mean_ndcg(ratio)
        assert ours >= vanilla - 0.15
