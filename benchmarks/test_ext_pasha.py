"""Extension — PASHA's progressive budget saving (related work (iii)).

PASHA unlocks expensive rungs only when cheap budgets have not stabilised
the configuration ranking.  This bench compares ASHA and PASHA (and their
enhanced variants) on total instance-budget spent and final accuracy.
"""

from repro.experiments import format_table, mean_std, run_hpo_methods

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset, table4_configurations  # noqa: F401


def test_ext_pasha_budget_saving(benchmark, table4_configurations):
    dataset = bench_dataset("credit2023")

    def run():
        results = run_hpo_methods(
            dataset,
            methods=("asha", "pasha", "pasha+"),
            configurations=table4_configurations,
            seeds=BENCH_SEEDS,
            max_iter=BENCH_MAX_ITER,
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    methods = ("asha", "pasha", "pasha+")
    rows = [
        ["testAcc (%)"] + [mean_std(results[m].test_scores, scale=100.0) for m in methods],
        ["time (sec.)"] + [mean_std(results[m].times, decimals=2) for m in methods],
    ]
    print("\n=== Extension: ASHA vs PASHA vs PASHA+ (credit2023) ===")
    print(format_table(["credit2023", *methods], rows))
    # PASHA should not be slower than ASHA on average (it can stop rungs early).
    assert results["pasha"].mean_time <= results["asha"].mean_time * 1.5
