"""Extension — anytime performance: incumbent score vs cumulative cost.

Compares how quickly SHA and SHA+ climb toward good configurations, an
angle implicit in the paper's efficiency claims ("avoids configurations
that are low-quality but time-consuming to evaluate").
"""

import numpy as np

from repro.core import make_searcher
from repro.experiments import format_series, paper_search_space
from repro.experiments.trajectory import align_curves, anytime_curve, area_under_curve

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset, table4_configurations  # noqa: F401


def test_ext_anytime_performance(benchmark, table4_configurations):
    dataset = bench_dataset("australian")
    space = paper_search_space(4)

    def run():
        curves = {}
        aucs = {"SHA": [], "SHA+": []}
        for seed in BENCH_SEEDS:
            for method, label in (("sha", "SHA"), ("sha+", "SHA+")):
                searcher = make_searcher(
                    method, space, dataset.X_train, dataset.y_train,
                    metric=dataset.metric, random_state=seed,
                )
                result = searcher.fit(configurations=table4_configurations)
                curve = anytime_curve(result)
                curves[f"{label} (seed {seed})"] = curve
                horizon = curve.total_cost
                aucs[label].append(area_under_curve(curve, horizon))
        return curves, aucs

    curves, aucs = benchmark.pedantic(run, rounds=1, iterations=1)
    # Average the per-seed curves on a common grid for display.
    grid, aligned = align_curves(curves, n_points=10)
    sha_mean = np.mean([v for k, v in aligned.items() if k.startswith("SHA ")], axis=0)
    plus_mean = np.mean([v for k, v in aligned.items() if k.startswith("SHA+")], axis=0)
    print("\n=== Extension: anytime incumbent score vs cost (australian) ===")
    print(format_series(
        "cost(s)", [f"{c:.2f}" for c in grid],
        {"SHA": sha_mean.tolist(), "SHA+": plus_mean.tolist()},
    ))
    print(f"normalised AUC: SHA {np.mean(aucs['SHA']):.3f}  SHA+ {np.mean(aucs['SHA+']):.3f}")
    assert np.mean(aucs["SHA+"]) >= np.mean(aucs["SHA"]) - 0.1
