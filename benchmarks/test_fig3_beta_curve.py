"""Figure 3 — the beta-gamma line (subset-size weight of Equation 2).

Regenerates the curve with beta_max = 10 (the paper's setting) and checks
its three anchor points: beta_max at the small-subset clamp, beta_max/2 at
gamma = 50, and 0 at the large-subset clamp.
"""

import numpy as np

from repro.core import beta_curve, beta_weight, gamma_bounds
from repro.experiments import format_series


def test_fig3_beta_curve(benchmark):
    gammas, betas = benchmark.pedantic(beta_curve, kwargs={"beta_max": 10.0, "n_points": 21}, rounds=1, iterations=1)
    print("\n=== Figure 3 (beta(gamma), beta_max = 10) ===")
    print(format_series("gamma(%)", [f"{g:.0f}" for g in gammas], {"beta": betas.tolist()}))

    gamma_min, gamma_max = gamma_bounds(10.0)
    print(f"clamp thresholds: gamma_min = {gamma_min:.3f}%, gamma_max = {gamma_max:.3f}%")

    assert abs(betas[0] - 10.0) < 1e-9
    assert abs(beta_weight(50.0, 10.0) - 5.0) < 1e-9
    assert abs(betas[-1]) < 1e-9
    assert all(a >= b - 1e-12 for a, b in zip(betas, betas[1:]))  # monotone decreasing
