"""Figure 5 — cross-validation methods vs subset size.

For each of the paper's six CV datasets: test accuracy of the recommended
configuration and nDCG of the predicted ranking, for random k-fold,
stratified k-fold, and the paper's method (grouped sampling, general+special
folds, UCB metric), across subset ratios.

Paper shape: "ours" recommends better configurations and ranks better,
most clearly at small subset sizes.
"""

import pytest

from repro.experiments import cv_experiment_space, format_series, run_cv_experiment

from conftest import BENCH_MAX_ITER, BENCH_SEEDS, bench_dataset

RATIOS = (0.1, 0.2, 0.4, 1.0)
DATASETS = ("australian", "splice", "satimage")  # subset of the paper's six


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_fig5_cv_methods(benchmark, dataset_name):
    dataset = bench_dataset(dataset_name)
    configurations = cv_experiment_space().grid()

    def run():
        return run_cv_experiment(
            dataset,
            variants=("random", "stratified", "ours"),
            ratios=RATIOS,
            seeds=BENCH_SEEDS,
            configurations=configurations,
            max_iter=BENCH_MAX_ITER,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Figure 5: {dataset_name} (18 configurations) ===")
    print(format_series(
        "ratio", RATIOS,
        {
            "random acc": [results["random"].mean_accuracy(r) for r in RATIOS],
            "strat acc": [results["stratified"].mean_accuracy(r) for r in RATIOS],
            "ours acc": [results["ours"].mean_accuracy(r) for r in RATIOS],
            "random nDCG": [results["random"].mean_ndcg(r) for r in RATIOS],
            "strat nDCG": [results["stratified"].mean_ndcg(r) for r in RATIOS],
            "ours nDCG": [results["ours"].mean_ndcg(r) for r in RATIOS],
        },
    ))
    # Shape: averaged over ratios, ours is competitive with the baselines.
    ours = sum(results["ours"].mean_ndcg(r) for r in RATIOS)
    rand = sum(results["random"].mean_ndcg(r) for r in RATIOS)
    assert ours >= rand - 0.2
