"""Extension — direct measurement of evaluation stability (Section III-E).

The paper argues its sampling and folds make small-subset evaluation more
stable.  This bench evaluates one fixed configuration repeatedly under
fresh randomness with both evaluators across budgets and prints the spread
(standard deviation over repeats) — the paper's instability, measured.
"""

import numpy as np

from repro.core import MLPModelFactory, compare_stability, grouped_evaluator, vanilla_evaluator
from repro.experiments import format_series

from conftest import BENCH_MAX_ITER, bench_dataset

BUDGETS = (0.1, 0.2, 0.4, 1.0)
CONFIG = {"hidden_layer_sizes": (30,), "activation": "relu"}


def test_ext_evaluation_stability(benchmark):
    dataset = bench_dataset("splice")
    factory = MLPModelFactory(task="classification", max_iter=BENCH_MAX_ITER)
    evaluators = {
        "vanilla": vanilla_evaluator(dataset.X_train, dataset.y_train, factory, metric=dataset.metric),
        "grouped": grouped_evaluator(
            dataset.X_train, dataset.y_train, factory, metric=dataset.metric, random_state=0
        ),
    }

    def run():
        return compare_stability(
            evaluators, CONFIG, budgets=BUDGETS, n_repeats=8, random_state=0
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Extension: evaluation-stability spread (splice; lower = more stable) ===")
    print(format_series(
        "budget", BUDGETS,
        {
            "vanilla spread": [comparison["vanilla"][b].spread for b in BUDGETS],
            "grouped spread": [comparison["grouped"][b].spread for b in BUDGETS],
            "vanilla mean": [comparison["vanilla"][b].average for b in BUDGETS],
            "grouped mean": [comparison["grouped"][b].average for b in BUDGETS],
        },
    ))
    # Shape: averaged across budgets the grouped evaluator is not less
    # stable than the vanilla one.
    vanilla_total = sum(comparison["vanilla"][b].spread for b in BUDGETS)
    grouped_total = sum(comparison["grouped"][b].spread for b in BUDGETS)
    assert grouped_total <= vanilla_total * 1.5
