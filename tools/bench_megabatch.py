"""Benchmark rung-level mega-batching and the shared-memory data plane.

Prices the two PR-10 performance features and merges the results into
``BENCH_kernels.json`` (as ``megabatch`` and ``shm_transport`` sections,
leaving the PR-5 sections untouched):

1. **Rung microbench** — one rung's worth of trials (27 trials x 5
   folds, the HyperBand bracket-0 opening rung at eta=3) fitted through
   :func:`repro.learners.batched.fit_mlp_trials` versus the PR-5
   per-trial :func:`~repro.learners.batched.fit_mlp_folds` loop versus
   the sequential per-fold reference.  Records the fused lane occupancy.
2. **End-to-end HyperBand** — a serial-engine HB search with rung-level
   fusion versus the per-trial batched path versus the sequential
   (``batched=False``) baseline.  Target: >= 3x vs sequential, asserted.
3. **2-worker SHA with shared-memory transport** — the measurement that
   was ~1.0x in BENCH_engine (multi-worker SHA never beat serial): a
   2-worker pool with ``transport="arena"`` versus the PR-5 serial
   configuration (per-trial batched kernels, serial executor).  Target:
   >= 1.15x, asserted.  The artifact records ``cores`` — on a
   single-core box every speedup here is overhead elimination (fused
   dispatch + zero-copy transport), not parallel compute.
4. **Zero-copy accounting** — bytes a worker-bound evaluator pickle
   carries with and without the arena (dataset payload vs refs), the
   hardware-independent statement of the transport claim.
5. **Determinism gates** — incumbent fingerprints must be bitwise-equal
   across sequential / per-trial batched / mega-batched /
   shared-memory-transport runs, for HB and SHA.  All asserted; the
   report records the outcomes.

Timing uses one untimed warmup plus a median of repeats, the same
methodology as ``tools/bench_kernels.py``.

Usage::

    PYTHONPATH=src python tools/bench_megabatch.py [--out BENCH_kernels.json]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import time
from pathlib import Path

import numpy as np

from repro.bandit import HyperBand, SuccessiveHalving
from repro.core import MLPModelFactory, vanilla_evaluator
from repro.datasets import make_classification
from repro.engine import ParallelExecutor, SerialExecutor, SharedArena, TrialEngine
from repro.learners import MLPClassifier
from repro.learners.batched import fit_mlp_folds, fit_mlp_trials
from repro.space import Categorical, SearchSpace

from bench_kernels import timed_median


#: The workload mega-batching is built for: wide rungs of short trials
#: over small subsets, where per-fold numpy dispatch overhead dominates
#: the actual matmul work.  One shared architecture so every trial's
#: folds land in the same fused lane.
N_SAMPLES = 200
N_FEATURES = 8
HIDDEN = (8,)
MAX_ITER = 60
POOL = 64
SEARCHER_SEED = 7


def build_space():
    return SearchSpace([
        Categorical("learning_rate_init",
                    [1e-3, 2e-3, 3e-3, 5e-3, 1e-2, 2e-2, 3e-2, 5e-2]),
        Categorical("alpha", [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1]),
        Categorical("momentum", [0.3, 0.5, 0.7, 0.9]),
    ])


def build_dataset(seed):
    return make_classification(
        n_samples=N_SAMPLES, n_features=N_FEATURES, n_classes=2,
        class_sep=1.2, flip_y=0.05, random_state=seed,
    )


class NoFusion:
    """Evaluator proxy hiding ``evaluate_many``: the PR-5 per-trial path.

    The executors resolve ``evaluate_many`` on the evaluator's *class*,
    so a plain wrapper that delegates everything else restores the
    pre-mega-batch behaviour exactly — fold-level batching still on,
    cross-trial fusion off.
    """

    def __init__(self, inner):
        self._inner = inner

    def evaluate(self, *args, **kwargs):
        return self._inner.evaluate(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


# -- 1: rung microbench ------------------------------------------------------


def make_rung_jobs(n_trials, n_folds, seed):
    """One rung: ``n_trials`` configs x ``n_folds`` fold jobs each."""
    X, y = build_dataset(seed)
    lrs = [1e-3, 2e-3, 3e-3, 5e-3, 1e-2, 2e-2, 3e-2, 5e-2]
    rng = np.random.default_rng(seed * 31 + 1)
    trial_jobs = []
    for trial in range(n_trials):
        folds = []
        for fold in range(n_folds):
            idx = rng.choice(len(X), size=120, replace=False)
            model = MLPClassifier(
                hidden_layer_sizes=HIDDEN, solver="adam", max_iter=50,
                learning_rate_init=lrs[trial % len(lrs)],
                random_state=1000 * trial + fold,
            )
            folds.append((model, X[idx], y[idx]))
        trial_jobs.append(folds)
    return trial_jobs


def bench_rung(n_trials, n_folds, repeats, seed):
    def sequential():
        for folds in make_rung_jobs(n_trials, n_folds, seed):
            for model, X, y in folds:
                model.fit(X, y)

    def per_trial():
        for folds in make_rung_jobs(n_trials, n_folds, seed):
            fit_mlp_folds(folds)

    def mega():
        fit_mlp_trials(make_rung_jobs(n_trials, n_folds, seed))

    seq = timed_median(sequential, repeats)
    per = timed_median(per_trial, repeats)
    fused = timed_median(mega, repeats)
    _, stats = fit_mlp_trials(make_rung_jobs(n_trials, n_folds, seed))
    return {
        "n_trials": n_trials,
        "n_folds": n_folds,
        "sequential_seconds": round(seq, 4),
        "per_trial_seconds": round(per, 4),
        "mega_seconds": round(fused, 4),
        "speedup_vs_sequential": round(seq / fused, 3),
        "speedup_vs_per_trial": round(per / fused, 3),
        "lane_occupancy": round(stats.occupancy, 4),
        "fused_lanes": stats.fused_lanes,
        "max_lane_width": stats.max_lane_width,
    }


# -- 2 + 3 + 5: end-to-end searches ------------------------------------------


def fingerprint(result):
    return [
        (t.key, t.budget_fraction, t.result.score, tuple(t.result.fold_scores))
        for t in result.trials
    ]


def run_search(method, X, y, pool, space, *, batched=True, fusion=True,
               executor_factory=None):
    """One engine search; returns (seconds, fingerprint, best_config)."""
    factory = MLPModelFactory(
        task="classification", max_iter=MAX_ITER, hidden_layer_sizes=HIDDEN
    )
    evaluator = vanilla_evaluator(
        X, y, factory, batched=batched, memoize_plans=batched
    )
    if not fusion:
        evaluator = NoFusion(evaluator)
    executor = executor_factory() if executor_factory else SerialExecutor()
    engine = TrialEngine(executor=executor, cache=True)
    cls = HyperBand if method == "hb" else SuccessiveHalving
    searcher = cls(space, evaluator, random_state=SEARCHER_SEED, engine=engine)
    start = time.perf_counter()
    result = searcher.fit(configurations=pool)
    seconds = time.perf_counter() - start
    engine.shutdown()
    return seconds, fingerprint(result), result.best_config


def bench_search(method, legs, X, y, pool, space, repeats):
    """Time every leg, check fingerprints against the sequential one."""
    rows = {}
    prints = {}
    for name, kwargs in legs.items():
        seconds = timed_median(
            lambda kwargs=kwargs: run_search(method, X, y, pool, space, **kwargs),
            repeats,
        )
        _, fp, best = run_search(method, X, y, pool, space, **kwargs)
        rows[name] = round(seconds, 4)
        prints[name] = (fp, best)
    reference = prints["sequential"]
    equal = {}
    for name, (fp, best) in prints.items():
        if name == "sequential":
            continue
        equal[name] = fp == reference[0] and best == reference[1]
        if not equal[name]:
            raise AssertionError(
                f"{method} {name} run diverged bitwise from the sequential reference"
            )
    return rows, equal, len(reference[0])


def bench_end_to_end_hb(args, X, y, pool, space):
    legs = {
        "sequential": dict(batched=False, fusion=False),
        "per_trial": dict(batched=True, fusion=False),
        "mega": dict(batched=True, fusion=True),
        "shm_2w": dict(
            batched=True, fusion=True,
            executor_factory=lambda: ParallelExecutor(
                n_workers=2, transport="arena"
            ),
        ),
    }
    rows, equal, n_trials = bench_search(
        "hb", legs, X, y, pool, space, args.e2e_repeats
    )
    speedup = rows["sequential"] / rows["mega"]
    print(f"end-to-end HB: sequential {rows['sequential']:.2f}s, "
          f"per-trial {rows['per_trial']:.2f}s, mega {rows['mega']:.2f}s, "
          f"2w shm {rows['shm_2w']:.2f}s -> {speedup:.2f}x "
          f"(target >= {args.e2e_target}x)")
    if speedup < args.e2e_target:
        raise AssertionError(
            f"end-to-end mega speedup {speedup:.2f}x below the "
            f"{args.e2e_target}x target"
        )
    return {
        "sequential_seconds": rows["sequential"],
        "per_trial_seconds": rows["per_trial"],
        "mega_seconds": rows["mega"],
        "shm_2w_seconds": rows["shm_2w"],
        "speedup_vs_sequential": round(speedup, 3),
        "speedup_vs_per_trial": round(rows["per_trial"] / rows["mega"], 3),
        "target": args.e2e_target,
        "fingerprints_equal": equal,
        "pool": len(pool),
        "n_trials": n_trials,
    }


def bench_sha_2worker(args, X, y, pool, space):
    legs = {
        "sequential": dict(batched=False, fusion=False),
        "serial_per_trial": dict(batched=True, fusion=False),
        "serial_mega": dict(batched=True, fusion=True),
        "arena_2w": dict(
            batched=True, fusion=True,
            executor_factory=lambda: ParallelExecutor(
                n_workers=2, transport="arena"
            ),
        ),
        "pickle_2w": dict(
            batched=True, fusion=True,
            executor_factory=lambda: ParallelExecutor(
                n_workers=2, transport="pickle"
            ),
        ),
    }
    rows, equal, n_trials = bench_search(
        "sha", legs, X, y, pool, space, args.e2e_repeats
    )
    # The gate compares against the strongest pre-PR serial configuration
    # (PR-5 per-trial batched kernels) — the yardstick under which
    # BENCH_engine recorded multi-worker SHA at ~1.0x.
    speedup = rows["serial_per_trial"] / rows["arena_2w"]
    print(f"2-worker SHA: serial per-trial {rows['serial_per_trial']:.2f}s, "
          f"serial mega {rows['serial_mega']:.2f}s, "
          f"2w arena {rows['arena_2w']:.2f}s, 2w pickle {rows['pickle_2w']:.2f}s "
          f"-> {speedup:.2f}x vs serial (target >= {args.sha_target}x, "
          f"{os.cpu_count()} core(s))")
    if speedup < args.sha_target:
        raise AssertionError(
            f"2-worker SHA speedup {speedup:.2f}x below the "
            f"{args.sha_target}x target"
        )
    return {
        "sequential_seconds": rows["sequential"],
        "serial_per_trial_seconds": rows["serial_per_trial"],
        "serial_mega_seconds": rows["serial_mega"],
        "arena_2w_seconds": rows["arena_2w"],
        "pickle_2w_seconds": rows["pickle_2w"],
        "speedup_vs_serial": round(speedup, 3),
        "speedup_vs_sequential": round(rows["sequential"] / rows["arena_2w"], 3),
        "target": args.sha_target,
        "fingerprints_equal": equal,
        "n_trials": n_trials,
    }


# -- 4: zero-copy accounting -------------------------------------------------


def bench_zero_copy(seed):
    """Bytes a worker-bound evaluator pickle carries, arena vs plain.

    Uses a deliberately larger dataset than the timing workload so the
    payload dwarfs the evaluator's fixed-size metadata; the ratio is
    deterministic and hardware-independent.
    """
    X, y = make_classification(
        n_samples=6000, n_features=40, n_classes=2, random_state=seed
    )
    factory = MLPModelFactory(task="classification", max_iter=5)
    evaluator = vanilla_evaluator(X, y, factory)
    plain_bytes = len(pickle.dumps(evaluator))
    with SharedArena() as arena:
        evaluator.share_memory(arena)
        arena_bytes = len(pickle.dumps(evaluator))
        evaluator.unshare_memory()
    row = {
        "dataset_bytes": int(X.nbytes + y.nbytes),
        "pickle_transport_bytes": plain_bytes,
        "arena_transport_bytes": arena_bytes,
        "bytes_shipped_ratio": round(plain_bytes / arena_bytes, 1),
    }
    print(f"zero-copy: evaluator pickle {plain_bytes / 1e6:.2f} MB plain vs "
          f"{arena_bytes / 1e3:.1f} KB with arena refs "
          f"({row['bytes_shipped_ratio']}x less shipped)")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_kernels.json"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5,
                        help="rung microbench timing repetitions (median taken)")
    parser.add_argument("--e2e-repeats", type=int, default=3,
                        help="end-to-end timing repetitions (median taken)")
    parser.add_argument("--e2e-target", type=float, default=3.0)
    parser.add_argument("--sha-target", type=float, default=1.15)
    parser.add_argument("--skip-e2e", action="store_true",
                        help="rung microbench + zero-copy accounting only "
                             "(quick check)")
    args = parser.parse_args(argv)

    out = Path(args.out)
    report = json.loads(out.read_text()) if out.exists() else {}

    rung = bench_rung(n_trials=27, n_folds=5, repeats=args.repeats,
                      seed=args.seed)
    print(f"rung microbench (27 trials x 5 folds): "
          f"sequential {rung['sequential_seconds']:.2f}s, "
          f"per-trial {rung['per_trial_seconds']:.2f}s, "
          f"mega {rung['mega_seconds']:.2f}s -> "
          f"{rung['speedup_vs_sequential']:.2f}x vs sequential, "
          f"{rung['speedup_vs_per_trial']:.2f}x vs per-trial, "
          f"occupancy {rung['lane_occupancy']:.2f}")

    megabatch = {
        "workload": {
            "n_samples": N_SAMPLES, "n_features": N_FEATURES,
            "hidden": list(HIDDEN), "max_iter": MAX_ITER, "pool": POOL,
            "searcher_seed": SEARCHER_SEED,
        },
        "rung_microbench": rung,
    }
    shm = {
        "cores": os.cpu_count(),
        "zero_copy": bench_zero_copy(args.seed),
    }

    if not args.skip_e2e:
        X, y = build_dataset(args.seed)
        space = build_space()
        pool = space.grid()[:POOL]
        megabatch["end_to_end_hb"] = bench_end_to_end_hb(args, X, y, pool, space)
        shm["sha_2worker"] = bench_sha_2worker(args, X, y, pool, space)
        report.setdefault("headline", {})
        report["headline"]["megabatch_hb_speedup"] = (
            megabatch["end_to_end_hb"]["speedup_vs_sequential"])
        report["headline"]["sha_2worker_shm_speedup"] = (
            shm["sha_2worker"]["speedup_vs_serial"])

    report["megabatch"] = megabatch
    report["shm_transport"] = shm
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
