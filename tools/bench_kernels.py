"""Benchmark the batched fold kernels and cross-rung warm starting.

Prices the two PR-5 performance features and writes
``BENCH_kernels.json``:

1. **Fold-loop microbench** — one trial's 5-fold fit dispatched through
   :func:`repro.learners.batched.fit_mlp_folds` versus the sequential
   per-fold ``model.fit`` loop, on the representative small-subset shape
   bandit searchers spend most of their evaluations on (low rungs train
   on O(100) rows, where per-call numpy overhead dominates).  Target:
   >= 2x, asserted.
2. **Size sweep** — the same comparison across subset sizes and widths,
   recording how the speedup tapers as the work becomes compute-bound
   (no assertion; feeds the table in docs/PERFORMANCE.md).
3. **End-to-end HyperBand** — a serial-engine HB search with batched
   kernels + warm starting versus the same search with both disabled
   (the pre-kernel configuration).  Target: >= 1.5x, asserted.
4. **Determinism gates** — the batched cold run must reproduce the
   sequential cold run bit for bit (same trials, same scores, same
   incumbent), and serial must equal a 2-worker pool bitwise in both
   cold and warm modes.  All asserted; the report records the outcomes.

Timing uses one untimed warmup plus a median of repeats, the same
methodology as ``tools/bench_engine.py``.

Usage::

    PYTHONPATH=src python tools/bench_kernels.py [--out BENCH_kernels.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.bandit import HyperBand
from repro.core import MLPModelFactory, vanilla_evaluator
from repro.datasets import make_classification
from repro.engine import ParallelExecutor, SerialExecutor, TrialEngine
from repro.learners import MLPClassifier
from repro.learners.batched import fit_mlp_folds


def timed_median(fn, repeats):
    """One untimed warmup call, then the median of ``repeats`` timings."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# -- 1 + 2: fold-loop microbench -------------------------------------------


def make_fold_jobs(n_rows, hidden, n_folds=5, max_iter=50, seed=0):
    """Fresh 5-fold fit jobs over a synthetic subset (new models each call)."""
    import numpy as np

    X, y = make_classification(
        n_samples=n_rows * 2, n_features=10, n_classes=3, random_state=seed
    )
    jobs = []
    for fold in range(n_folds):
        idx = np.random.default_rng(seed * 97 + fold).choice(
            len(X), size=n_rows, replace=False
        )
        model = MLPClassifier(
            hidden_layer_sizes=hidden, solver="adam", max_iter=max_iter,
            random_state=1000 + fold,
        )
        jobs.append((model, X[idx], y[idx]))
    return jobs


def bench_fold_loop(n_rows, hidden, repeats):
    """(sequential_seconds, batched_seconds, speedup) for one shape."""

    def sequential():
        for model, X, y in make_fold_jobs(n_rows, hidden):
            model.fit(X, y)

    def batched():
        fit_mlp_folds(make_fold_jobs(n_rows, hidden))

    seq = timed_median(sequential, repeats)
    bat = timed_median(batched, repeats)
    return seq, bat, seq / bat


# -- 3 + 4: end-to-end HyperBand -------------------------------------------


def fingerprint(result):
    return [
        (t.key, t.budget_fraction, t.result.score, tuple(t.result.fold_scores))
        for t in result.trials
    ]


def run_hb(X, y, space, pool, factory, seed, *, batched, warm, executor=None):
    """One engine HB fit; returns (seconds, fingerprint, best_config)."""
    evaluator = vanilla_evaluator(
        X, y, factory, batched=batched, memoize_plans=batched
    )
    engine = TrialEngine(
        executor=executor if executor is not None else SerialExecutor(),
        cache=True,
        checkpoints=True if warm else None,
    )
    searcher = HyperBand(space, evaluator, random_state=seed, engine=engine)
    start = time.perf_counter()
    result = searcher.fit(configurations=pool)
    seconds = time.perf_counter() - start
    engine.shutdown()
    return seconds, fingerprint(result), result.best_config


def bench_end_to_end(args):
    """Batched + warm HB versus the pre-kernel baseline, plus the gates."""
    from repro.experiments import paper_search_space

    X, y = make_classification(
        n_samples=args.n_samples, n_features=12, n_classes=2,
        class_sep=1.2, flip_y=0.05, random_state=args.seed,
    )
    space = paper_search_space(2)
    pool = space.grid()[: args.hb_pool]
    factory = MLPModelFactory(task="classification", max_iter=args.max_iter)

    def timed(variant_kwargs):
        seconds = timed_median(
            lambda: run_hb(X, y, space, pool, factory, args.seed, **variant_kwargs),
            args.e2e_repeats,
        )
        _, prints, best = run_hb(X, y, space, pool, factory, args.seed, **variant_kwargs)
        return seconds, prints, best

    baseline_seconds, baseline_prints, baseline_best = timed(
        dict(batched=False, warm=False)
    )
    batched_seconds, batched_prints, batched_best = timed(
        dict(batched=True, warm=False)
    )
    warm_seconds, warm_prints, warm_best = timed(dict(batched=True, warm=True))

    # gate: the batched cold run is bitwise-identical to the sequential one
    if batched_prints != baseline_prints:
        raise AssertionError("batched cold run diverged from the sequential reference")
    if batched_best != baseline_best:
        raise AssertionError("batched kernels changed the cold incumbent")

    # gate: serial == 2-worker pool, cold and warm
    for warm in (False, True):
        _, pool_prints, _ = run_hb(
            X, y, space, pool, factory, args.seed,
            batched=True, warm=warm, executor=ParallelExecutor(n_workers=2),
        )
        reference = warm_prints if warm else batched_prints
        if pool_prints != reference:
            raise AssertionError(
                f"serial != parallel bitwise in {'warm' if warm else 'cold'} mode"
            )

    speedup = baseline_seconds / warm_seconds
    print(f"end-to-end HB: baseline {baseline_seconds:.2f}s, "
          f"batched {batched_seconds:.2f}s, batched+warm {warm_seconds:.2f}s "
          f"-> {speedup:.2f}x (target >= {args.e2e_target}x)")
    if speedup < args.e2e_target:
        raise AssertionError(
            f"end-to-end speedup {speedup:.2f}x below the {args.e2e_target}x target"
        )
    return {
        "baseline_seconds": round(baseline_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "batched_warm_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 3),
        "target": args.e2e_target,
        "cold_incumbent_unchanged": True,
        "serial_equals_parallel_cold": True,
        "serial_equals_parallel_warm": True,
        "pool": len(pool),
        "n_trials": len(baseline_prints),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_kernels.json"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5,
                        help="microbench timing repetitions (median taken)")
    parser.add_argument("--e2e-repeats", type=int, default=3,
                        help="end-to-end timing repetitions (median taken)")
    parser.add_argument("--n-samples", type=int, default=600)
    parser.add_argument("--max-iter", type=int, default=30)
    parser.add_argument("--hb-pool", type=int, default=6)
    parser.add_argument("--micro-target", type=float, default=2.0)
    parser.add_argument("--e2e-target", type=float, default=1.5)
    parser.add_argument("--skip-e2e", action="store_true",
                        help="microbench + sweep only (quick check)")
    args = parser.parse_args(argv)

    # 1. the asserted microbench: the representative low-rung shape
    seq, bat, speedup = bench_fold_loop(n_rows=150, hidden=(8,), repeats=args.repeats)
    print(f"fold-loop microbench (5 folds x 150 rows, hidden (8,)): "
          f"sequential {seq*1000:.1f}ms, batched {bat*1000:.1f}ms "
          f"-> {speedup:.2f}x (target >= {args.micro_target}x)")
    if speedup < args.micro_target:
        raise AssertionError(
            f"fold-loop speedup {speedup:.2f}x below the {args.micro_target}x target"
        )
    report = {
        "benchmark": "repro.learners.batched fold kernels + warm-start HB",
        "seed": args.seed,
        "microbench": {
            "n_rows": 150, "hidden": [8], "n_folds": 5, "max_iter": 50,
            "sequential_seconds": round(seq, 4),
            "batched_seconds": round(bat, 4),
            "speedup": round(speedup, 3),
            "target": args.micro_target,
        },
    }

    # 2. the taper: larger subsets amortise the per-call overhead batching removes
    sweep = []
    for n_rows, hidden in ((100, (8,)), (200, (8,)), (400, (16,)), (800, (32,))):
        s, b, x = bench_fold_loop(n_rows, hidden, repeats=3)
        sweep.append({
            "n_rows": n_rows, "hidden": list(hidden), "speedup": round(x, 3),
        })
        print(f"  sweep n={n_rows:<4} hidden={hidden}: {x:.2f}x")
    report["size_sweep"] = sweep

    # 3 + 4. end-to-end + determinism gates
    if not args.skip_e2e:
        report["end_to_end"] = bench_end_to_end(args)
        report["headline"] = {
            "fold_loop_speedup": report["microbench"]["speedup"],
            "end_to_end_speedup": report["end_to_end"]["speedup"],
        }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
