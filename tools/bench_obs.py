"""Benchmark the observability plane's overhead: it must be ~free.

Runs the same deterministic optimization three ways:

- **baseline** — no telemetry, no flight recorder (the bare engine);
- **obs-on** — metrics-only :class:`repro.telemetry.Telemetry` plus an
  installed :class:`repro.obs.flightrec.FlightRecorder` with the daemon's
  spill policy, i.e. exactly what a serve job pays for ``/metrics`` and
  crash dumps;
- **traced** — full span trace to disk on top (informational; tracing is
  opt-in per job and has its own bench in ``bench_engine.py``).

Variants are timed in interleaved rounds and judged on the **median of
paired per-round ratios** (each round's obs-on time over the same round's
baseline, measured seconds apart) — the estimator that survives the
between-round drift of a shared machine, where absolute minima across
rounds can disagree by more than the effect being measured.  Reported in
``BENCH_obs.json``:

- ``overhead_pct`` — obs-on vs baseline (median paired ratio); the bench
  FAILS above ``--target-pct`` (default 2%);
- the incumbent fingerprint of every variant; the bench FAILS unless all
  three are bitwise-identical — observability must never change a result.

Usage::

    PYTHONPATH=src python tools/bench_obs.py [--out BENCH_obs.json]
    PYTHONPATH=src python tools/bench_obs.py --quick   # smaller run, no JSON

Exit code 0 iff every check passes.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import optimize
from repro.engine import SerialExecutor, TrialEngine
from repro.obs import flightrec
from repro.obs.tracectx import TraceContext
from repro.serve import JobSpec, incumbent_fingerprint
from repro.serve.jobs import optimize_inputs
from repro.telemetry import Telemetry

#: The measured job: big enough that per-trial bookkeeping is amortized
#: the way it is in real runs (~seconds, not milliseconds).
SPEC = dict(dataset="australian", method="sha", hps=2, scale=1.0, seed=0, max_iter=30)


def run_once(spec: JobSpec, telemetry=None):
    """One full optimization; returns (elapsed_s, fingerprint, n_trials)."""
    inputs = optimize_inputs(spec)
    engine = TrialEngine(executor=SerialExecutor(), telemetry=telemetry)
    started = time.perf_counter()
    try:
        outcome = optimize(**inputs, engine=engine, telemetry=telemetry)
    finally:
        engine.shutdown()
        if telemetry is not None:
            telemetry.close()
    elapsed = time.perf_counter() - started
    return elapsed, incumbent_fingerprint(outcome.result), outcome.result.n_trials


VARIANTS = ("baseline", "obs-on", "traced")


def run_variant(variant: str, spec: JobSpec, index: int, workdir: Path):
    """One timed run of one variant; returns (elapsed_s, fingerprint, n_trials)."""
    telemetry = None
    if variant == "obs-on":
        flightrec.install(
            dump_dir=workdir / f"obs-{index}", spill_every=32, hook_exceptions=False
        )
        telemetry = Telemetry(context=TraceContext(f"bench-{index}"))
    elif variant == "traced":
        flightrec.install(
            dump_dir=workdir / f"traced-{index}", spill_every=32, hook_exceptions=False
        )
        telemetry = Telemetry(
            trace=workdir / f"bench-{index}.trace",
            context=TraceContext(f"bench-{index}"),
        )
    try:
        return run_once(spec, telemetry)
    finally:
        flightrec.uninstall()


def measure_all(spec: JobSpec, repeats: int, workdir: Path):
    """Interleaved paired timing of every variant over ``repeats`` rounds.

    Variants alternate within each round (rotating the order) so slow
    drift — CPU frequency, cache temperature, a noisy neighbour on a
    shared machine — lands on all of them equally.  Overheads are judged
    on the *paired* per-round ratio (each round's obs-on time against the
    same round's baseline, taken seconds apart), whose median is robust
    to the between-round drift that makes absolute minima lie.  Returns
    ``({variant: [per_round_s]}, {variant: fingerprint}, n_trials)``.
    """
    times = {variant: [] for variant in VARIANTS}
    fingerprints = {variant: set() for variant in VARIANTS}
    n_trials = 0
    for round_index in range(repeats):
        pivot = round_index % len(VARIANTS)
        order = VARIANTS[pivot:] + VARIANTS[:pivot]
        for variant in order:
            elapsed, fingerprint, n_trials = run_variant(
                variant, spec, round_index, workdir
            )
            times[variant].append(elapsed)
            fingerprints[variant].add(fingerprint)
    for variant in VARIANTS:
        assert len(fingerprints[variant]) == 1, f"{variant} run was not deterministic"
    return times, {v: fingerprints[v].pop() for v in VARIANTS}, n_trials


def paired_overhead_pct(times, variant: str) -> float:
    """Median per-round overhead of ``variant`` relative to the baseline."""
    ratios = sorted(
        on / base - 1.0
        for on, base in zip(times[variant], times["baseline"])
    )
    return 100.0 * statistics.median(ratios)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=9,
                        help="paired rounds; the median per-round ratio is the "
                             "judged overhead (default 9)")
    parser.add_argument("--target-pct", type=float, default=None,
                        help="max tolerated obs-on overhead "
                             "(default 2%%; 15%% under --quick, whose sub-second "
                             "run cannot resolve 2%% above the noise floor)")
    parser.add_argument("--quick", action="store_true",
                        help="3 rounds on a smaller run, no JSON (CI smoke)")
    parser.add_argument("--out", default="BENCH_obs.json")
    args = parser.parse_args(argv)
    if args.target_pct is None:
        args.target_pct = 15.0 if args.quick else 2.0

    spec_fields = dict(SPEC, max_iter=8, scale=0.2) if args.quick else SPEC
    repeats = 3 if args.quick else args.repeats
    spec = JobSpec(tenant="bench", **spec_fields)

    print(f"bench_obs: {spec_fields['dataset']}/{spec_fields['method']} "
          f"scale={spec_fields['scale']} max_iter={spec_fields['max_iter']}, "
          f"{repeats} paired rounds per variant")
    run_once(spec)  # warm the dataset/import caches outside the timings

    with tempfile.TemporaryDirectory() as tmp:
        times, fingerprints, n_trials = measure_all(spec, repeats, Path(tmp))
    for variant in VARIANTS:
        print(f"  {variant:<9}: min {min(times[variant]):.4f}s, "
              f"median {statistics.median(times[variant]):.4f}s  ({n_trials} trials)")

    overhead_pct = paired_overhead_pct(times, "obs-on")
    traced_pct = paired_overhead_pct(times, "traced")

    checks = {
        "overhead_le_target": overhead_pct <= args.target_pct,
        "fingerprints_bitwise_equal": len(set(fingerprints.values())) == 1,
    }
    payload = {
        "workload": {"spec": spec_fields, "repeats": repeats},
        "baseline_s": round(min(times["baseline"]), 4),
        "obs_on_s": round(min(times["obs-on"]), 4),
        "traced_s": round(min(times["traced"]), 4),
        "overhead_pct": round(overhead_pct, 2),
        "target_pct": args.target_pct,
        "traced_overhead_pct": round(traced_pct, 2),
        "fingerprint": fingerprints["baseline"],
        "checks": checks,
    }
    print(f"  obs-on overhead    : {overhead_pct:+.2f}% (target <= {args.target_pct}%)")
    print(f"  traced overhead    : {traced_pct:+.2f}% (informational)")
    for name, passed in checks.items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    if not args.quick:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"  wrote {args.out}")
    return 0 if all(checks.values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
