"""Regression gate over every committed ``BENCH_*.json`` artifact.

Each bench tool writes its artifact once (on the machine that ran it);
this tool re-reads them all and re-judges the numbers against their
targets, printing a one-line-per-metric table::

    PYTHONPATH=src python tools/bench_regress.py

    artifact          metric                        value     target  status
    BENCH_engine      guard_overhead_pct            -4.73    <= 5.0   ok
    BENCH_kernels     fold_loop_speedup             2.089    >= 2.0   ok
    ...

Exit code is non-zero iff any gated metric is out of bounds or an
expected artifact is missing/unreadable — which makes this the natural
last tier of ``tools/run_checks.sh``: everything else re-validated the
code, this re-validates the committed performance claims.

Headline metrics without a hard target (e.g. the 4-worker HyperBand
speedup, the journal overhead) are printed as ``info`` rows so a human
diffing two runs sees them move, but they never fail the gate — they
measure the machine as much as the code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (artifact, metric, extractor, op, target) — ``op`` of None means
#: informational only.  Extractors take the parsed JSON payload.
GATES = [
    ("BENCH_engine", "dispatch_ms_per_trial_2w",
     lambda d: d["dispatch_overhead"]["workers"]["2"]["overhead_ms_per_trial"],
     "<=", lambda d: d["dispatch_overhead"]["ceiling_ms_per_trial"]),
    ("BENCH_engine", "dispatch_ms_per_trial_4w",
     lambda d: d["dispatch_overhead"]["workers"]["4"]["overhead_ms_per_trial"],
     "<=", lambda d: d["dispatch_overhead"]["ceiling_ms_per_trial"]),
    ("BENCH_engine", "guard_overhead_pct",
     lambda d: d["guard_overhead"]["overhead_pct"],
     "<=", lambda d: d["guard_overhead"]["target_pct"]),
    ("BENCH_engine", "hyperband_4worker_speedup",
     lambda d: d["headline"]["hyperband_4worker_speedup"], None, None),
    ("BENCH_engine", "journal_overhead_pct",
     lambda d: d["headline"]["journal_overhead_pct"], None, None),
    ("BENCH_telemetry", "tracing_overhead_pct",
     lambda d: d["telemetry_overhead"]["overhead_pct"],
     "<=", lambda d: d["telemetry_overhead"]["target_pct"]),
    ("BENCH_kernels", "fold_loop_speedup",
     lambda d: d["microbench"]["speedup"],
     ">=", lambda d: d["microbench"]["target"]),
    ("BENCH_kernels", "end_to_end_speedup",
     lambda d: d["end_to_end"]["speedup"],
     ">=", lambda d: d["end_to_end"]["target"]),
    ("BENCH_kernels", "megabatch_hb_speedup",
     lambda d: d["megabatch"]["end_to_end_hb"]["speedup_vs_sequential"],
     ">=", lambda d: d["megabatch"]["end_to_end_hb"]["target"]),
    ("BENCH_kernels", "sha_2worker_shm_speedup",
     lambda d: d["shm_transport"]["sha_2worker"]["speedup_vs_serial"],
     ">=", lambda d: d["shm_transport"]["sha_2worker"]["target"]),
    ("BENCH_kernels", "megabatch_fingerprints_equal",
     lambda d: (all(d["megabatch"]["end_to_end_hb"]["fingerprints_equal"].values())
                and all(d["shm_transport"]["sha_2worker"]["fingerprints_equal"].values())),
     "is", lambda d: True),
    ("BENCH_kernels", "arena_bytes_shipped_ratio",
     lambda d: d["shm_transport"]["zero_copy"]["bytes_shipped_ratio"], None, None),
    ("BENCH_serve", "checks_all_pass",
     lambda d: all(d["checks"].values()), "is", lambda d: True),
    ("BENCH_serve", "overlap_hit_rate",
     lambda d: d["cache"]["overlap_hit_rate"], None, None),
    ("BENCH_obs", "obs_overhead_pct",
     lambda d: d["overhead_pct"],
     "<=", lambda d: d["target_pct"]),
    ("BENCH_obs", "checks_all_pass",
     lambda d: all(d["checks"].values()), "is", lambda d: True),
]


def judge(value, op, target):
    """True iff ``value op target`` holds (None op -> informational)."""
    if op is None:
        return None
    if op == "<=":
        return value <= target
    if op == ">=":
        return value >= target
    if op == "is":
        return value == target
    raise ValueError(f"unknown op {op!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="directory holding the BENCH_*.json files "
                             "(default: the repo root)")
    args = parser.parse_args(argv)
    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent

    payloads = {}
    failures = []
    rows = []
    for artifact, metric, extract, op, target_fn in GATES:
        if artifact not in payloads:
            path = root / f"{artifact}.json"
            try:
                payloads[artifact] = json.loads(path.read_text())
            except (OSError, ValueError) as exc:
                payloads[artifact] = None
                failures.append(f"{artifact}: unreadable ({exc})")
        payload = payloads[artifact]
        if payload is None:
            rows.append((artifact, metric, "-", "-", "MISSING"))
            continue
        try:
            value = extract(payload)
            target = target_fn(payload) if target_fn else None
        except (KeyError, TypeError) as exc:
            failures.append(f"{artifact}.{metric}: bad shape ({exc!r})")
            rows.append((artifact, metric, "-", "-", "BADSHAPE"))
            continue
        verdict = judge(value, op, target)
        if verdict is None:
            status = "info"
        elif verdict:
            status = "ok"
        else:
            status = "FAIL"
            failures.append(f"{artifact}.{metric}: {value} violates {op} {target}")
        shown_value = value if not isinstance(value, bool) else ("yes" if value else "NO")
        shown_target = f"{op} {target}" if op else "-"
        rows.append((artifact, metric, str(shown_value), shown_target, status))

    widths = [max(len(str(row[col])) for row in rows + [("artifact", "metric", "value", "target", "status")])
              for col in range(5)]
    header = ("artifact", "metric", "value", "target", "status")
    for row in (header, *rows):
        print("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip())

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {sum(1 for r in rows if r[4] == 'ok')} gated metrics within targets")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
