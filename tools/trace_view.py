"""Convert repro telemetry traces (JSONL) to Chrome-trace/Perfetto JSON.

Reads span traces written by :class:`repro.telemetry.TraceSink` (the
``--trace`` CLI flag or ``Telemetry(trace=...)``), tolerating a torn tail
exactly like the run journal, and writes the Chrome trace-event format
that ``chrome://tracing`` and https://ui.perfetto.dev load directly:
structural spans (run/bracket/rung) on track 0, trials greedily packed
onto parallel tracks, fold/fit children on their trial's track.

Given several trace files — e.g. a serve daemon's job trace plus engine
and worker traces carrying the same ``trace_id`` — they are stitched
into one multi-process trace: every file keeps its own pid lane group,
all files share one timeline (``time.monotonic`` is system-wide on
Linux), and process labels show each file's trace id.  Files that are
missing, empty, or have an unreadable header are skipped with a warning
so a crashed process's torn trace never blocks viewing the others.

Usage::

    PYTHONPATH=src python tools/trace_view.py run.trace.jsonl [-o out.json]
    PYTHONPATH=src python tools/trace_view.py serve.trace worker-*.trace -o merged.json
    PYTHONPATH=src python tools/trace_view.py run.trace.jsonl --summary

``--summary`` prints span counts per file and the embedded metrics
snapshot instead of writing JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry import MetricsRegistry, TraceSink, merge_chrome_traces, to_chrome_trace
from repro.telemetry.formatting import format_seconds


def summarize(header, records, dropped) -> None:
    """Print a human-oriented digest of one trace file."""
    spans = [r for r in records if r.get("type") == "span"]
    line = f"trace v{header.get('version')} from pid {header.get('pid')}"
    if header.get("trace_id"):
        line += f", trace_id {header['trace_id']}"
    if dropped:
        line += f", {dropped} torn line(s) dropped"
    print(line)
    counts = Counter(s.get("kind", "?") for s in spans)
    for kind, count in counts.most_common():
        total = sum(s.get("dur", 0.0) for s in spans if s.get("kind") == kind)
        print(f"  {kind:<10} x{count:<5} total {format_seconds(total)}")
    metrics = [r for r in records if r.get("type") == "metrics"]
    if metrics:
        registry = MetricsRegistry()
        registry.merge_payload({
            "counters": metrics[-1].get("counters", {}),
            "timings": {
                name: [h["count"], h["total"], h["min"], h["max"]]
                for name, h in metrics[-1].get("histograms", {}).items()
            },
        })
        print("embedded metrics snapshot:")
        for line in registry.render_lines():
            print(f"  {line}")


def read_traces(paths):
    """Read every readable trace; returns ``(parts, total_dropped)``.

    ``parts`` is a list of ``(path, header, records, dropped)``.  Files
    that are missing, empty, or fail header validation are reported to
    stderr and skipped — a crashed worker's torn trace must not block
    viewing the survivors.
    """
    parts = []
    total_dropped = 0
    for path in paths:
        try:
            header, records, dropped = TraceSink.read(path)
        except (OSError, ValueError) as exc:
            print(f"warning: skipping {path}: {exc}", file=sys.stderr)
            continue
        parts.append((path, header, records, dropped))
        total_dropped += dropped
    return parts, total_dropped


def main(argv=None) -> int:
    """Convert (or summarize) trace files; returns the exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="+",
                        help="JSONL trace file(s) written by --trace / Telemetry(trace=...)")
    parser.add_argument("-o", "--out", default=None,
                        help="output path (default: <first trace>.chrome.json)")
    parser.add_argument("--summary", action="store_true",
                        help="print span counts and metrics instead of converting")
    args = parser.parse_args(argv)

    parts, total_dropped = read_traces(args.traces)
    if not parts:
        print("error: no readable trace files", file=sys.stderr)
        return 1

    if args.summary:
        for index, (path, header, records, dropped) in enumerate(parts):
            if index:
                print()
            if len(parts) > 1:
                print(f"== {path}")
            summarize(header, records, dropped)
        return 0

    out = Path(args.out) if args.out else Path(parts[0][0]).with_suffix(".chrome.json")
    if len(parts) == 1:
        _, header, records, _ = parts[0]
        chrome = to_chrome_trace(header, records)
    else:
        chrome = merge_chrome_traces([(header, records) for _, header, records, _ in parts])
    out.write_text(json.dumps(chrome, indent=1) + "\n")
    n_events = len(chrome["traceEvents"])
    print(f"{n_events} events from {len(parts)} file(s) -> {out}"
          + (f" ({total_dropped} torn line(s) dropped)" if total_dropped else ""))
    print("open in chrome://tracing or https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
