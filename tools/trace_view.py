"""Convert a repro telemetry trace (JSONL) to Chrome-trace/Perfetto JSON.

Reads a span trace written by :class:`repro.telemetry.TraceSink` (the
``--trace`` CLI flag or ``Telemetry(trace=...)``), tolerating a torn tail
exactly like the run journal, and writes the Chrome trace-event format
that ``chrome://tracing`` and https://ui.perfetto.dev load directly:
structural spans (run/bracket/rung) on track 0, trials greedily packed
onto parallel tracks, fold/fit children on their trial's track.

Usage::

    PYTHONPATH=src python tools/trace_view.py run.trace.jsonl [-o out.json]
    PYTHONPATH=src python tools/trace_view.py run.trace.jsonl --summary

``--summary`` prints span counts per kind and the embedded metrics
snapshot instead of writing JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry import MetricsRegistry, TraceSink, to_chrome_trace
from repro.telemetry.formatting import format_seconds


def summarize(header, records, dropped) -> None:
    """Print a human-oriented digest of one trace file."""
    spans = [r for r in records if r.get("type") == "span"]
    print(f"trace v{header.get('version')} from pid {header.get('pid')}"
          + (f", {dropped} torn line(s) dropped" if dropped else ""))
    counts = Counter(s.get("kind", "?") for s in spans)
    for kind, count in counts.most_common():
        total = sum(s.get("dur", 0.0) for s in spans if s.get("kind") == kind)
        print(f"  {kind:<10} x{count:<5} total {format_seconds(total)}")
    metrics = [r for r in records if r.get("type") == "metrics"]
    if metrics:
        registry = MetricsRegistry()
        registry.merge_payload({
            "counters": metrics[-1].get("counters", {}),
            "timings": {
                name: [h["count"], h["total"], h["min"], h["max"]]
                for name, h in metrics[-1].get("histograms", {}).items()
            },
        })
        print("embedded metrics snapshot:")
        for line in registry.render_lines():
            print(f"  {line}")


def main(argv=None) -> int:
    """Convert (or summarize) one trace file; returns the exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="JSONL trace file written by --trace / Telemetry(trace=...)")
    parser.add_argument("-o", "--out", default=None,
                        help="output path (default: <trace>.chrome.json)")
    parser.add_argument("--summary", action="store_true",
                        help="print span counts and metrics instead of converting")
    args = parser.parse_args(argv)

    header, records, dropped = TraceSink.read(args.trace)
    if args.summary:
        summarize(header, records, dropped)
        return 0
    out = Path(args.out) if args.out else Path(args.trace).with_suffix(".chrome.json")
    chrome = to_chrome_trace(header, records)
    out.write_text(json.dumps(chrome, indent=1) + "\n")
    n_events = len(chrome["traceEvents"])
    print(f"{n_events} events -> {out}"
          + (f" ({dropped} torn line(s) dropped)" if dropped else ""))
    print("open in chrome://tracing or https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
