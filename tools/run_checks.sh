#!/usr/bin/env bash
# Full verification ladder:
#   1. tier-1 test suite (fast; chaos tests deselected by pyproject addopts)
#   2. chaos-marked pytest tier (process kills, SIGKILL resume)
#   3. fault-injection harness smoke (tools/chaos_suite.py --quick)
#
# Usage: bash tools/run_checks.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1: pytest -x -q =="
python -m pytest -x -q

echo
echo "== chaos tier: pytest -m chaos =="
python -m pytest -q -m chaos

echo
echo "== chaos suite smoke: tools/chaos_suite.py --quick =="
python tools/chaos_suite.py --quick

echo
echo "all checks passed"
