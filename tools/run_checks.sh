#!/usr/bin/env bash
# Full verification ladder:
#   1. tier-1 test suite (fast; chaos + telemetry + kernels tests
#      deselected by pyproject addopts)
#   2. guard tier (data-integrity layer + corrupted-data chaos scenario)
#   3. kernels tier (exhaustive batched-kernel property sweeps + the
#      fold-loop and rung-level mega-batch microbench gates)
#   4. telemetry tier (trace-file tests + tracing/profiling overhead bench)
#   5. serve tier (service-daemon end-to-end tests + two-tenant burst
#      bench smoke)
#   6. elastic tier (elastic pool / speculative execution tests)
#   7. chaos-marked pytest tier (process kills, SIGKILL resume)
#   8. fault-injection harness smoke (tools/chaos_suite.py --quick,
#      per-scenario wall-clock printed by the harness itself)
#   9. crashx tier (faults-marked explorer tests + a bounded
#      crash-schedule sweep over the toy and HB+ workloads; the full
#      sweep that regenerates CRASHX_report.json is
#      `python tools/crashx.py --pairwise 40 --jobs 2 --out CRASHX_report.json`)
#  10. obs tier (obs-marked observability tests + the SIGKILL
#      flight-recorder chaos scenario + the obs overhead bench smoke)
#  11. bench regression gate (tools/bench_regress.py re-judges every
#      committed BENCH_*.json against its targets)
#
# Usage: bash tools/run_checks.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1: pytest -x -q =="
python -m pytest -x -q

echo
echo "== guard tier: pytest tests/guard + corrupted-data scenario =="
python -m pytest -q tests/guard
python - <<'EOF'
import importlib.util
spec = importlib.util.spec_from_file_location("chaos_suite", "tools/chaos_suite.py")
module = importlib.util.module_from_spec(spec)
spec.loader.exec_module(module)
print("corrupted-data[sha+]:", module.scenario_corrupted_data("sha+"))
EOF

echo
echo "== kernels tier: pytest -m kernels + fold-loop/rung microbenches =="
python -m pytest -q -m kernels
python tools/bench_kernels.py --skip-e2e \
    --out "$(mktemp -t BENCH_kernels_check.XXXXXX.json)"
python tools/bench_megabatch.py --skip-e2e \
    --out "$(mktemp -t BENCH_megabatch_check.XXXXXX.json)"

echo
echo "== telemetry tier: pytest -m telemetry + overhead bench =="
python -m pytest -q -m telemetry
python tools/bench_engine.py --only telemetry --n-samples 400 --max-iter 8 \
    --telemetry-out "$(mktemp -t BENCH_telemetry_check.XXXXXX.json)"

echo
echo "== serve tier: pytest -m serve + burst bench smoke =="
python -m pytest -q -m serve
python tools/bench_serve.py --quick

echo
echo "== elastic tier: pytest -m elastic =="
python -m pytest -q -m elastic

echo
echo "== chaos tier: pytest -m chaos =="
python -m pytest -q -m chaos

echo
echo "== chaos suite smoke: tools/chaos_suite.py --quick + arena SIGKILL leak check =="
python tools/chaos_suite.py --quick
python tools/chaos_suite.py --only arena-sigkill

echo
echo "== crashx tier: pytest -m faults + bounded schedule sweep =="
python -m pytest -q -m faults
python tools/crashx.py --workload toy --workload hb --workload hb-par \
    --max-hits-per-site 2 --jobs 2

echo
echo "== obs tier: pytest -m obs + SIGKILL flight-recorder scenario + bench smoke =="
python -m pytest -q -m obs
python tools/chaos_suite.py --only serve-sigkill-flightrec
python tools/bench_obs.py --quick

echo
echo "== bench regression gate: tools/bench_regress.py =="
python tools/bench_regress.py

echo
echo "all checks passed"
