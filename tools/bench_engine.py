"""Benchmark the trial-execution engine: SHA / HyperBand at 1/2/4 workers.

Times each searcher on the synthetic classification dataset three ways —
the legacy engine-less inline path (baseline), then through a
:class:`repro.engine.TrialEngine` with 1, 2 and 4 workers (serial executor
for 1, process pool otherwise, evaluation cache on) — and writes
``BENCH_engine.json`` with wall-clock seconds, speedups versus the
baseline and cache hit rates, so future PRs have a perf trajectory to
compare against.

Two effects combine into the speedup: the process pool overlaps
evaluations (when physical cores exist), and the memoization cache
eliminates the repeated (config, budget) pairs that HyperBand's bracket
cycling generates regardless of core count.  The JSON separates the
per-run hit rate so the two are distinguishable.

Each run also records the robustness counters (retries, watchdog
timeouts, degraded, non-finite and guard-event trials — all zero on a
healthy machine), and two final passes time a journaled HyperBand run
against an unjournaled one (the fsync'd write-ahead log's overhead) and
a ``guard_policy="repair"`` grouped run against a guard-off one (the
data-integrity layer's overhead, targeted at < 5% on clean data), each
as a percentage of wall clock.

A separate telemetry tier (``--only telemetry``) times a serial engine
HyperBand run with full tracing + profiling against the identical run
with telemetry off and writes ``BENCH_telemetry.json`` — the
observability layer's own < 5% overhead contract.

Usage::

    PYTHONPATH=src python tools/bench_engine.py [--out BENCH_engine.json]
    PYTHONPATH=src python tools/bench_engine.py --only telemetry
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.bandit import HyperBand, SuccessiveHalving
from repro.core import MLPModelFactory, grouped_evaluator, vanilla_evaluator
from repro.datasets import make_classification
from repro.engine import ParallelExecutor, SerialExecutor, TrialEngine
from repro.experiments import paper_search_space
from repro.telemetry import Telemetry
from repro.telemetry.formatting import format_overhead, format_percent

WORKER_COUNTS = (1, 2, 4)


def build_problem(args):
    """Synthetic dataset, search space, candidate pools and model factory."""
    X, y = make_classification(
        n_samples=args.n_samples, n_features=12, n_classes=2,
        class_sep=1.2, flip_y=0.05, random_state=args.seed,
    )
    space = paper_search_space(2)
    grid = space.grid()
    pools = {
        # SHA halves a moderate pool; each (config, budget) pair is unique.
        "sha": grid[: args.sha_pool],
        # HyperBand cycles a small pool through its brackets -> repeats.
        "hb": grid[: args.hb_pool],
    }
    factory = MLPModelFactory(task="classification", max_iter=args.max_iter)
    return X, y, space, pools, factory


def make_searcher(method, space, evaluator, seed, engine=None):
    """SHA or HB wired to the shared evaluator and optional engine."""
    if method == "sha":
        return SuccessiveHalving(space, evaluator, random_state=seed, engine=engine)
    return HyperBand(space, evaluator, random_state=seed, engine=engine)


def run_once(method, X, y, space, pool, factory, seed, engine):
    """One timed fit; returns (seconds, SearchResult)."""
    evaluator = vanilla_evaluator(X, y, factory)
    searcher = make_searcher(method, space, evaluator, seed, engine=engine)
    start = time.perf_counter()
    result = searcher.fit(configurations=pool)
    return time.perf_counter() - start, result


def bench_method(method, X, y, space, pool, factory, seed):
    """Baseline + engine runs at every worker count for one method."""
    baseline_seconds, baseline_result = run_once(
        method, X, y, space, pool, factory, seed, engine=None
    )
    runs = {}
    reference_best = None
    for n_workers in WORKER_COUNTS:
        executor = SerialExecutor() if n_workers == 1 else ParallelExecutor(n_workers=n_workers)
        with TrialEngine(executor=executor, cache=True) as engine:
            seconds, result = run_once(method, X, y, space, pool, factory, seed, engine)
            stats = engine.stats
        if reference_best is None:
            reference_best = result.best_config
        elif result.best_config != reference_best:
            raise AssertionError(
                f"{method}: worker count changed the winner — determinism broken"
            )
        runs[str(n_workers)] = {
            "seconds": round(seconds, 4),
            "speedup_vs_baseline": round(baseline_seconds / seconds, 3),
            "cache_hit_rate": round(stats.hit_rate, 4),
            "n_trials": result.n_trials,
            "evaluations_executed": stats.executed,
            "retries": stats.retries,
            "timeouts": stats.timeouts,
            "degraded": stats.failures,
            "non_finite": stats.non_finite,
            "guard_events": stats.guard_events,
        }
        print(f"  {method.upper():>3} x{n_workers}: {seconds:6.2f}s  "
              f"speedup {runs[str(n_workers)]['speedup_vs_baseline']:5.2f}x  "
              f"hit rate {format_percent(stats.hit_rate):>6}  "
              f"({stats.executed}/{result.n_trials} executed)")
    return {
        "baseline_seconds": round(baseline_seconds, 4),
        "baseline_trials": baseline_result.n_trials,
        "runs": runs,
    }


def bench_journal_overhead(X, y, space, pool, factory, seed):
    """Journal cost: HB serial with and without the fsync'd write-ahead log."""
    plain_seconds, plain_result = run_journal_run(X, y, space, pool, factory, seed, journal=None)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.wal"
        journaled_seconds, journaled_result = run_journal_run(
            X, y, space, pool, factory, seed, journal=str(path)
        )
        n_entries = sum(1 for _ in path.open()) - 1  # minus header
    if journaled_result.best_config != plain_result.best_config:
        raise AssertionError("journaling changed the winner — determinism broken")
    overhead_pct = 100.0 * (journaled_seconds - plain_seconds) / plain_seconds
    print(f"journal: plain {plain_seconds:.2f}s, journaled {journaled_seconds:.2f}s "
          f"({n_entries} entries) -> overhead {format_overhead(overhead_pct / 100.0)}")
    return {
        "plain_seconds": round(plain_seconds, 4),
        "journaled_seconds": round(journaled_seconds, 4),
        "entries": n_entries,
        "overhead_pct": round(overhead_pct, 2),
    }


def run_journal_run(X, y, space, pool, factory, seed, journal):
    """One serial HB fit, optionally write-ahead-logged."""
    with TrialEngine(executor=SerialExecutor(), cache=True, journal=journal) as engine:
        return run_once("hb", X, y, space, pool, factory, seed, engine)


def bench_guard_overhead(X, y, space, pool, factory, seed, repeats=3):
    """Guard cost: grouped HB with guard_policy="repair" vs guard off.

    The data is clean, so this measures the pure bookkeeping tax —
    entry validation, per-evaluation GuardLog, divergence/finiteness
    checks — which the robustness contract caps at 5% of wall clock.
    Each variant takes the best of ``repeats`` fits to shed timer noise.
    """

    def best_of(guard_policy):
        best_seconds, best_result = float("inf"), None
        for _ in range(repeats):
            evaluator = grouped_evaluator(
                X, y, factory, guard_policy=guard_policy, random_state=seed
            )
            searcher = HyperBand(space, evaluator, random_state=seed)
            start = time.perf_counter()
            result = searcher.fit(configurations=pool)
            seconds = time.perf_counter() - start
            if seconds < best_seconds:
                best_seconds, best_result = seconds, result
        return best_seconds, best_result

    off_seconds, off_result = best_of(None)
    on_seconds, on_result = best_of("repair")
    if on_result.best_config != off_result.best_config:
        raise AssertionError("the guard changed the winner on clean data — determinism broken")
    trial_events = sum(len(t.result.guard_events) for t in on_result.trials)
    overhead_pct = 100.0 * (on_seconds - off_seconds) / off_seconds
    print(f"guard: off {off_seconds:.2f}s, repair {on_seconds:.2f}s "
          f"({trial_events} trial events on clean data) -> overhead "
          f"{format_overhead(overhead_pct / 100.0)}")
    return {
        "off_seconds": round(off_seconds, 4),
        "repair_seconds": round(on_seconds, 4),
        "trial_guard_events": trial_events,
        "overhead_pct": round(overhead_pct, 2),
        "target_pct": 5.0,
    }


def bench_telemetry(X, y, space, pool, factory, seed, repeats=3):
    """Telemetry cost: serial engine HB fully traced + profiled vs off.

    Both variants run the identical seeded HyperBand search through a
    serial engine; the traced one streams every span to a JSONL sink and
    records ``@profiled`` hot-path timings — the maximal telemetry
    configuration, priced against a < 5% wall-clock target.  Best of
    ``repeats`` per variant to shed timer noise; the winner must not
    change (telemetry is observational only).
    """

    def timed_fit(telemetry):
        with TrialEngine(executor=SerialExecutor(), cache=True, telemetry=telemetry) as engine:
            return run_once("hb", X, y, space, pool, factory, seed, engine)

    off_seconds, off_result = float("inf"), None
    for _ in range(repeats):
        seconds, result = timed_fit(None)
        if seconds < off_seconds:
            off_seconds, off_result = seconds, result

    on_seconds, on_result = float("inf"), None
    spans_written, counters = 0, {}
    with tempfile.TemporaryDirectory() as tmp:
        for index in range(repeats):
            telemetry = Telemetry(
                trace=str(Path(tmp) / f"bench_{index}.trace.jsonl"), profile=True
            )
            seconds, result = timed_fit(telemetry)
            telemetry.close()
            if seconds < on_seconds:
                on_seconds, on_result = seconds, result
                spans_written = telemetry.sink.spans_written
                counters = telemetry.registry.counters()
    if on_result.best_config != off_result.best_config:
        raise AssertionError("telemetry changed the winner — neutrality broken")
    overhead_pct = 100.0 * (on_seconds - off_seconds) / off_seconds
    print(f"telemetry: off {off_seconds:.2f}s, traced+profiled {on_seconds:.2f}s "
          f"({spans_written} spans) -> overhead {format_overhead(overhead_pct / 100.0)}")
    return {
        "off_seconds": round(off_seconds, 4),
        "traced_seconds": round(on_seconds, 4),
        "spans_written": spans_written,
        "profiled_calls": {
            name: count for name, count in counters.items()
            if name.startswith("profile.") and name.endswith(".calls")
        },
        "overhead_pct": round(overhead_pct, 2),
        "target_pct": 5.0,
    }


def run_telemetry_tier(args, X, y, space, pools, factory):
    """The telemetry tier: bench + ``BENCH_telemetry.json``."""
    print("telemetry tier (serial HB, trace + profile on vs off):")
    report = {
        "benchmark": "repro.telemetry tracing+profiling overhead on serial HB",
        "dataset": {"n_samples": args.n_samples, "n_features": 12},
        "max_iter": args.max_iter,
        "seed": args.seed,
        "pool": len(pools["hb"]),
        "telemetry_overhead": bench_telemetry(
            X, y, space, pools["hb"], factory, args.seed
        ),
    }
    out = Path(args.telemetry_out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"written to {out}")
    return report


def main(argv=None) -> int:
    """Run the benchmark and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"))
    parser.add_argument("--telemetry-out",
                        default=str(Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"))
    parser.add_argument("--only", choices=("all", "engine", "telemetry"), default="all",
                        help="run only one benchmark tier (default: all)")
    parser.add_argument("--n-samples", type=int, default=900)
    parser.add_argument("--max-iter", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sha-pool", type=int, default=16)
    parser.add_argument("--hb-pool", type=int, default=6)
    args = parser.parse_args(argv)

    X, y, space, pools, factory = build_problem(args)
    print(f"dataset: {args.n_samples} samples, MLP max_iter={args.max_iter}")
    if args.only == "telemetry":
        run_telemetry_tier(args, X, y, space, pools, factory)
        return 0
    report = {
        "benchmark": "repro.engine SHA/HB at 1/2/4 workers",
        "dataset": {"n_samples": args.n_samples, "n_features": 12},
        "max_iter": args.max_iter,
        "seed": args.seed,
        "pools": {name: len(pool) for name, pool in pools.items()},
        "methods": {},
    }
    for method in ("sha", "hb"):
        print(f"{method.upper()} (pool of {len(pools[method])}):")
        report["methods"][method] = bench_method(
            method, X, y, space, pools[method], factory, args.seed
        )

    report["journal_overhead"] = bench_journal_overhead(
        X, y, space, pools["hb"], factory, args.seed
    )
    report["guard_overhead"] = bench_guard_overhead(
        X, y, space, pools["hb"], factory, args.seed
    )

    hb4 = report["methods"]["hb"]["runs"]["4"]
    report["headline"] = {
        "hyperband_4worker_speedup": hb4["speedup_vs_baseline"],
        "hyperband_4worker_cache_hit_rate": hb4["cache_hit_rate"],
        "journal_overhead_pct": report["journal_overhead"]["overhead_pct"],
        "guard_overhead_pct": report["guard_overhead"]["overhead_pct"],
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nheadline: HB x4 speedup {hb4['speedup_vs_baseline']}x, "
          f"cache hit rate {format_percent(hb4['cache_hit_rate'])}")
    print(f"written to {out}")
    if args.only == "all":
        print()
        run_telemetry_tier(args, X, y, space, pools, factory)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
