"""Benchmark the trial-execution engine: SHA / HyperBand at 1/2/4 workers.

Times each searcher on the synthetic classification dataset three ways —
the legacy engine-less inline path (baseline), then through a
:class:`repro.engine.TrialEngine` with 1, 2 and 4 workers (serial executor
for 1, process pool otherwise, evaluation cache on) — and writes
``BENCH_engine.json`` with wall-clock seconds, speedups versus the
baseline and cache hit rates, so future PRs have a perf trajectory to
compare against.

Two effects combine into the speedup: the process pool overlaps
evaluations (when physical cores exist), and the memoization cache
eliminates the repeated (config, budget) pairs that HyperBand's bracket
cycling generates regardless of core count.  The JSON separates the
per-run hit rate so the two are distinguishable.

Each run also records the robustness counters (retries, watchdog
timeouts, degraded, non-finite and guard-event trials — all zero on a
healthy machine), and two final passes time a journaled HyperBand run
against an unjournaled one (the fsync'd write-ahead log's overhead) and
a ``guard_policy="repair"`` grouped run against a guard-off one (the
data-integrity layer's overhead, targeted at < 5% on clean data), each
as a percentage of wall clock.  Overhead comparisons take one untimed
warmup fit then the median of five timed fits per variant (comparing
noisy minima used to report negative overheads).  The worker sweep also
enforces that a process pool never loses to the serial executor beyond
a noise margin — the regression the pipelined dispatch mode fixed.

A separate telemetry tier (``--only telemetry``) times a serial engine
HyperBand run with full tracing + profiling against the identical run
with telemetry off and writes ``BENCH_telemetry.json`` — the
observability layer's own < 5% overhead contract.

Usage::

    PYTHONPATH=src python tools/bench_engine.py [--out BENCH_engine.json]
    PYTHONPATH=src python tools/bench_engine.py --only telemetry
"""

from __future__ import annotations

import argparse
import json
import statistics
import tempfile
import time
from pathlib import Path

from repro.bandit import HyperBand, SuccessiveHalving
from repro.core import MLPModelFactory, grouped_evaluator, vanilla_evaluator
from repro.datasets import make_classification
from repro.engine import ParallelExecutor, SerialExecutor, TrialEngine
from repro.experiments import paper_search_space
from repro.telemetry import Telemetry
from repro.telemetry.formatting import format_overhead, format_percent

WORKER_COUNTS = (1, 2, 4)

#: Multi-worker wall clock may exceed serial by at most this factor
#: before the bench fails.  On a box with spare cores the pool should
#: win outright; on a fully saturated single-core box timesharing adds
#: real scheduling overhead and the run-to-run noise is large, so this
#: is a coarse backstop — the sharp regression guard is
#: :func:`bench_dispatch_overhead`, which is workload-independent.
MULTIWORKER_NOISE_MARGIN = 1.25

#: Per-trial pool dispatch overhead ceiling (seconds) versus serial.
#: The pipelined executor's cost per trial is task pickling + one pipe
#: round trip (~0.2 ms); the old dispatch-one-collect-one loop with
#: 50 ms polling sat far above this, which is exactly how a 2-worker
#: pool ended up 13% slower than serial on real trials.
DISPATCH_OVERHEAD_CEILING = 0.002

#: Timing repetitions for the overhead comparisons (median taken).
OVERHEAD_REPEATS = 5


def timed_median(fit, repeats=OVERHEAD_REPEATS):
    """Warmup fit + median-of-``repeats`` wall clock.

    One untimed warmup fit absorbs first-run effects (allocator growth,
    lazy imports, CPU frequency ramp), then the median of ``repeats``
    timed fits prices the variant.  Comparing two noisy *minima* — the
    old best-of-N approach — regularly produced negative overheads for
    layers that clearly cost something; medians of warmed runs do not.

    ``fit`` returns ``(seconds, result)``; the result of the last timed
    fit is returned alongside the median.
    """
    fit()  # warmup, untimed
    samples = []
    result = None
    for _ in range(repeats):
        seconds, result = fit()
        samples.append(seconds)
    return statistics.median(samples), result


def build_problem(args):
    """Synthetic dataset, search space, candidate pools and model factory."""
    X, y = make_classification(
        n_samples=args.n_samples, n_features=12, n_classes=2,
        class_sep=1.2, flip_y=0.05, random_state=args.seed,
    )
    space = paper_search_space(2)
    grid = space.grid()
    pools = {
        # SHA halves a moderate pool; each (config, budget) pair is unique.
        "sha": grid[: args.sha_pool],
        # HyperBand cycles a small pool through its brackets -> repeats.
        "hb": grid[: args.hb_pool],
    }
    factory = MLPModelFactory(task="classification", max_iter=args.max_iter)
    return X, y, space, pools, factory


def make_searcher(method, space, evaluator, seed, engine=None):
    """SHA or HB wired to the shared evaluator and optional engine."""
    if method == "sha":
        return SuccessiveHalving(space, evaluator, random_state=seed, engine=engine)
    return HyperBand(space, evaluator, random_state=seed, engine=engine)


def run_once(method, X, y, space, pool, factory, seed, engine):
    """One timed fit; returns (seconds, SearchResult)."""
    evaluator = vanilla_evaluator(X, y, factory)
    searcher = make_searcher(method, space, evaluator, seed, engine=engine)
    start = time.perf_counter()
    result = searcher.fit(configurations=pool)
    return time.perf_counter() - start, result


def bench_method(method, X, y, space, pool, factory, seed, repeats=3):
    """Baseline + engine runs at every worker count for one method.

    Every variant is timed as warmup + median-of-``repeats`` fits, each
    on a fresh engine (a shared engine would serve later fits from the
    memoization cache and time nothing).
    """
    baseline_seconds, baseline_result = timed_median(
        lambda: run_once(method, X, y, space, pool, factory, seed, engine=None),
        repeats,
    )
    runs = {}
    reference_best = None
    for n_workers in WORKER_COUNTS:

        def engine_fit():
            executor = (
                SerialExecutor() if n_workers == 1
                else ParallelExecutor(n_workers=n_workers)
            )
            with TrialEngine(executor=executor, cache=True) as engine:
                seconds, result = run_once(method, X, y, space, pool, factory, seed, engine)
            engine_fit.stats = engine.stats
            return seconds, result

        seconds, result = timed_median(engine_fit, repeats)
        stats = engine_fit.stats
        if reference_best is None:
            reference_best = result.best_config
        elif result.best_config != reference_best:
            raise AssertionError(
                f"{method}: worker count changed the winner — determinism broken"
            )
        runs[str(n_workers)] = {
            "seconds": round(seconds, 4),
            "speedup_vs_baseline": round(baseline_seconds / seconds, 3),
            "cache_hit_rate": round(stats.hit_rate, 4),
            "n_trials": result.n_trials,
            "evaluations_executed": stats.executed,
            "retries": stats.retries,
            "timeouts": stats.timeouts,
            "degraded": stats.failures,
            "non_finite": stats.non_finite,
            "guard_events": stats.guard_events,
        }
        print(f"  {method.upper():>3} x{n_workers}: {seconds:6.2f}s  "
              f"speedup {runs[str(n_workers)]['speedup_vs_baseline']:5.2f}x  "
              f"hit rate {format_percent(stats.hit_rate):>6}  "
              f"({stats.executed}/{result.n_trials} executed)")
    serial_seconds = runs["1"]["seconds"]
    for n_workers in WORKER_COUNTS[1:]:
        pool_seconds = runs[str(n_workers)]["seconds"]
        if pool_seconds > serial_seconds * MULTIWORKER_NOISE_MARGIN:
            raise AssertionError(
                f"{method}: {n_workers} workers took {pool_seconds:.2f}s against "
                f"{serial_seconds:.2f}s serial — the pool must never lose to one "
                f"worker beyond the {MULTIWORKER_NOISE_MARGIN:.2f}x noise margin"
            )
    return {
        "baseline_seconds": round(baseline_seconds, 4),
        "baseline_trials": baseline_result.n_trials,
        "runs": runs,
    }


class NullWorkEvaluator:
    """Picklable evaluator whose trials cost microseconds.

    With no training to hide behind, engine wall clock is pure dispatch:
    task pickling, pipe round trips, scheduler wakeups.
    """

    def evaluate(self, config, budget_fraction, rng):
        from repro.bandit.base import EvaluationResult

        score = config["q"] / 10.0
        return EvaluationResult(mean=score, std=0.0, score=score, gamma=1.0)


def bench_dispatch_overhead(seed, n_trials=60, repeats=OVERHEAD_REPEATS):
    """Per-trial pool dispatch cost versus serial, on zero-work trials.

    This is the sharp multi-worker regression guard: it is independent of
    the training workload and of how many physical cores the bench box
    has, so it stays deterministic where the wall-clock sweep is noisy.
    The pipelined executor queues every task up front and blocks on the
    result pipes, costing ~0.2 ms per trial; the old dispatch-one-
    collect-one loop woke on a 50 ms poll timer, which is how a 2-worker
    pool lost 13% to serial on real trials.  Asserted: per-trial pool
    overhead below :data:`DISPATCH_OVERHEAD_CEILING`.
    """
    from repro.engine import TrialRequest

    def run_with(executor_factory):
        def fit():
            with TrialEngine(executor=executor_factory(), cache=False) as engine:
                engine.bind(NullWorkEvaluator(), root_seed=seed)
                start = time.perf_counter()
                engine.run_batch(
                    [
                        TrialRequest(config={"q": index}, budget_fraction=1.0)
                        for index in range(n_trials)
                    ]
                )
                return time.perf_counter() - start, None

        return timed_median(fit, repeats)[0]

    serial_seconds = run_with(SerialExecutor)
    report = {
        "n_trials": n_trials,
        "serial_seconds": round(serial_seconds, 4),
        "ceiling_ms_per_trial": DISPATCH_OVERHEAD_CEILING * 1000,
        "workers": {},
    }
    for n_workers in WORKER_COUNTS[1:]:
        pool_seconds = run_with(lambda: ParallelExecutor(n_workers=n_workers))
        per_trial = max(0.0, pool_seconds - serial_seconds) / n_trials
        report["workers"][str(n_workers)] = {
            "seconds": round(pool_seconds, 4),
            "overhead_ms_per_trial": round(per_trial * 1000, 4),
        }
        print(f"dispatch x{n_workers}: serial {serial_seconds*1000:.1f}ms, "
              f"pool {pool_seconds*1000:.1f}ms -> "
              f"{per_trial*1000:.3f}ms/trial overhead "
              f"(ceiling {DISPATCH_OVERHEAD_CEILING*1000:.1f}ms)")
        if per_trial > DISPATCH_OVERHEAD_CEILING:
            raise AssertionError(
                f"{n_workers}-worker dispatch overhead {per_trial*1000:.2f}ms/trial "
                f"exceeds the {DISPATCH_OVERHEAD_CEILING*1000:.1f}ms ceiling — "
                f"pipe chatter is back"
            )
    return report


def bench_journal_overhead(X, y, space, pool, factory, seed):
    """Journal cost: HB serial with and without the fsync'd write-ahead log.

    Warmup + median-of-N per variant (see :func:`timed_median`); each
    journaled fit writes a fresh WAL so no run resumes its predecessor.
    """
    plain_seconds, plain_result = timed_median(
        lambda: run_journal_run(X, y, space, pool, factory, seed, journal=None)
    )
    with tempfile.TemporaryDirectory() as tmp:
        wal_paths = []

        def journaled_fit():
            path = Path(tmp) / f"bench_{len(wal_paths)}.wal"
            wal_paths.append(path)
            return run_journal_run(X, y, space, pool, factory, seed, journal=str(path))

        journaled_seconds, journaled_result = timed_median(journaled_fit)
        n_entries = sum(1 for _ in wal_paths[-1].open()) - 1  # minus header
    if journaled_result.best_config != plain_result.best_config:
        raise AssertionError("journaling changed the winner — determinism broken")
    overhead_pct = 100.0 * (journaled_seconds - plain_seconds) / plain_seconds
    print(f"journal: plain {plain_seconds:.2f}s, journaled {journaled_seconds:.2f}s "
          f"({n_entries} entries) -> overhead {format_overhead(overhead_pct / 100.0)}")
    return {
        "plain_seconds": round(plain_seconds, 4),
        "journaled_seconds": round(journaled_seconds, 4),
        "entries": n_entries,
        "overhead_pct": round(overhead_pct, 2),
    }


def run_journal_run(X, y, space, pool, factory, seed, journal):
    """One serial HB fit, optionally write-ahead-logged."""
    with TrialEngine(executor=SerialExecutor(), cache=True, journal=journal) as engine:
        return run_once("hb", X, y, space, pool, factory, seed, engine)


def bench_guard_overhead(X, y, space, pool, factory, seed, repeats=OVERHEAD_REPEATS):
    """Guard cost: grouped HB with guard_policy="repair" vs guard off.

    The data is clean, so this measures the pure bookkeeping tax —
    entry validation, per-evaluation GuardLog, divergence/finiteness
    checks — which the robustness contract caps at 5% of wall clock.
    Warmup + median-of-``repeats`` per variant (see :func:`timed_median`).
    """

    def timed_fit(guard_policy):
        def fit():
            evaluator = grouped_evaluator(
                X, y, factory, guard_policy=guard_policy, random_state=seed
            )
            searcher = HyperBand(space, evaluator, random_state=seed)
            start = time.perf_counter()
            result = searcher.fit(configurations=pool)
            return time.perf_counter() - start, result

        return timed_median(fit, repeats)

    off_seconds, off_result = timed_fit(None)
    on_seconds, on_result = timed_fit("repair")
    if on_result.best_config != off_result.best_config:
        raise AssertionError("the guard changed the winner on clean data — determinism broken")
    trial_events = sum(len(t.result.guard_events) for t in on_result.trials)
    overhead_pct = 100.0 * (on_seconds - off_seconds) / off_seconds
    print(f"guard: off {off_seconds:.2f}s, repair {on_seconds:.2f}s "
          f"({trial_events} trial events on clean data) -> overhead "
          f"{format_overhead(overhead_pct / 100.0)}")
    return {
        "off_seconds": round(off_seconds, 4),
        "repair_seconds": round(on_seconds, 4),
        "trial_guard_events": trial_events,
        "overhead_pct": round(overhead_pct, 2),
        "target_pct": 5.0,
    }


def bench_telemetry(X, y, space, pool, factory, seed, repeats=OVERHEAD_REPEATS):
    """Telemetry cost: serial engine HB fully traced + profiled vs off.

    Both variants run the identical seeded HyperBand search through a
    serial engine; the traced one streams every span to a JSONL sink and
    records ``@profiled`` hot-path timings — the maximal telemetry
    configuration, priced against a < 5% wall-clock target.  Warmup +
    median-of-``repeats`` per variant (see :func:`timed_median`); the
    winner must not change (telemetry is observational only).
    """

    def timed_fit(telemetry):
        with TrialEngine(executor=SerialExecutor(), cache=True, telemetry=telemetry) as engine:
            return run_once("hb", X, y, space, pool, factory, seed, engine)

    off_seconds, off_result = timed_median(lambda: timed_fit(None), repeats)

    last = {"spans": 0, "counters": {}}
    with tempfile.TemporaryDirectory() as tmp:
        trace_paths = []

        def traced_fit():
            telemetry = Telemetry(
                trace=str(Path(tmp) / f"bench_{len(trace_paths)}.trace.jsonl"),
                profile=True,
            )
            trace_paths.append(telemetry)
            try:
                return timed_fit(telemetry)
            finally:
                telemetry.close()
                last["spans"] = telemetry.sink.spans_written
                last["counters"] = telemetry.registry.counters()

        on_seconds, on_result = timed_median(traced_fit, repeats)
    spans_written, counters = last["spans"], last["counters"]
    if on_result.best_config != off_result.best_config:
        raise AssertionError("telemetry changed the winner — neutrality broken")
    overhead_pct = 100.0 * (on_seconds - off_seconds) / off_seconds
    print(f"telemetry: off {off_seconds:.2f}s, traced+profiled {on_seconds:.2f}s "
          f"({spans_written} spans) -> overhead {format_overhead(overhead_pct / 100.0)}")
    return {
        "off_seconds": round(off_seconds, 4),
        "traced_seconds": round(on_seconds, 4),
        "spans_written": spans_written,
        "profiled_calls": {
            name: count for name, count in counters.items()
            if name.startswith("profile.") and name.endswith(".calls")
        },
        "overhead_pct": round(overhead_pct, 2),
        "target_pct": 5.0,
    }


def run_telemetry_tier(args, X, y, space, pools, factory):
    """The telemetry tier: bench + ``BENCH_telemetry.json``."""
    print("telemetry tier (serial HB, trace + profile on vs off):")
    report = {
        "benchmark": "repro.telemetry tracing+profiling overhead on serial HB",
        "dataset": {"n_samples": args.n_samples, "n_features": 12},
        "max_iter": args.max_iter,
        "seed": args.seed,
        "pool": len(pools["hb"]),
        "telemetry_overhead": bench_telemetry(
            X, y, space, pools["hb"], factory, args.seed
        ),
    }
    out = Path(args.telemetry_out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"written to {out}")
    return report


def main(argv=None) -> int:
    """Run the benchmark and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"))
    parser.add_argument("--telemetry-out",
                        default=str(Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"))
    parser.add_argument("--only", choices=("all", "engine", "telemetry"), default="all",
                        help="run only one benchmark tier (default: all)")
    parser.add_argument("--n-samples", type=int, default=900)
    parser.add_argument("--max-iter", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sha-pool", type=int, default=16)
    parser.add_argument("--hb-pool", type=int, default=6)
    args = parser.parse_args(argv)

    X, y, space, pools, factory = build_problem(args)
    print(f"dataset: {args.n_samples} samples, MLP max_iter={args.max_iter}")
    if args.only == "telemetry":
        run_telemetry_tier(args, X, y, space, pools, factory)
        return 0
    report = {
        "benchmark": "repro.engine SHA/HB at 1/2/4 workers",
        "dataset": {"n_samples": args.n_samples, "n_features": 12},
        "max_iter": args.max_iter,
        "seed": args.seed,
        "pools": {name: len(pool) for name, pool in pools.items()},
        "methods": {},
    }
    for method in ("sha", "hb"):
        print(f"{method.upper()} (pool of {len(pools[method])}):")
        report["methods"][method] = bench_method(
            method, X, y, space, pools[method], factory, args.seed
        )

    report["dispatch_overhead"] = bench_dispatch_overhead(args.seed)
    report["journal_overhead"] = bench_journal_overhead(
        X, y, space, pools["hb"], factory, args.seed
    )
    report["guard_overhead"] = bench_guard_overhead(
        X, y, space, pools["hb"], factory, args.seed
    )

    hb4 = report["methods"]["hb"]["runs"]["4"]
    report["headline"] = {
        "hyperband_4worker_speedup": hb4["speedup_vs_baseline"],
        "hyperband_4worker_cache_hit_rate": hb4["cache_hit_rate"],
        "journal_overhead_pct": report["journal_overhead"]["overhead_pct"],
        "guard_overhead_pct": report["guard_overhead"]["overhead_pct"],
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nheadline: HB x4 speedup {hb4['speedup_vs_baseline']}x, "
          f"cache hit rate {format_percent(hb4['cache_hit_rate'])}")
    print(f"written to {out}")
    if args.only == "all":
        print()
        run_telemetry_tier(args, X, y, space, pools, factory)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
