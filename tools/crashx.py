#!/usr/bin/env python
"""crashx — deterministic crash-schedule explorer CLI (``repro.faults``).

Enumerates crash schedules over the reference workloads and asserts the
bitwise resume contract at every point:

1. **census** a workload: run it once uninterrupted with every fault
   point counting its hits, and record the reference fingerprint;
2. **sweep** every ``(site, hit)`` single-fault crash schedule: the
   process is killed mid-operation, restarted over the same directory,
   and the resumed fingerprint must equal the reference bit for bit;
3. optionally sample **pairwise** schedules (crash, then crash the
   recovery) under ``--pairwise N``;
4. **shrink** any failing schedule to its shortest still-failing
   reproducer before reporting it.

Usage::

    PYTHONPATH=src python tools/crashx.py --census-only        # site census
    PYTHONPATH=src python tools/crashx.py --workload toy       # quick check
    PYTHONPATH=src python tools/crashx.py --max-hits-per-site 2  # bounded (CI)
    PYTHONPATH=src python tools/crashx.py --pairwise 40 \\
        --jobs 2 --out CRASHX_report.json                      # full artifact

Exit code 0 iff every explored schedule passes.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults.explore import (  # noqa: E402
    census_workload,
    explore_plans,
    pairwise_plans,
    run_plan,
    shrink_plan,
    single_fault_plans,
    summarize,
)
from repro.faults.workloads import WORKLOAD_NAMES  # noqa: E402


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workload", action="append", choices=sorted(WORKLOAD_NAMES), default=None,
        help="workload(s) to explore (default: hb, hb-par and serve; the "
             "hb-par sweep is restricted to arena.* sites unless --site is given)",
    )
    parser.add_argument(
        "--census-only", action="store_true",
        help="print each workload's fault-point census and exit",
    )
    parser.add_argument(
        "--site", action="append", default=None,
        help="restrict the sweep to these site names (repeatable)",
    )
    parser.add_argument(
        "--max-hits-per-site", type=int, default=None, metavar="N",
        help="bound the sweep to N hit indices per site, ends-first "
             "(default: every censused hit)",
    )
    parser.add_argument(
        "--action", default="crash",
        help="fault action for the single-fault sweep (default: crash)",
    )
    parser.add_argument(
        "--pairwise", type=int, default=0, metavar="N",
        help="additionally sample N two-leg crash-the-recovery schedules",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="pairwise sampling seed (default 0)"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run N schedules concurrently (default 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="per-leg subprocess timeout in seconds (default 300)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write the coverage report JSON here",
    )
    parser.add_argument(
        "--base-dir", type=Path, default=None, metavar="DIR",
        help="working directory for run state (default: a fresh temp dir)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(argv)
    workloads = args.workload or ["hb", "hb-par", "serve"]
    base_dir = args.base_dir or Path(tempfile.mkdtemp(prefix="crashx-"))
    base_dir.mkdir(parents=True, exist_ok=True)
    own_base = args.base_dir is None
    started = time.monotonic()
    sections = []
    any_failed = False
    distinct_sites = set()
    try:
        for name in workloads:
            print(f"== {name}: census ==", flush=True)
            reference = census_workload(name, base_dir, timeout=args.timeout)
            distinct_sites.update(reference.census)
            print(
                f"   {len(reference.census)} sites, {reference.total_hits} hits, "
                f"reference run {reference.elapsed:.2f}s"
            )
            if args.census_only:
                for site in reference.sites:
                    print(f"   {site:42s} {reference.census[site]:5d}")
                sections.append(summarize(reference, []))
                continue
            sites = args.site
            if name == "hb-par" and sites is None:
                # hb-par's census includes sites hit inside forked worker
                # processes (executor.worker.*, executor.pre_megabatch); a
                # crash scheduled there re-fires in every respawned worker
                # at the same hit index — a crash loop, not a resumable
                # schedule.  Sweep only the parent-resident arena sites by
                # default; --site overrides.
                sites = [site for site in reference.sites if site.startswith("arena.")]
                print(f"   (sweep restricted to {len(sites)} arena.* sites; "
                      f"pass --site to override)")
            plans = single_fault_plans(
                reference,
                sites=sites,
                max_hits_per_site=args.max_hits_per_site,
                action=args.action,
            )
            plans.extend(
                pairwise_plans(reference, args.pairwise, seed=args.seed, sites=sites)
            )
            print(f"== {name}: exploring {len(plans)} schedules ==", flush=True)

            def _progress(outcome, done, total):
                if not outcome.passed:
                    print(f"   FAIL [{outcome.plan.describe()}] {outcome.detail}", flush=True)
                if done % 50 == 0 or done == total:
                    print(f"   {done}/{total} explored", flush=True)

            outcomes = explore_plans(
                name, plans, reference.fingerprint, base_dir,
                jobs=args.jobs, timeout=args.timeout, progress=_progress,
            )
            failures = [o for o in outcomes if not o.passed]
            for failure in failures:
                def _still_fails(candidate):
                    return not run_plan(
                        name, candidate, reference.fingerprint, base_dir,
                        timeout=args.timeout, keep_failed=False,
                    ).passed

                shrunk = shrink_plan(failure.plan, _still_fails)
                failure.detail += f"\n[shrunk reproducer: {shrunk.describe()}]"
                print(f"   shrunk: {failure.plan.describe()} -> {shrunk.describe()}")
            section = summarize(reference, outcomes)
            sections.append(section)
            any_failed = any_failed or bool(failures)
            print(
                f"== {name}: {section['passed']}/{section['plans_explored']} passed, "
                f"{section['failed']} failed, "
                f"{section['not_reached_legs']} not-reached legs =="
            )
    finally:
        if own_base:
            shutil.rmtree(base_dir, ignore_errors=True)
    report = {
        "tool": "tools/crashx.py",
        "workloads": sections,
        "distinct_sites": len(distinct_sites),
        "total_plans": sum(s["plans_explored"] for s in sections),
        "total_failed": sum(s["failed"] for s in sections),
        "elapsed_seconds": round(time.monotonic() - started, 1),
    }
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.out}")
    print(
        f"crashx: {report['total_plans']} schedules over {report['distinct_sites']} "
        f"distinct sites, {report['total_failed']} failed, "
        f"{report['elapsed_seconds']}s"
    )
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
