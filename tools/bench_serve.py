"""Benchmark the HPO service daemon: a 100-job two-tenant burst.

Drives a real :class:`repro.serve.ServeDaemon` (HTTP and all) with the
workload the daemon exists for: tenant ``alpha`` submits 50 distinct
jobs (seeds 0..49) at priority 2, tenant ``beta`` immediately submits
the *same* 50 specs at priority 1 — a 100-job burst where half the work
is a duplicate of the other half.  Because every (config, budget, seed)
evaluation lands in the context's shared cache, beta's twins should be
served mostly from alpha's work.

Reported in ``BENCH_serve.json``:

- sustained throughput (jobs/s over the whole burst) and job latency
  (submit -> terminal, p50/p99);
- per-tenant aggregate cache hit rates — ``overlap_hit_rate`` is beta's,
  and the bench FAILS below 40% (beta twins that start while their alpha
  original is still running only share the finished prefix, so 100% is
  not expected under honest concurrency);
- the duplicate speedup (mean alpha job duration / mean beta job
  duration) — the bench FAILS unless beta's duplicates are faster;
- the equivalence check: for every seed, alpha's, beta's and a direct
  :func:`repro.serve.run_job_local` run's incumbent fingerprints must be
  identical — sharing must never change an answer.

Usage::

    PYTHONPATH=src python tools/bench_serve.py [--out BENCH_serve.json]
    PYTHONPATH=src python tools/bench_serve.py --quick   # 10 pairs, no JSON

Exit code 0 iff every check passes.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import JobSpec, ServeClient, ServeDaemon, incumbent_fingerprint, run_job_local

#: Per-job spec shared by both tenants; seeds 0..n_pairs-1 make each pair
#: its own evaluation context (~37 trials, a fraction of a second each).
BASE_SPEC = dict(dataset="australian", method="sha", hps=2, scale=0.2, max_iter=8)

#: Minimum aggregate cache hit rate for the duplicate tenant.
MIN_OVERLAP_HIT_RATE = 0.40


def percentile(values, q):
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def run_burst(n_pairs: int, n_workers: int = 4):
    """Submit the two-tenant burst, wait it out, return the raw measurements."""
    with tempfile.TemporaryDirectory() as tmp:
        daemon = ServeDaemon(
            root=Path(tmp) / "serve",
            port=0,
            n_workers=n_workers,
            max_queued=4 * n_pairs,
            # alpha fans out, beta trails serially: the duplicate tenant
            # mostly arrives *after* its original finished, which is the
            # deployment-shaped best case the shared cache targets.
            quotas={"alpha": max(2, n_workers - 1), "beta": 1},
        )
        with daemon, ServeClient(daemon.address) as client:
            started = time.monotonic()
            alpha_ids = [
                client.submit(tenant="alpha", priority=2, seed=seed, **BASE_SPEC)["job_id"]
                for seed in range(n_pairs)
            ]
            beta_ids = [
                client.submit(tenant="beta", priority=1, seed=seed, **BASE_SPEC)["job_id"]
                for seed in range(n_pairs)
            ]
            finals = client.wait_all(alpha_ids + beta_ids, timeout=1200.0, poll=0.02)
            wall = time.monotonic() - started
            stats = client.stats()
    return finals, alpha_ids, beta_ids, stats, wall


def summarize(finals, alpha_ids, beta_ids, stats, wall, n_pairs):
    """Aggregate the burst into the BENCH_serve.json payload + pass/fail."""
    assert all(r["state"] == "done" for r in finals.values()), (
        f"unfinished jobs: {sorted(r['state'] for r in finals.values())}"
    )
    latencies = [r["finished_at"] - r["created_at"] for r in finals.values()]
    durations = {
        tenant: [finals[job_id]["finished_at"] - finals[job_id]["started_at"]
                 for job_id in ids]
        for tenant, ids in (("alpha", alpha_ids), ("beta", beta_ids))
    }
    tenant_stats = stats["tenants"]
    overlap_hit_rate = tenant_stats["beta"]["hit_rate"]
    alpha_mean = statistics.mean(durations["alpha"])
    beta_mean = statistics.mean(durations["beta"])

    # equivalence: alpha == beta == direct, per seed
    mismatches = []
    for index in range(n_pairs):
        fp_alpha = finals[alpha_ids[index]]["incumbent"]["fingerprint"]
        fp_beta = finals[beta_ids[index]]["incumbent"]["fingerprint"]
        if fp_alpha != fp_beta:
            mismatches.append(f"seed {index}: alpha != beta")
    spec = JobSpec(tenant="direct", seed=0, **BASE_SPEC)
    fp_direct = incumbent_fingerprint(run_job_local(spec).result)
    if finals[alpha_ids[0]]["incumbent"]["fingerprint"] != fp_direct:
        mismatches.append("seed 0: daemon != direct optimize()")

    checks = {
        "all_jobs_done": True,
        "overlap_hit_rate_ge_40pct": overlap_hit_rate >= MIN_OVERLAP_HIT_RATE,
        "duplicates_faster_than_cold": beta_mean < alpha_mean,
        "daemon_equals_direct_bitwise": not mismatches,
    }
    payload = {
        "workload": {
            "jobs": 2 * n_pairs,
            "tenants": 2,
            "overlap_fraction": 0.5,
            "spec": BASE_SPEC,
            "priorities": {"alpha": 2, "beta": 1},
        },
        "wall_time_s": round(wall, 3),
        "jobs_per_s": round(2 * n_pairs / wall, 3),
        "latency_s": {
            "p50": round(percentile(latencies, 50), 4),
            "p99": round(percentile(latencies, 99), 4),
            "max": round(max(latencies), 4),
        },
        "job_duration_s": {
            "alpha_mean": round(alpha_mean, 4),
            "beta_mean": round(beta_mean, 4),
            "duplicate_speedup": round(alpha_mean / beta_mean, 2),
        },
        "cache": {
            "overlap_hit_rate": round(overlap_hit_rate, 4),
            "alpha_hit_rate": round(tenant_stats["alpha"]["hit_rate"], 4),
            "shared": stats["shared_cache"],
        },
        "checks": checks,
        "fingerprint_mismatches": mismatches,
    }
    return payload, all(checks.values())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pairs", type=int, default=50,
                        help="spec pairs; total jobs is twice this (default 50)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--quick", action="store_true",
                        help="10 pairs and no JSON output (CI smoke)")
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)
    n_pairs = 10 if args.quick else args.pairs

    print(f"bench_serve: {2 * n_pairs}-job burst, 2 tenants, 50% duplicates, "
          f"{args.workers} workers")
    finals, alpha_ids, beta_ids, stats, wall = run_burst(n_pairs, args.workers)
    payload, ok = summarize(finals, alpha_ids, beta_ids, stats, wall, n_pairs)

    print(f"  wall time          : {payload['wall_time_s']}s "
          f"({payload['jobs_per_s']} jobs/s sustained)")
    print(f"  latency            : p50 {payload['latency_s']['p50']}s, "
          f"p99 {payload['latency_s']['p99']}s")
    print(f"  duplicate tenant   : hit rate {payload['cache']['overlap_hit_rate']:.0%}, "
          f"{payload['job_duration_s']['duplicate_speedup']}x faster than cold twin")
    for name, passed in payload["checks"].items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    if not args.quick:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"  wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
