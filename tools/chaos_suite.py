"""Fault-injection harness: attack the engine and assert its invariants.

Each scenario breaks the engine on purpose — evaluator exceptions, NaN
and ``+inf`` scores, hung evaluations, workers dying via ``os._exit``,
SIGKILL mid-run, torn journal tails, corrupted training data fed to real
learners, SIGKILL of the HPO service daemon mid-burst — and asserts the
robustness contract:

1. the search always completes and a real (finite, non-sentinel) trial
   wins whenever one exists;
2. degraded trials carry the sentinel score and are counted in
   :class:`~repro.engine.EngineStats`;
3. a journaled run interrupted at any point resumes to the *bitwise*
   result of the uninterrupted run, for SHA+, HyperBand+ and ASHA;
4. under ``guard_policy="repair"`` a dataset with NaN cells, a constant
   feature and a diverging learner still yields a finite incumbent, with
   every guard event counted in the stats and persisted in the journal,
   and serial == parallel bitwise.

Usage::

    PYTHONPATH=src python tools/chaos_suite.py           # full sweep
    PYTHONPATH=src python tools/chaos_suite.py --quick   # CI smoke subset
    PYTHONPATH=src python tools/chaos_suite.py --trace DIR  # + span traces
    PYTHONPATH=src python tools/chaos_suite.py --jobs 4  # parallel subprocesses

With ``--jobs N`` each scenario runs in its own subprocess with an
isolated temporary directory and a per-scenario ``--timeout`` (default
900 s), N at a time.  Result lines, the summary count and the
first-failed report keep the listed scenario order and the exit-code
contract of the serial path.

With ``--trace DIR`` every engine-backed search inside the scenarios
records a :mod:`repro.telemetry` span trace into ``DIR`` (one JSONL file
per search, numbered in execution order), so a chaotic run is
inspectable after the fact — injected faults appear as
``chaos.injected.*`` counters in each trace's metrics snapshot and
retries/watchdog kills as ``engine.*`` counters, instead of being
visible only in this harness's stdout summary.  Convert any of the
files with ``tools/trace_view.py``.

Exit code 0 iff every scenario PASSes.
"""

from __future__ import annotations

import argparse
import itertools
import json
import math
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import textwrap
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.bandit import ASHA, BOHB, HyperBand, SuccessiveHalving
from repro.bandit.base import EvaluationResult
from repro.core import MLPModelFactory, grouped_evaluator
from repro.engine import (
    FAILURE_SCORE,
    ChaosExecutor,
    ChaosPolicy,
    DataCorruption,
    ParallelExecutor,
    RunJournal,
    SerialExecutor,
    TrialEngine,
    TrialExecutor,
)
from repro.space import Categorical, SearchSpace

SPACE = SearchSpace([Categorical("q", list(range(8)))])

SEARCHERS = {
    "sha+": lambda space, ev, engine: SuccessiveHalving(space, ev, random_state=7, engine=engine),
    "hb+": lambda space, ev, engine: HyperBand(space, ev, random_state=7, engine=engine),
    "asha": lambda space, ev, engine: ASHA(space, ev, random_state=7, n_workers=2, engine=engine),
    "bohb+": lambda space, ev, engine: BOHB(space, ev, random_state=7, engine=engine),
}


class QualityEvaluator:
    """Picklable synthetic evaluator: best configuration is q=7."""

    def evaluate(self, config, budget_fraction, rng):
        score = config["q"] / 10.0 + 0.001 * float(rng.standard_normal())
        return EvaluationResult(mean=score, std=0.0, score=score, gamma=100 * budget_fraction)


def fingerprint(result):
    """Order-sensitive trial identity: what "bitwise resume" compares."""
    return [
        (t.key, t.budget_fraction, t.result.score, t.iteration, t.bracket)
        for t in result.trials
    ]


# Directory for per-search telemetry traces (set by --trace), plus a
# counter so every engine-backed fit inside a scenario gets its own file.
TRACE_DIR = None
_trace_counter = itertools.count(1)


def make_telemetry(tag):
    """A fresh tracing Telemetry under --trace, else ``None``."""
    if TRACE_DIR is None:
        return None
    from repro.telemetry import Telemetry

    return Telemetry(trace=TRACE_DIR / f"{next(_trace_counter):03d}_{tag}.trace.jsonl")


def run_search(name, engine):
    """One fit of the named searcher on the shared space/evaluator.

    Under ``--trace`` the engine records a full span trace of the search;
    telemetry is observational only, so the scenarios' bitwise
    fingerprint assertions hold with tracing on or off.
    """
    searcher = SEARCHERS[name](SPACE, QualityEvaluator(), engine)
    telemetry = make_telemetry(name)
    if telemetry is not None:
        engine.telemetry = telemetry
    try:
        return searcher.fit(configurations=SPACE.grid())
    finally:
        if telemetry is not None:
            telemetry.close()


def assert_sane(result, stats):
    """Invariants every chaotic search must keep."""
    assert math.isfinite(result.best_score), "non-finite score escaped sanitization"
    assert result.best_score > FAILURE_SCORE, "a degraded trial won the search"
    # The cache may re-serve a degraded outcome across brackets, so compare
    # *distinct* degraded (config, budget) pairs against the failure count.
    degraded = {
        (t.key, t.budget_fraction) for t in result.trials
        if t.result.score == FAILURE_SCORE
    }
    assert len(degraded) == stats.failures, (
        f"distinct sentinel trials ({len(degraded)}) disagree with "
        f"stats.failures ({stats.failures})"
    )


# -- scenarios ----------------------------------------------------------------


def scenario_crash_resume(searcher_name):
    """Truncate a journal at every prefix; each resume must be bitwise."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.wal"
        with TrialEngine(executor=SerialExecutor(), journal=str(path), retry_backoff=0.0) as engine:
            reference = run_search(searcher_name, engine)
        full = path.read_text().splitlines(True)
        n_entries = len(full) - 1
        for n_keep in range(1, n_entries):
            path.write_text("".join(full[: 1 + n_keep]))
            with TrialEngine(executor=SerialExecutor(), journal=str(path), retry_backoff=0.0) as engine:
                resumed = run_search(searcher_name, engine)
            assert fingerprint(resumed) == fingerprint(reference), (
                f"{searcher_name}: resume from {n_keep}/{n_entries} diverged"
            )
            # Repeated (config, budget) pairs re-serve from the replay map,
            # so `resumed` is >= the prefix length; only the lost distinct
            # executions may run again.
            assert engine.stats.resumed >= n_keep
            assert engine.stats.executed == n_entries - n_keep
        return f"{n_entries - 1} cut points, all bitwise"


def scenario_evaluator_faults():
    """Raises + NaN + inf under retries: completes, degrades, sanitizes."""
    policy = ChaosPolicy(failure_rate=0.2, nan_rate=0.1, corrupt_rate=0.1)
    with TrialEngine(executor=ChaosExecutor(SerialExecutor(), policy),
                     max_retries=2, retry_backoff=0.0) as engine:
        result = run_search("hb+", engine)
        stats = engine.stats
    assert_sane(result, stats)
    assert stats.retries > 0, "no fault was ever injected"
    assert stats.non_finite > 0, "no corrupted score was ever injected"
    return f"{stats.retries} retries, {stats.failures} degraded, {stats.non_finite} non-finite"


def scenario_hang_watchdog():
    """Injected hangs outlive trial_timeout: watchdog kills, run finishes."""
    policy = ChaosPolicy(hang_rate=0.15, hang_seconds=60.0)
    executor = ChaosExecutor(ParallelExecutor(n_workers=2, trial_timeout=0.5), policy)
    start = time.monotonic()
    with TrialEngine(executor=executor, max_retries=2, retry_backoff=0.0) as engine:
        result = run_search("sha+", engine)
        stats = engine.stats
    elapsed = time.monotonic() - start
    assert_sane(result, stats)
    assert stats.timeouts > 0, "no hang was ever injected"
    assert elapsed < 60.0, "the watchdog failed to preempt a hang"
    return f"{stats.timeouts} watchdog kills in {elapsed:.1f}s"


def scenario_worker_exit():
    """Workers die via os._exit mid-trial: respawn + resubmit, no deadlock."""
    policy = ChaosPolicy(exit_rate=0.15)
    inner = ParallelExecutor(n_workers=2)
    with TrialEngine(executor=ChaosExecutor(inner, policy),
                     max_retries=3, retry_backoff=0.0) as engine:
        result = run_search("hb+", engine)
        stats = engine.stats
    assert_sane(result, stats)
    assert inner.respawns > 0, "no worker was ever killed"
    return f"{inner.respawns} workers respawned, {stats.retries} retries"


def scenario_sigkill_resume():
    """SIGKILL a journaled child mid-run; resume must match the clean run."""
    with TrialEngine(executor=SerialExecutor(), retry_backoff=0.0) as engine:
        reference = run_search("hb+", engine)

    script = textwrap.dedent(
        """
        import sys, time
        from repro.bandit import HyperBand
        from repro.bandit.base import EvaluationResult
        from repro.engine import SerialExecutor, TrialEngine
        from repro.space import Categorical, SearchSpace

        class SlowQuality:
            def evaluate(self, config, budget_fraction, rng):
                time.sleep(0.05)
                score = config["q"] / 10.0 + 0.001 * float(rng.standard_normal())
                return EvaluationResult(mean=score, std=0.0, score=score,
                                        gamma=100 * budget_fraction)

        space = SearchSpace([Categorical("q", list(range(8)))])
        engine = TrialEngine(executor=SerialExecutor(), journal=sys.argv[1],
                             retry_backoff=0.0)
        HyperBand(space, SlowQuality(), random_state=7, engine=engine).fit(
            configurations=space.grid())
        engine.shutdown()
        """
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.wal"
        env = {**os.environ,
               "PYTHONPATH": "src" + os.pathsep + os.environ.get("PYTHONPATH", "")}
        child = subprocess.Popen([sys.executable, "-c", script, str(path)], env=env)
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if path.exists() and len(path.read_text().splitlines()) >= 5:
                    break
                if child.poll() is not None:
                    break
                time.sleep(0.02)
            assert child.poll() is None, "child finished before it could be killed"
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)

        _, entries, _ = RunJournal.read(path)
        assert 0 < len(entries) < len(reference.trials), "kill was not mid-run"

        # The child's evaluator only adds a sleep, so its journal replays
        # bitwise into the in-process reference run.
        with TrialEngine(executor=SerialExecutor(), journal=str(path), retry_backoff=0.0) as engine:
            resumed = run_search("hb+", engine)
            stats = engine.stats
        assert stats.resumed >= len(entries) and stats.executed > 0
        assert fingerprint(resumed) == fingerprint(reference), "SIGKILL resume diverged"
        return f"killed at {len(entries)}/{len(reference.trials)} trials, resume bitwise"


_ARENA_RUN_SCRIPT = textwrap.dedent(
    """
    import json, sys
    import numpy as np
    from repro.bandit import SuccessiveHalving
    from repro.core.evaluator import MLPModelFactory, vanilla_evaluator
    from repro.engine import ParallelExecutor, TrialEngine
    from repro.space import Categorical, SearchSpace

    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 8))
    y = (X @ rng.normal(size=8) > 0).astype(int)
    space = SearchSpace([
        Categorical("learning_rate_init", [1e-3, 3e-3, 1e-2, 3e-2]),
        Categorical("alpha", [1e-4, 1e-2]),
    ])
    evaluator = vanilla_evaluator(
        X, y, MLPModelFactory(task="classification", max_iter=30),
        task="classification")
    engine = TrialEngine(
        executor=ParallelExecutor(n_workers=2, transport="arena"),
        journal=sys.argv[1], retry_backoff=0.0)
    result = SuccessiveHalving(space, evaluator, random_state=7,
                               engine=engine).fit(configurations=space.grid())
    engine.shutdown()
    print(json.dumps([
        (t.key, t.budget_fraction, t.result.score, t.iteration, t.bracket)
        for t in result.trials]))
    """
)


def scenario_arena_sigkill():
    """SIGKILL a run holding shared-memory segments; resume reaps and finishes.

    The run publishes its dataset into the ``/dev/shm`` arena, so a kill
    mid-run leaks named segments with a dead owner pid.  The resumed leg
    must (1) reap those orphans before publishing its own, (2) replay the
    journal to the bitwise reference, and (3) unlink everything on clean
    shutdown — zero arena segments with a dead owner survive the scenario.
    """
    from repro.engine import list_segments
    from repro.engine.arena import _owner_pid, _pid_alive

    def dead_owner_segments():
        return [name for name in list_segments()
                if _owner_pid(name) is not None and not _pid_alive(_owner_pid(name))]

    env = {**os.environ,
           "PYTHONPATH": "src" + os.pathsep + os.environ.get("PYTHONPATH", "")}
    with tempfile.TemporaryDirectory() as tmp:
        reference_wal = Path(tmp) / "reference.wal"
        proc = subprocess.run(
            [sys.executable, "-c", _ARENA_RUN_SCRIPT, str(reference_wal)],
            env=env, capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, f"reference leg failed:\n{proc.stderr[-2000:]}"
        reference = json.loads(proc.stdout.splitlines()[-1])

        wal = Path(tmp) / "run.wal"
        child = subprocess.Popen(
            [sys.executable, "-c", _ARENA_RUN_SCRIPT, str(wal)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            prefix = f"repro-arena-{child.pid}-"
            deadline = time.monotonic() + 60.0
            armed = False
            def durable_entries():
                # Parse, don't count raw lines: line 0 is the header and
                # the tail may be torn mid-append.
                if not wal.exists():
                    return 0
                try:
                    _, entries, _ = RunJournal.read(wal)
                except Exception:
                    return 0
                return len(entries)

            while time.monotonic() < deadline:
                published = any(s.startswith(prefix) for s in list_segments())
                if published and durable_entries() >= 3:
                    armed = True
                    break
                if child.poll() is not None:
                    break
                time.sleep(0.02)
            assert armed, "child finished before segments + journal were observed"
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)

        leaked = [s for s in dead_owner_segments() if s.startswith(prefix)]
        assert leaked, "SIGKILL mid-run left no orphan segments to reap"

        _, entries, _ = RunJournal.read(wal)
        assert len(entries) >= 3, "kill was not mid-run"

        proc = subprocess.run(
            [sys.executable, "-c", _ARENA_RUN_SCRIPT, str(wal)],
            env=env, capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, f"resume leg failed:\n{proc.stderr[-2000:]}"
        resumed = json.loads(proc.stdout.splitlines()[-1])
        assert resumed == reference, "arena SIGKILL resume diverged"
        remaining = dead_owner_segments()
        assert not remaining, f"leaked arena segments survived resume: {remaining}"
        return (f"killed holding {len(leaked)} shm segments at "
                f"{len(entries)}/{len(reference)} trials; resume reaped all, bitwise")


def scenario_torn_journal():
    """A crash mid-append leaves a torn line: dropped, then overwritten."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.wal"
        with TrialEngine(executor=SerialExecutor(), journal=str(path), retry_backoff=0.0) as engine:
            reference = run_search("sha+", engine)
        lines = path.read_text().splitlines(True)
        torn = "".join(lines[:4]) + lines[4][: len(lines[4]) // 2]
        path.write_text(torn)
        with TrialEngine(executor=SerialExecutor(), journal=str(path), retry_backoff=0.0) as engine:
            resumed = run_search("sha+", engine)
            stats = engine.stats
        assert engine.journal.dropped_records == 1, "torn tail not detected"
        assert stats.resumed == 3, "intact prefix not replayed"
        assert fingerprint(resumed) == fingerprint(reference), "torn-tail resume diverged"
        return "torn record dropped, prefix replayed, resume bitwise"


def _start_serve_daemon(root):
    """Launch ``python -m repro serve`` on an ephemeral port; return (proc, url)."""
    env = {**os.environ,
           "PYTHONPATH": "src" + os.pathsep + os.environ.get("PYTHONPATH", "")}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", str(root),
         "--port", "0", "--workers", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "serving on " in line:
            url = line.split("serving on ", 1)[1].split()[0]
            return proc, url
        if proc.poll() is not None:
            break
    raise AssertionError("serve daemon failed to start")


def scenario_serve_sigkill():
    """SIGKILL the HPO service daemon mid-burst; a restart must finish
    every job bitwise-identical to running the same specs directly.

    Exercises the full durability stack at once: atomic job records, the
    per-job journals, recovery re-queueing and journal replay-resume —
    through a real subprocess daemon and real HTTP, exactly as deployed.
    """
    from repro.serve import JobSpec, ServeClient, incumbent_fingerprint, run_job_local

    base = dict(dataset="australian", method="sha", hps=2, scale=0.5, max_iter=40)
    specs = [dict(base, tenant="burst", seed=seed) for seed in range(6)]
    references = {
        spec["seed"]: incumbent_fingerprint(
            run_job_local(JobSpec(**{k: v for k, v in spec.items()})).result
        )
        for spec in specs
    }

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "serve-root"
        proc, url = _start_serve_daemon(root)
        try:
            with ServeClient(url) as client:
                job_ids = {client.submit(spec)["job_id"]: spec["seed"] for spec in specs}
                # wait until some job is genuinely mid-search, then kill -9
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    if any(
                        record["state"] == "running" and record["trials_done"] >= 2
                        for record in (client.job(job_id) for job_id in job_ids)
                    ):
                        break
                    time.sleep(0.02)
                else:
                    raise AssertionError("no job ever got mid-flight")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        proc, url = _start_serve_daemon(root)
        try:
            with ServeClient(url) as client:
                finals = client.wait_all(list(job_ids), timeout=300.0)
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)

    assert all(r["state"] == "done" for r in finals.values()), (
        f"states after restart: {sorted(r['state'] for r in finals.values())}"
    )
    resumed = [r for r in finals.values()
               if r["resumed"] >= 1 and r["engine_stats"].get("resumed", 0) > 0]
    assert resumed, "no job replayed a journal — the kill missed every run"
    mismatched = [
        job_id for job_id, record in finals.items()
        if record["incumbent"]["fingerprint"] != references[job_ids[job_id]]
    ]
    assert not mismatched, f"resume diverged from direct runs: {mismatched}"
    replayed = max(r["engine_stats"]["resumed"] for r in resumed)
    return (f"{len(resumed)}/{len(finals)} jobs journal-resumed "
            f"(deepest replay {replayed} trials), all bitwise == direct")


def scenario_serve_sigkill_flightrec():
    """SIGKILL the daemon mid-burst; the flight recorder's spill-backed
    live snapshot must survive and name the in-flight jobs.

    SIGKILL is uncatchable, so the daemon cannot dump on the way down —
    the post-mortem evidence is the ``flightrec-<pid>-live.json`` spill
    the recorder force-writes at every sticky event (job dispatch).  A
    job the client observed ``running`` must therefore appear as a
    ``job.start`` event in the surviving snapshot.
    """
    from repro.serve import ServeClient

    base = dict(dataset="australian", method="sha", hps=2, scale=0.5, max_iter=40)
    specs = [dict(base, tenant=tenant, seed=seed)
             for tenant in ("acme", "globex") for seed in range(2)]

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "serve-root"
        proc, url = _start_serve_daemon(root)
        running = set()
        try:
            with ServeClient(url) as client:
                job_ids = [client.submit(spec)["job_id"] for spec in specs]
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    running = {job_id for job_id in job_ids
                               if client.job(job_id)["state"] == "running"}
                    if running:
                        break
                    time.sleep(0.02)
                else:
                    raise AssertionError("no job ever started running")
                # The spill is forced right after the state flips to
                # running; give the write a beat before pulling the plug.
                time.sleep(0.3)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        spills = sorted((root / "obs").glob("flightrec-*-live.json"))
        assert spills, f"no flight-recorder live snapshot under {root / 'obs'}"
        payload = json.loads(spills[-1].read_text())
        assert payload.get("schema_version") == 1, f"bad spill schema: {payload.keys()}"
        started = {event.get("job") for event in payload.get("events", [])
                   if event.get("kind") == "job.start"}
        named = running & started
        assert named, (
            f"spill names jobs {sorted(started)} but none of the in-flight "
            f"{sorted(running)}"
        )
    return (f"SIGKILL'd daemon; surviving spill ({spills[-1].name}) names "
            f"{len(named)}/{len(running)} in-flight job(s)")


GUARDED_SEARCHERS = {
    "sha+": lambda space, ev, engine: SuccessiveHalving(space, ev, random_state=7, engine=engine),
    "hb+": lambda space, ev, engine: HyperBand(space, ev, random_state=7, engine=engine),
    "bohb+": lambda space, ev, engine: BOHB(space, ev, random_state=7, engine=engine),
}


def _corrupted_problem():
    """Two Gaussian blobs, then 5% NaN cells, one constant feature, 2% flips."""
    rng = np.random.default_rng(5)
    n_per = 80
    X = np.vstack([
        rng.normal(loc=-1.0, scale=0.7, size=(n_per, 6)),
        rng.normal(loc=1.0, scale=0.7, size=(n_per, 6)),
    ])
    y = np.array([0] * n_per + [1] * n_per)
    order = rng.permutation(len(y))
    corruption = DataCorruption(
        nan_cell_rate=0.05, label_flip_rate=0.02, constant_columns=1, seed=11
    )
    return corruption.apply(X[order], y[order])


def scenario_corrupted_data(searcher_name):
    """Real learners on corrupted data under guard_policy="repair".

    The space plants one deliberately diverging configuration
    (``learning_rate_init=1e6``): the guarded run must detect the
    divergence, floor those folds, and still crown a finite, sane
    incumbent — with every guard event in the stats and the journal, and
    the parallel run bitwise equal to the serial one.
    """
    X, y = _corrupted_problem()
    factory = MLPModelFactory(task="classification", max_iter=8,
                              solver="sgd", hidden_layer_sizes=(8,))
    evaluator = grouped_evaluator(X, y, factory, guard_policy="repair",
                                  n_groups=2, min_subset=20, random_state=3)
    space = SearchSpace([Categorical("learning_rate_init", [0.001, 0.01, 1e6])])
    builder = GUARDED_SEARCHERS[searcher_name]

    def guarded_fingerprint(result):
        return [row + (trial.result.guard_events,)
                for row, trial in zip(fingerprint(result), result.trials)]

    def guarded_run(engine, tag):
        telemetry = make_telemetry(tag)
        if telemetry is not None:
            engine.telemetry = telemetry
        try:
            return builder(space, evaluator, engine).fit(configurations=space.grid())
        finally:
            if telemetry is not None:
                telemetry.close()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.wal"
        with TrialEngine(executor=SerialExecutor(), journal=str(path), retry_backoff=0.0) as engine:
            serial = guarded_run(engine, f"corrupted-{searcher_name}-serial")
            serial_stats = engine.stats
        assert math.isfinite(serial.best_score), "corrupted data produced a non-finite incumbent"
        assert serial.best_config["learning_rate_init"] != 1e6, "the diverging learner won"
        assert serial_stats.guard_events > 0, "no guard event reached EngineStats"
        diverged = sum(1 for t in serial.trials for event in t.result.guard_events
                       if event["kind"] == "learner.diverged")
        assert diverged > 0, "lr=1e6 never tripped divergence detection"
        # Journal entries are appended at settle time (executed trials
        # only), which is exactly what the stats counter counts too.
        _, entries, _ = RunJournal.read(path)
        journal_events = sum(len(e.result.guard_events) for e in entries)
        assert journal_events == serial_stats.guard_events, "journal lost guard events"

    with TrialEngine(executor=ParallelExecutor(n_workers=2), retry_backoff=0.0) as engine:
        parallel = guarded_run(engine, f"corrupted-{searcher_name}-parallel")
        parallel_stats = engine.stats
    assert guarded_fingerprint(parallel) == guarded_fingerprint(serial), (
        f"{searcher_name}: guarded serial/parallel runs diverged"
    )
    assert parallel_stats.guard_events == serial_stats.guard_events
    return (f"{serial_stats.guard_events} guard events journaled, "
            f"{diverged} divergence catches, serial==parallel")


def _serial_reference(searcher_name):
    """The chaos-free serial run the elastic scenarios compare against."""
    with TrialEngine(executor=SerialExecutor(), retry_backoff=0.0) as engine:
        return run_search(searcher_name, engine)


def scenario_straggler_speculation(searcher_name):
    """Slow workers + speculative re-execution must stay bitwise-serial.

    Chaos pins a worker-id subset to sleep inside every evaluation (a
    scheduling perturbation, not a seed draw), the executor's straggler
    detector duplicates the overdue trial onto an idle worker with the
    *same* derived seed, the first finite copy wins and the loser's
    worker is cancelled through the leave+join path.  Because the copies
    share the trial seed, the search result must equal the plain serial
    run bit for bit no matter which copy wins.
    """
    reference = _serial_reference(searcher_name)
    policy = ChaosPolicy(slow_workers=tuple(range(0, 12, 2)), slow_seconds=0.4)
    inner = ParallelExecutor(n_workers=2, speculate=True, straggler_factor=3.0,
                             straggler_min_s=0.12, poll_interval=0.02)
    with TrialEngine(executor=ChaosExecutor(inner, policy), retry_backoff=0.0) as engine:
        result = run_search(searcher_name, engine)
        stats = engine.stats
    assert stats.failures == 0, "slow workers must not fail trials"
    assert inner.speculations > 0, "no straggler was ever speculated"
    assert fingerprint(result) == fingerprint(reference), (
        f"{searcher_name}: speculative run diverged from serial"
    )
    return (f"{inner.speculations} speculations ({inner.speculation_wins} wins), "
            f"bitwise == serial")


class _ResizeStormExecutor(TrialExecutor):
    """Delegating wrapper that resizes the pool on every submission."""

    def __init__(self, inner, schedule):
        self.inner = inner
        self._schedule = itertools.cycle(schedule)

    @property
    def capacity(self):
        return self.inner.capacity

    def bind(self, evaluator):
        self.inner.bind(evaluator)

    def submit(self, request):
        self.inner.resize(next(self._schedule))
        self.inner.submit(request)

    def wait_one(self):
        return self.inner.wait_one()

    def pending(self):
        return self.inner.pending()

    def shutdown(self):
        self.inner.shutdown()


def scenario_resize_storm(searcher_name):
    """Resize the elastic pool on every submit; the result must not move.

    Per-trial seeds are derived from the trial, never the worker, so any
    sequence of grows/shrinks — including shrinking under a full backlog
    and growing past it again — may only change scheduling.  The storm
    cycles 1..4 workers across every submission of the whole search.
    """
    reference = _serial_reference(searcher_name)
    inner = ParallelExecutor(n_workers=2, min_workers=1, max_workers=4)
    storm = _ResizeStormExecutor(inner, schedule=[1, 3, 2, 4])
    with TrialEngine(executor=storm, retry_backoff=0.0) as engine:
        result = run_search(searcher_name, engine)
    assert inner.resizes > 0, "the storm never actually resized"
    assert inner.leaves > 0, "no worker ever left the pool"
    assert inner.joins > inner.n_workers, "no worker ever joined beyond the initial pool"
    assert fingerprint(result) == fingerprint(reference), (
        f"{searcher_name}: resize storm changed the result"
    )
    return (f"{inner.resizes} resizes ({inner.joins} joins / {inner.leaves} leaves), "
            f"bitwise == serial")


def scenario_pipe_drop():
    """Workers drop their result pipe mid-trial: respawn + retry, no hang."""
    policy = ChaosPolicy(pipe_drop_rate=0.2)
    inner = ParallelExecutor(n_workers=2)
    with TrialEngine(executor=ChaosExecutor(inner, policy),
                     max_retries=3, retry_backoff=0.0) as engine:
        result = run_search("hb+", engine)
        stats = engine.stats
    assert_sane(result, stats)
    assert inner.respawns > 0, "no pipe was ever dropped"
    return f"{inner.respawns} workers respawned after pipe drops, {stats.retries} retries"


def scenario_registry_corruption():
    """Corrupt three job.json records behind a restart; nothing is lost.

    One record is truncated mid-byte, one is overwritten with garbage,
    one's rename "never happened" (only a ``job.json.*.tmp`` remains).
    The restarted daemon must quarantine all three, rebuild each job from
    its immutable ``spec.json`` sidecar, re-run them to completion and
    match the fingerprints of direct ``run_job_local`` executions.
    """
    from repro.serve import (
        JobSpec, ServeClient, ServeDaemon, incumbent_fingerprint, run_job_local,
    )

    base = dict(dataset="australian", method="sha", hps=2, scale=0.35, max_iter=12)
    specs = {seed: JobSpec(tenant="chaos", seed=seed, **base) for seed in (0, 1, 2)}
    references = {
        seed: incumbent_fingerprint(run_job_local(spec).result)
        for seed, spec in specs.items()
    }

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "serve-root"
        with ServeDaemon(root=root, port=0, n_workers=2) as daemon:
            with ServeClient(daemon.address) as client:
                job_ids = {
                    client.submit(spec.to_dict())["job_id"]: seed
                    for seed, spec in specs.items()
                }
                finals = client.wait_all(list(job_ids), timeout=300.0)
        assert all(r["state"] == "done" for r in finals.values())

        paths = [root / "jobs" / job_id / "job.json" for job_id in job_ids]
        blob = paths[0].read_bytes()
        paths[0].write_bytes(blob[: len(blob) // 2])          # truncated write
        paths[1].write_bytes(b"{\x00 not json at all")         # bit rot
        os.replace(paths[2], paths[2].with_name("job.json.4242.tmp"))  # lost rename

        with ServeDaemon(root=root, port=0, n_workers=2) as daemon:
            assert daemon.registry.quarantined == 3, (
                f"expected 3 quarantined records, got {daemon.registry.quarantined}"
            )
            with ServeClient(daemon.address) as client:
                finals = client.wait_all(list(job_ids), timeout=300.0)

    assert all(r["state"] == "done" for r in finals.values()), (
        f"states after corruption: {sorted(r['state'] for r in finals.values())}"
    )
    mismatched = [
        job_id for job_id, record in finals.items()
        if record["incumbent"]["fingerprint"] != references[job_ids[job_id]]
    ]
    assert not mismatched, f"recovered jobs diverged from direct runs: {mismatched}"
    return "3 corrupt records quarantined, all jobs re-completed bitwise == direct"


def scenario_disk_full_degraded():
    """Durable writes fail (ENOSPC): shed with 429 + Retry-After, recover.

    While the registry cannot write, every submit must be shed — counted,
    answered 429 with a Retry-After header, and never half-admitted.  The
    moment writes succeed again the daemon recovers on its own, and the
    records written before the outage are untouched.
    """
    import http.client as http_client
    import json as json_mod

    import repro.serve.registry as registry_mod
    from repro.serve import ServeClient, ServeDaemon

    base = dict(tenant="chaos", dataset="australian", method="sha", hps=2,
                scale=0.35, max_iter=12)
    with tempfile.TemporaryDirectory() as tmp:
        with ServeDaemon(root=Path(tmp) / "serve-root", port=0, n_workers=2) as daemon:
            with ServeClient(daemon.address) as client:
                before = client.submit(dict(base, seed=0))
                client.wait(before["job_id"], timeout=300.0)
                durable_bytes = (daemon.registry.jobs_dir / before["job_id"]
                                 / "job.json").read_bytes()

                real_write = registry_mod._atomic_write_json
                def enospc(*args, **kwargs):
                    raise OSError(28, "No space left on device")
                registry_mod._atomic_write_json = enospc
                try:
                    host, port = daemon.address.split("//", 1)[1].rsplit(":", 1)
                    conn = http_client.HTTPConnection(host, int(port), timeout=30)
                    body = json_mod.dumps(dict(base, seed=1))
                    conn.request("POST", "/jobs", body=body,
                                 headers={"Content-Type": "application/json"})
                    response = conn.getresponse()
                    response.read()
                    assert response.status == 429, f"expected 429, got {response.status}"
                    assert response.getheader("Retry-After"), "no Retry-After header"
                    conn.close()
                    for seed in (2, 3):  # degraded mode keeps shedding
                        try:
                            client.submit(dict(base, seed=seed))
                            raise AssertionError("degraded daemon accepted a job")
                        except Exception as exc:
                            assert getattr(exc, "status", None) == 429, exc
                    shed = daemon.stats()["fault_tolerance"]["shed_jobs"]
                    assert shed >= 3, f"expected >= 3 shed submits, got {shed}"
                    assert daemon.stats()["fault_tolerance"]["degraded"] is True
                finally:
                    registry_mod._atomic_write_json = real_write

                after = client.submit(dict(base, seed=4))  # auto-recovery
                final = client.wait(after["job_id"], timeout=300.0)
                assert final["state"] == "done"
                assert daemon.stats()["fault_tolerance"]["degraded"] is False
                # the pre-outage record is byte-identical and still readable
                assert (daemon.registry.jobs_dir / before["job_id"]
                        / "job.json").read_bytes() == durable_bytes, (
                    "the outage corrupted a record written before it"
                )
                assert client.job(before["job_id"])["state"] == "done"
                return (f"{shed} submits shed at 429 while disk full, "
                        f"auto-recovered after restore")


def scenario_drifting_data():
    """A drifting, NaN-pocked dataset under guard repair: still sane.

    ``make_drifting_classification`` moves the class structure along the
    row axis (translation + rotation) and knocks out feature cells, so
    subset evaluators see genuinely different distributions per budget.
    The guarded engine must repair, survive the planted diverging
    learner, crown a finite incumbent, and stay serial == parallel.
    """
    from repro.datasets import make_drifting_classification

    X, y = make_drifting_classification(
        n_samples=160, n_features=6, drift=2.0, drift_rotation=1.0,
        nan_cell_rate=0.05, random_state=5, class_sep=1.5,
    )
    factory = MLPModelFactory(task="classification", max_iter=8,
                              solver="sgd", hidden_layer_sizes=(8,))
    evaluator = grouped_evaluator(X, y, factory, guard_policy="repair",
                                  n_groups=2, min_subset=20, random_state=3)
    space = SearchSpace([Categorical("learning_rate_init", [0.001, 0.01, 1e6])])

    def guarded_fingerprint(result):
        return [row + (trial.result.guard_events,)
                for row, trial in zip(fingerprint(result), result.trials)]

    def run(engine, tag):
        telemetry = make_telemetry(tag)
        if telemetry is not None:
            engine.telemetry = telemetry
        try:
            searcher = SuccessiveHalving(space, evaluator, random_state=7, engine=engine)
            return searcher.fit(configurations=space.grid())
        finally:
            if telemetry is not None:
                telemetry.close()

    with TrialEngine(executor=SerialExecutor(), retry_backoff=0.0) as engine:
        serial = run(engine, "drifting-serial")
        serial_stats = engine.stats
    assert math.isfinite(serial.best_score), "drifting data produced a non-finite incumbent"
    assert serial.best_config["learning_rate_init"] != 1e6, "the diverging learner won"
    assert serial_stats.guard_events > 0, "NaN knockout never reached the guard"

    with TrialEngine(executor=ParallelExecutor(n_workers=2), retry_backoff=0.0) as engine:
        parallel = run(engine, "drifting-parallel")
        parallel_stats = engine.stats
    assert guarded_fingerprint(parallel) == guarded_fingerprint(serial), (
        "drifting-data: serial/parallel diverged"
    )
    assert parallel_stats.guard_events == serial_stats.guard_events
    return (f"{serial_stats.guard_events} guard events under drift, "
            f"finite incumbent, serial==parallel")


def build_scenarios(quick):
    """(name, callable) list; --quick keeps one fast probe per failure mode."""
    scenarios = [
        ("crash-resume[sha+]", lambda: scenario_crash_resume("sha+")),
        ("evaluator-faults", scenario_evaluator_faults),
        ("torn-journal", scenario_torn_journal),
        ("worker-exit", scenario_worker_exit),
        ("pipe-drop", scenario_pipe_drop),
        ("hang-watchdog", scenario_hang_watchdog),
        ("straggler-speculation[sha+]", lambda: scenario_straggler_speculation("sha+")),
        ("resize-storm[sha+]", lambda: scenario_resize_storm("sha+")),
        ("corrupted-data[sha+]", lambda: scenario_corrupted_data("sha+")),
    ]
    if not quick:
        scenarios[1:1] = [
            ("crash-resume[hb+]", lambda: scenario_crash_resume("hb+")),
            ("crash-resume[asha]", lambda: scenario_crash_resume("asha")),
        ]
        scenarios.append(("sigkill-resume", scenario_sigkill_resume))
        scenarios.append(("arena-sigkill", scenario_arena_sigkill))
        scenarios.append(("serve-sigkill", scenario_serve_sigkill))
        scenarios.append(("serve-sigkill-flightrec", scenario_serve_sigkill_flightrec))
        scenarios.extend([
            ("straggler-speculation[hb+]", lambda: scenario_straggler_speculation("hb+")),
            ("straggler-speculation[bohb+]", lambda: scenario_straggler_speculation("bohb+")),
            ("resize-storm[hb+]", lambda: scenario_resize_storm("hb+")),
            ("resize-storm[bohb+]", lambda: scenario_resize_storm("bohb+")),
            ("registry-corruption", scenario_registry_corruption),
            ("disk-full-degraded", scenario_disk_full_degraded),
            ("corrupted-data[hb+]", lambda: scenario_corrupted_data("hb+")),
            ("corrupted-data[bohb+]", lambda: scenario_corrupted_data("bohb+")),
            ("drifting-data", scenario_drifting_data),
        ])
    return scenarios


def _run_one_subprocess(name, args, index):
    """Run one scenario in a child process under an isolated temp dir.

    The child is this script with ``--only name --report-json``; its
    TMPDIR points at a private directory (removed afterwards) so
    concurrent scenarios can never collide on temp state.  Returns a
    ``{"name", "status", "detail", "elapsed"}`` record; a timeout or a
    child that dies without reporting becomes a FAIL record.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", name)
    workdir = Path(tempfile.mkdtemp(prefix=f"chaos-{safe}-"))
    report_path = workdir / "report.json"
    cmd = [sys.executable, str(Path(__file__).resolve()),
           "--only", name, "--report-json", str(report_path)]
    if args.quick:
        cmd.append("--quick")
    if args.trace is not None:
        trace_dir = Path(args.trace) / safe
        trace_dir.mkdir(parents=True, exist_ok=True)
        cmd.extend(["--trace", str(trace_dir)])
    env = {**os.environ,
           "TMPDIR": str(workdir), "TEMP": str(workdir), "TMP": str(workdir),
           "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")
           + os.pathsep + os.environ.get("PYTHONPATH", "")}
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, env=env, capture_output=True, text=True,
                              timeout=args.timeout)
        elapsed = time.monotonic() - start
        if report_path.exists():
            record = json.loads(report_path.read_text())[0]
            record["elapsed"] = elapsed
        else:
            tail = (proc.stdout + proc.stderr).strip().splitlines()
            record = {"name": name, "status": "FAIL", "elapsed": elapsed,
                      "detail": f"child exited {proc.returncode} without a report: "
                                f"{tail[-1] if tail else '<no output>'}"}
    except subprocess.TimeoutExpired:
        record = {"name": name, "status": "FAIL",
                  "elapsed": time.monotonic() - start,
                  "detail": f"timed out after {args.timeout:.0f}s"}
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return record


def _run_parallel(scenarios, args) -> int:
    """Dispatch scenarios onto ``--jobs`` subprocesses; keep serial semantics.

    Result lines print in the listed scenario order as soon as each
    scenario (and all before it) has finished, the summary counts every
    scenario, ``first failed scenario`` is the first in listed order, and
    the exit code is 1 iff anything failed — exactly the serial contract.
    """
    print(f"chaos suite: {len(scenarios)} scenarios "
          f"({'quick' if args.quick else 'full'}, {args.jobs} jobs)\n")
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [pool.submit(_run_one_subprocess, name, args, index)
                   for index, (name, _fn) in enumerate(scenarios)]
        results = []
        for future in futures:  # listed order, printed as each completes
            record = future.result()
            results.append(record)
            print(f"[{record['status']}] {record['name']:<28} "
                  f"{record['elapsed']:6.1f}s  {record['detail']}")
    failures = [r for r in results if r["status"] != "PASS"]
    print(f"\n{len(results) - len(failures)}/{len(results)} scenarios passed")
    if failures:
        print(f"first failed scenario: {failures[0]['name']}")
    return 1 if failures else 0


def main(argv=None) -> int:
    """Run every scenario; print PASS/FAIL; exit non-zero on any failure."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke subset: one fast scenario per failure mode")
    parser.add_argument("--list", action="store_true",
                        help="print the scenario names the current flags select, then exit")
    parser.add_argument("--only", action="append", default=None, metavar="SCENARIO",
                        help="run only the named scenario (repeatable; see --list)")
    parser.add_argument("--trace", default=None, metavar="DIR",
                        help="record a telemetry span trace per engine-backed "
                             "search into DIR (inspect with tools/trace_view.py)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run scenarios in N parallel subprocesses, each with "
                             "an isolated temp dir (default 1: in-process, serial)")
    parser.add_argument("--timeout", type=float, default=900.0, metavar="S",
                        help="per-scenario timeout in seconds under --jobs (default 900)")
    parser.add_argument("--report-json", default=None, metavar="PATH",
                        help=argparse.SUPPRESS)  # child channel for --jobs
    args = parser.parse_args(argv)

    if args.trace is not None:
        global TRACE_DIR
        TRACE_DIR = Path(args.trace)
        TRACE_DIR.mkdir(parents=True, exist_ok=True)

    scenarios = build_scenarios(args.quick)
    if args.list:
        for name, _scenario in scenarios:
            print(name)
        return 0
    if args.only:
        known = {name for name, _ in scenarios}
        unknown = sorted(set(args.only) - known)
        if unknown:
            parser.error(f"unknown scenario(s): {', '.join(unknown)} "
                         f"(use --list to see the available names)")
        scenarios = [(name, fn) for name, fn in scenarios if name in set(args.only)]
    if args.jobs > 1:
        return _run_parallel(scenarios, args)
    print(f"chaos suite: {len(scenarios)} scenarios ({'quick' if args.quick else 'full'})\n")
    failures = 0
    first_failed = None
    results = []
    for name, scenario in scenarios:
        start = time.monotonic()
        try:
            detail = scenario()
            status = "PASS"
        except Exception:
            failures += 1
            first_failed = first_failed or name
            detail = traceback.format_exc().splitlines()[-1]
            status = "FAIL"
        elapsed = time.monotonic() - start
        results.append({"name": name, "status": status,
                        "detail": detail, "elapsed": round(elapsed, 1)})
        print(f"[{status}] {name:<28} {elapsed:6.1f}s  {detail}")
    if args.report_json is not None:
        Path(args.report_json).write_text(json.dumps(results, indent=2) + "\n")
    print(f"\n{len(scenarios) - failures}/{len(scenarios)} scenarios passed")
    if first_failed is not None:
        print(f"first failed scenario: {first_failed}")
    if TRACE_DIR is not None:
        traces = sorted(TRACE_DIR.glob("*.trace.jsonl"))
        print(f"{len(traces)} telemetry trace(s) in {TRACE_DIR}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
