"""Trace export: JSONL span files to Chrome-trace / Perfetto JSON.

The Chrome trace event format (the JSON array flavour) is understood by
``chrome://tracing``, Perfetto's web UI (ui.perfetto.dev) and ``speedscope``.
Each span becomes one complete event (``"ph": "X"``) with microsecond
timestamps; because our span times are monotonic-clock seconds, the whole
trace is shifted so the earliest span starts at ``ts=0``.

Lanes (``tid``) make overlap visible: the structural spans
(run/bracket/rung) share lane 0, while trials are greedily packed into
the lowest free lane — a 4-worker run shows four stacked trial lanes,
a serial run shows one.  Fold/fit children inherit their trial's lane so
the nesting renders as a flame under the trial bar.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["to_chrome_trace", "merge_chrome_traces"]

#: Lane for run/bracket/rung structural spans.
STRUCTURAL_TID = 0
#: Span kinds that always render in the structural lane.
STRUCTURAL_KINDS = frozenset({"run", "bracket", "rung"})


def to_chrome_trace(
    header: Dict[str, Any],
    records: List[Dict[str, Any]],
    t_min: Optional[float] = None,
) -> Dict[str, Any]:
    """Convert trace-file records to a Chrome-trace JSON object.

    Parameters
    ----------
    header, records:
        The output of :meth:`repro.telemetry.spans.TraceSink.read` — the
        header line and the span/metrics records that followed it.
    t_min:
        Timestamp the trace is shifted against (defaults to this file's
        earliest span).  :func:`merge_chrome_traces` passes the global
        minimum across files so multi-process traces share one timeline —
        valid because ``time.monotonic`` is CLOCK_MONOTONIC, which is
        system-wide on Linux, not per-process.

    Returns
    -------
    dict with ``traceEvents`` (complete events sorted by start time) and
    ``metadata`` (trace header plus any final metrics snapshot), ready for
    ``json.dump``.
    """
    spans = [r for r in records if r.get("type") == "span"]
    metrics = next((r for r in records if r.get("type") == "metrics"), None)

    by_id = {span["id"]: span for span in spans}
    if t_min is None:
        t_min = min((span["t0"] for span in spans), default=0.0)

    # Greedy lane packing for trial spans: lowest lane whose last trial
    # ended before this one starts.  Children inherit their trial's lane.
    lane_free_at: List[float] = []  # lane index -> time the lane frees up
    tids: Dict[int, int] = {}
    for span in sorted(spans, key=lambda s: (s["t0"], s["id"])):
        if span["kind"] in STRUCTURAL_KINDS:
            tids[span["id"]] = STRUCTURAL_TID
            continue
        if span["kind"] == "trial":
            t0, t1 = span["t0"], span["t0"] + span["dur"]
            for lane, free_at in enumerate(lane_free_at):
                if free_at <= t0 + 1e-9:
                    lane_free_at[lane] = t1
                    tids[span["id"]] = lane + 1
                    break
            else:
                lane_free_at.append(t1)
                tids[span["id"]] = len(lane_free_at)

    def resolve_tid(span: Dict[str, Any]) -> int:
        seen = set()
        current = span
        while current is not None and current["id"] not in seen:
            if current["id"] in tids:
                return tids[current["id"]]
            seen.add(current["id"])
            parent = current.get("parent")
            current = by_id.get(parent) if parent is not None else None
        return STRUCTURAL_TID

    events: List[Dict[str, Any]] = []
    for span in sorted(spans, key=lambda s: (s["t0"], s["id"])):
        args: Dict[str, Any] = dict(span.get("attrs") or {})
        if span.get("ann"):
            args["annotations"] = span["ann"]
        args["span_id"] = span["id"]
        if span.get("parent") is not None:
            args["parent_id"] = span["parent"]
        if span.get("cpu_dur"):
            args["cpu_s"] = span["cpu_dur"]
        events.append(
            {
                "name": span["name"],
                "cat": span["kind"],
                "ph": "X",
                "ts": round((span["t0"] - t_min) * 1e6, 3),
                "dur": round(span["dur"] * 1e6, 3),
                "pid": header.get("pid", 0),
                "tid": resolve_tid(span),
                "args": args,
            }
        )

    metadata: Dict[str, Any] = {"trace_header": header, "n_spans": len(spans)}
    if metrics is not None:
        metadata["metrics"] = {k: v for k, v in metrics.items() if k != "type"}
    return {"traceEvents": events, "displayTimeUnit": "ms", "metadata": metadata}


def merge_chrome_traces(
    parts: Sequence[Tuple[Dict[str, Any], List[Dict[str, Any]]]],
) -> Dict[str, Any]:
    """Stitch several trace files into one multi-process Chrome trace.

    ``parts`` is a sequence of ``(header, records)`` pairs as returned by
    :meth:`TraceSink.read` — typically a serve job's daemon-side trace
    plus engine/worker traces claiming the same ``trace_id``.  Every file
    keeps its own ``pid`` lane-group (labelled via ``process_name``
    metadata events, including its trace id), and all files share one
    timeline anchored at the globally earliest span, so cross-process
    causality reads left-to-right in Perfetto.
    """
    t_min = min(
        (
            record["t0"]
            for _, records in parts
            for record in records
            if record.get("type") == "span"
        ),
        default=0.0,
    )
    events: List[Dict[str, Any]] = []
    part_meta: List[Dict[str, Any]] = []
    trace_ids: List[str] = []
    for index, (header, records) in enumerate(parts):
        converted = to_chrome_trace(header, records, t_min=t_min)
        pid = header.get("pid", 0)
        trace_id = header.get("trace_id")
        if trace_id is not None and trace_id not in trace_ids:
            trace_ids.append(trace_id)
        label = f"pid {pid}"
        if trace_id is not None:
            label += f" · trace {trace_id}"
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": label}}
        )
        events.append(
            {"name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
             "args": {"sort_index": index}}
        )
        events.extend(converted["traceEvents"])
        part_meta.append(converted["metadata"])
    metadata = {
        "parts": part_meta,
        "trace_ids": trace_ids,
        "n_spans": sum(meta["n_spans"] for meta in part_meta),
    }
    return {"traceEvents": events, "displayTimeUnit": "ms", "metadata": metadata}
