"""Shared number formatting for CLI summaries and bench reports.

One place to format rates, overheads and durations so the CLI's engine
summary and ``tools/bench_engine.py`` print the same shapes — previously
each call site interpolated raw floats with ad-hoc precision.
"""

from __future__ import annotations

import math

__all__ = ["format_percent", "format_overhead", "format_seconds", "format_count"]


def format_percent(fraction: float, decimals: int = 1) -> str:
    """A 0-1 fraction as a percentage string: ``0.6842 -> '68.4%'``."""
    if not math.isfinite(fraction):
        return "n/a"
    return f"{100.0 * fraction:.{decimals}f}%"


def format_overhead(fraction: float, decimals: int = 1) -> str:
    """A signed overhead fraction: ``0.038 -> '+3.8%'``, ``-0.002 -> '-0.2%'``."""
    if not math.isfinite(fraction):
        return "n/a"
    return f"{100.0 * fraction:+.{decimals}f}%"


def format_seconds(seconds: float) -> str:
    """A duration with sub-second/minute awareness: ``0.0042 -> '4.2ms'``."""
    if not math.isfinite(seconds):
        return "n/a"
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:04.1f}s"


def format_count(value: int) -> str:
    """An integer with thousands separators: ``1234567 -> '1,234,567'``."""
    return f"{int(value):,}"
