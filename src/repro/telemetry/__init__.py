"""Unified telemetry: run tracing, metrics registry and profiling hooks.

The package is zero-dependency (stdlib only) and threads through every
layer of the repo — engine, searchers, evaluator, journal, guard, chaos,
CLI — behind a single :class:`Telemetry` facade:

>>> from repro.telemetry import Telemetry
>>> telemetry = Telemetry(trace="run.trace")          # doctest: +SKIP
>>> outcome = optimize(..., telemetry=telemetry)      # doctest: +SKIP
>>> telemetry.close()                                 # doctest: +SKIP

Three cooperating pieces:

- **Spans** (:mod:`.spans`): nested timed regions
  ``run > bracket > rung > trial > fold > fit`` streamed to a JSONL sink,
  exportable to Chrome-trace/Perfetto JSON (:mod:`.export`,
  ``tools/trace_view.py``).
- **Metrics** (:mod:`.metrics`): counters/gauges/histograms that merge
  deterministically, so serial and parallel runs of the same seed produce
  identical counters.
- **Profiling** (:mod:`.profiling`): the opt-in ``@profiled`` decorator on
  hot paths (MLP fit, k-means, fold construction, subset sampling).

Worker processes record into a per-trial collector (:mod:`.collect`)
whose payload rides home on the evaluation result; the parent detaches
it before caching/journaling, so telemetry is bit-for-bit neutral on run
outputs and on everything persisted.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Union
from pathlib import Path

from .collect import (
    COLLECT_METRICS,
    COLLECT_PROFILE,
    COLLECT_SPANS,
    TrialCollector,
    attach_payload,
    current_collector,
    detach_payload,
    install_collector,
    trial_collection,
)
from .export import merge_chrome_traces, to_chrome_trace
from .formatting import format_count, format_overhead, format_percent, format_seconds
from .metrics import METRICS_SCHEMA_VERSION, HistogramSummary, MetricsRegistry
from .profiling import profiled
from .spans import TRACE_VERSION, Span, TraceSink, Tracer

__all__ = [
    "Telemetry",
    "Tracer",
    "TraceSink",
    "Span",
    "TRACE_VERSION",
    "MetricsRegistry",
    "HistogramSummary",
    "METRICS_SCHEMA_VERSION",
    "TrialCollector",
    "trial_collection",
    "install_collector",
    "current_collector",
    "attach_payload",
    "detach_payload",
    "COLLECT_SPANS",
    "COLLECT_PROFILE",
    "COLLECT_METRICS",
    "profiled",
    "to_chrome_trace",
    "merge_chrome_traces",
    "format_percent",
    "format_overhead",
    "format_seconds",
    "format_count",
]


class Telemetry:
    """One run's telemetry: a tracer, a metrics registry and the wiring.

    Parameters
    ----------
    trace:
        Path for the JSONL span trace; ``None`` disables span recording
        (the registry still collects metrics).
    fsync:
        Force every trace record to stable storage (default off — see
        :class:`~repro.telemetry.spans.TraceSink`).
    profile:
        Enable ``@profiled`` hot-path timings (``profile.*`` metrics).
    on_trial:
        Optional callback ``f(telemetry, attrs)`` invoked after every
        trial is recorded — the CLI's live progress line hangs off this.
    context:
        Optional :class:`repro.obs.tracectx.TraceContext` stamped into
        the trace file header, claiming every span in the file for one
        cross-process trace (serve job id, CLI run digest).
    clock, cpu_clock:
        Injectable clocks shared by the tracer and inline collection.

    Notes
    -----
    A ``Telemetry`` object is **single-run, single-process** on the
    recording side: the engine and searchers call it only from the parent
    process; worker-side observations arrive as collector payloads.
    Close it (or use it as a context manager) to flush the final metrics
    snapshot into the trace file.
    """

    def __init__(
        self,
        trace: Optional[Union[str, Path]] = None,
        fsync: bool = False,
        profile: bool = False,
        on_trial: Optional[Callable[["Telemetry", Dict[str, Any]], None]] = None,
        context: Optional[Any] = None,
        clock: Callable[[], float] = time.monotonic,
        cpu_clock: Callable[[], float] = time.process_time,
    ) -> None:
        self.context = context
        self.sink = (
            TraceSink(trace, fsync=fsync, context=context) if trace is not None else None
        )
        self.tracer = Tracer(self.sink, clock=clock, cpu_clock=cpu_clock)
        self.registry = MetricsRegistry()
        self.profile = profile
        self.on_trial = on_trial
        self.clock = clock
        self.cpu_clock = cpu_clock
        self.trials_seen = 0
        self._closed = False

    # -- wiring ----------------------------------------------------------------

    @property
    def collection_flags(self) -> int:
        """Bitmask shipped to executors/workers for per-trial collection."""
        flags = COLLECT_METRICS
        if self.tracer.enabled:
            flags |= COLLECT_SPANS
        if self.profile:
            flags |= COLLECT_PROFILE
        return flags

    def span(self, name: str, kind: Optional[str] = None, **attrs: Any):
        """Open a structural span (run/bracket/rung) — tracer passthrough."""
        return self.tracer.span(name, kind, **attrs)

    @contextmanager
    def trial(self, **attrs: Any) -> Iterator[Dict[str, Any]]:
        """Collect and record one inline (engine-less) evaluation.

        Installs a trial collector for the block, times it, then records
        the trial span (with any fold/fit children the evaluator
        produced) and merges the collector's metrics.  Yields a mutable
        record: update ``record["attrs"]`` with facts discovered during
        the evaluation (score, gamma, cost) and append guard-event dicts
        to ``record["ann"]``.
        """
        record: Dict[str, Any] = {"attrs": dict(attrs), "ann": []}
        t0 = self.clock()
        cpu0 = self.cpu_clock()
        with trial_collection(self.collection_flags) as collector:
            try:
                yield record
            finally:
                self.emit_trial(
                    t0,
                    self.clock() - t0,
                    attrs=record["attrs"],
                    cpu_dur=self.cpu_clock() - cpu0,
                    annotations=record["ann"],
                    payload=collector.payload() if collector is not None else None,
                )

    def emit_trial(
        self,
        t0: float,
        dur: float,
        attrs: Optional[Dict[str, Any]] = None,
        cpu_dur: float = 0.0,
        annotations: Optional[List[Dict[str, Any]]] = None,
        payload: Optional[Dict[str, Any]] = None,
        parent_id: Optional[int] = None,
    ) -> None:
        """Record one finished trial: metrics merge + trial span + children.

        This is the single funnel for both execution paths — the engine
        calls it per settled outcome (payload detached from the result),
        the inline path reaches it through :meth:`trial`.
        """
        self.registry.merge_payload(payload)
        self.tracer.emit(
            "trial",
            "trial",
            t0,
            dur,
            cpu_dur=cpu_dur,
            parent_id=parent_id,
            attrs=attrs,
            annotations=annotations,
            children=(payload or {}).get("spans"),
            origin=(payload or {}).get("origin"),
        )
        self.trials_seen += 1
        if self.on_trial is not None:
            self.on_trial(self, attrs or {})

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Flush the final metrics snapshot into the trace and close it.

        Idempotent.  With tracing off this is a no-op apart from marking
        the object closed; the registry stays readable either way.
        """
        if self._closed:
            return
        self._closed = True
        if self.sink is not None:
            if self.sink.spans_written and len(self.registry):
                self.sink.write({"type": "metrics", **self.registry.as_dict()})
            self.sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        trace = self.sink.path if self.sink is not None else None
        return (
            f"Telemetry(trace={str(trace)!r}, profile={self.profile}, "
            f"trials_seen={self.trials_seen}, metrics={len(self.registry)})"
        )
