"""Metrics registry: counters, gauges and histogram summaries that merge.

The registry is the numeric half of the telemetry layer (spans being the
temporal half).  Three design constraints shape it:

- **Zero dependencies and process safety.**  Worker processes never touch
  a shared registry; they record into a per-trial
  :class:`~repro.telemetry.collect.TrialCollector` whose payload rides
  back to the parent on the evaluation result (over the executor's
  existing pipes) and is merged here.  Nothing is locked because nothing
  is shared.
- **Deterministic merge.**  Counters are plain integers, so merging is
  commutative and associative: a serial run and a parallel run of the
  same seed produce *identical* merged counters no matter the completion
  order.  Histogram summaries (count/total/min/max) are commutative for
  count/min/max; ``total`` is a float sum whose last-ulp rounding can in
  principle depend on order, which is why comparisons across executors
  should use :meth:`MetricsRegistry.counters` rather than histogram
  totals.
- **Bounded memory.**  Histograms keep a four-number summary, not the
  observations, so a million-trial run costs the same as a ten-trial one.

Metric names are dot-namespaced strings (``engine.cache_hits``,
``trial.execute_s``, ``profile.mlp.fit``); the full vocabulary lives in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

__all__ = ["METRICS_SCHEMA_VERSION", "HistogramSummary", "MetricsRegistry"]

#: Version of the :meth:`MetricsRegistry.as_dict` payload; bump when the
#: shape changes so BENCH_telemetry.json stays comparable across PRs.
METRICS_SCHEMA_VERSION = 1


class HistogramSummary:
    """Streaming summary of observations: count, total, min, max.

    Deliberately not a bucketed histogram: the telemetry layer's
    consumers (bench JSON, CLI summaries, tests) want aggregates, and a
    four-float summary merges in O(1) with no binning decisions baked
    into the wire format.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "HistogramSummary") -> None:
        """Fold another summary into this one."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    def merge_wire(self, wire: List[float]) -> None:
        """Fold a ``[count, total, min, max]`` wire quadruple into this one."""
        count, total, minimum, maximum = wire
        self.count += int(count)
        self.total += float(total)
        if minimum < self.minimum:
            self.minimum = float(minimum)
        if maximum > self.maximum:
            self.maximum = float(maximum)

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_wire(self) -> List[float]:
        """The ``[count, total, min, max]`` quadruple used on the wire."""
        return [self.count, self.total, self.minimum, self.maximum]

    def as_dict(self) -> Dict[str, float]:
        """JSON-able summary including the derived mean."""
        return {
            "count": self.count,
            "total": round(self.total, 9),
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": round(self.mean, 9),
        }

    def __repr__(self) -> str:
        return (
            f"HistogramSummary(count={self.count}, total={self.total:.6g}, "
            f"min={self.minimum:.6g}, max={self.maximum:.6g})"
        )


class MetricsRegistry:
    """Process-local registry of counters, gauges and histogram summaries.

    One registry lives on each :class:`~repro.telemetry.Telemetry`
    instance (i.e. one per run, in the parent process).  Worker-side
    observations arrive as collector payloads and are merged via
    :meth:`merge_payload`; two registries merge via :meth:`merge`.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.inc("engine.cache_hits")
    >>> registry.observe("trial.execute_s", 0.25)
    >>> registry.counters()["engine.cache_hits"]
    1
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramSummary] = {}

    # -- recording -------------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the integer counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest value."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one observation into the histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = HistogramSummary()
        histogram.observe(value)

    # -- merging ---------------------------------------------------------------

    def merge_payload(self, payload: Optional[Dict[str, Any]]) -> None:
        """Fold a :meth:`TrialCollector.payload` dict into the registry.

        Tolerates ``None`` and missing keys so callers can pass whatever
        came off the wire without pre-validation.
        """
        if not payload:
            return
        for name, value in (payload.get("counters") or {}).items():
            self.inc(name, value)
        for name, wire in (payload.get("timings") or {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = HistogramSummary()
            histogram.merge_wire(wire)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters sum, gauges last-write)."""
        for name, value in other._counters.items():
            self.inc(name, value)
        self._gauges.update(other._gauges)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = HistogramSummary()
            mine.merge(histogram)

    # -- reading ---------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Name-sorted copy of every counter — the deterministic comparator."""
        return {name: self._counters[name] for name in sorted(self._counters)}

    def gauges(self) -> Dict[str, float]:
        """Name-sorted copy of every gauge."""
        return {name: self._gauges[name] for name in sorted(self._gauges)}

    def histograms(self) -> Dict[str, HistogramSummary]:
        """Name-sorted shallow copy of the histogram summaries."""
        return {name: self._histograms[name] for name in sorted(self._histograms)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot.

        The inverse up to histogram totals' 9-decimal rounding; used by
        ``repro obs snapshot`` to re-render a finished run's trace-file
        metrics as Prometheus text.
        """
        registry = cls()
        for name, value in (payload.get("counters") or {}).items():
            registry._counters[name] = int(value)
        for name, value in (payload.get("gauges") or {}).items():
            registry._gauges[name] = float(value)
        for name, summary in (payload.get("histograms") or {}).items():
            if summary.get("count"):
                histogram = HistogramSummary()
                histogram.merge_wire(
                    [summary["count"], summary["total"], summary["min"], summary["max"]]
                )
                registry._histograms[name] = histogram
        return registry

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot with every section name-sorted (stable output)."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": self.counters(),
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {
                name: histogram.as_dict() for name, histogram in self.histograms().items()
            },
        }

    def render_lines(self, indent: str = "  ") -> List[str]:
        """Human-readable dump for CLI summaries (sorted, aligned)."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            width = max(len(name) for name in self._counters)
            for name, value in self.counters().items():
                lines.append(f"{indent}{name:<{width}}  {value}")
        if self._gauges:
            lines.append("gauges:")
            width = max(len(name) for name in self._gauges)
            for name in sorted(self._gauges):
                lines.append(f"{indent}{name:<{width}}  {self._gauges[name]:.6g}")
        if self._histograms:
            lines.append("histograms (count / mean / max seconds-or-units):")
            width = max(len(name) for name in self._histograms)
            for name, histogram in self.histograms().items():
                lines.append(
                    f"{indent}{name:<{width}}  n={histogram.count}"
                    f"  mean={histogram.mean:.6g}  max={histogram.maximum:.6g}"
                )
        return lines

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
