"""Structured run tracing: nested spans streamed to an append-only JSONL sink.

A *span* is one timed region of the run — ``run > bracket > rung > trial >
fold > fit`` — with wall-clock and CPU durations, free-form JSON-able
attributes (trial seed, rung budget, gamma, journal sequence number) and
annotations (guard events).  :class:`Tracer` hands out spans as context
managers and maintains the parent stack; :class:`TraceSink` streams each
closed span as one JSON line, so a crash loses at most the spans that were
still open plus one torn final line — which :meth:`TraceSink.read`
tolerates exactly like the run journal tolerates its own torn tail.

The format is deliberately dumb: a ``header`` line followed by ``span``
lines (children may appear *before* their parent, since a parent closes
last), optionally ending in a ``metrics`` snapshot line.
``tools/trace_view.py`` converts a trace file into Chrome-trace/Perfetto
JSON via :func:`repro.telemetry.export.to_chrome_trace`.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..obs import flightrec as _flightrec

__all__ = ["TRACE_VERSION", "Span", "TraceSink", "Tracer"]

#: On-disk trace format version; bump when the record schema changes.
TRACE_VERSION = 1


class Span:
    """One open span: mutable attributes until the context manager closes it.

    Attributes
    ----------
    span_id, parent_id:
        Sequential identity assigned by the tracer and the enclosing
        span (``None`` for a root span).
    name, kind:
        What the region is (``"trial"``) and which taxonomy lane it
        belongs to (usually equal to ``name``; distinct for custom spans).
    attrs:
        JSON-able facts about the region; mutable while the span is open
        so code can attach results (a fold's score) discovered mid-span.
    annotations:
        List of JSON-able dicts attached to the span — the engine links
        guard events here.
    """

    __slots__ = ("span_id", "parent_id", "name", "kind", "attrs", "annotations", "t0", "cpu0")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        attrs: Dict[str, Any],
        t0: float,
        cpu0: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self.annotations: List[Dict[str, Any]] = []
        self.t0 = t0
        self.cpu0 = cpu0

    def annotate(self, payload: Dict[str, Any]) -> None:
        """Attach one JSON-able annotation (e.g. a guard event)."""
        self.annotations.append(payload)


class TraceSink:
    """Append-only JSONL span stream with journal-style torn-tail tolerance.

    Parameters
    ----------
    path:
        Trace file location; parents are created on first write.
    fsync:
        Force every record to stable storage (off by default — traces are
        observability, not the source of truth the run journal is; flip it
        on to trace the run that keeps crashing the machine).
    context:
        Optional :class:`repro.obs.tracectx.TraceContext` (or its
        ``to_wire()`` dict).  Stamped into the header as ``trace_id`` /
        ``parent_span``, which is how a whole file of spans is claimed by
        one cross-process trace without per-span overhead.

    Notes
    -----
    The writer is lazy: the file (and its ``header`` line) is only created
    when the first span closes, so constructing a telemetry object is free
    until something actually happens.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync: bool = False,
        context: Optional[Any] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.context = context
        self._handle = None
        self.spans_written = 0

    # -- writing ---------------------------------------------------------------

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as a compact JSON line (header auto-written)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w")
            header: Dict[str, Any] = {
                "type": "header",
                "version": TRACE_VERSION,
                "created_unix": round(time.time(), 3),
                "pid": os.getpid(),
            }
            if self.context is not None:
                wire = (
                    self.context.to_wire()
                    if hasattr(self.context, "to_wire")
                    else dict(self.context)
                )
                header["trace_id"] = wire["trace_id"]
                if wire.get("parent_span") is not None:
                    header["parent_span"] = wire["parent_span"]
            self._write_line(header)
        if record.get("type") == "span":
            self.spans_written += 1
        self._write_line(record)

    def _write_line(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the file (idempotent); an unopened sink leaves no file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading ---------------------------------------------------------------

    @staticmethod
    def read(
        path: Union[str, Path],
    ) -> Tuple[Dict[str, Any], List[Dict[str, Any]], int]:
        """Parse a trace file into ``(header, records, n_dropped)``.

        Mirrors :meth:`repro.engine.journal.RunJournal.read`: a crash can
        only truncate the file mid-line, so parsing stops at the first
        undecodable record and reports how many trailing lines were
        dropped.  A missing or wrong-version header raises ``ValueError``
        — that is corruption of a different kind.
        """
        path = Path(path)
        lines = path.read_text().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise ValueError(f"trace {path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace {path} has an unreadable header: {exc}") from exc
        if not isinstance(header, dict) or header.get("type") != "header":
            raise ValueError(f"trace {path} does not start with a header record")
        if header.get("version") != TRACE_VERSION:
            raise ValueError(
                f"trace {path} has version {header.get('version')!r}; "
                f"this build reads {TRACE_VERSION}"
            )
        records: List[Dict[str, Any]] = []
        dropped = 0
        for index, line in enumerate(lines[1:]):
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "type" not in record:
                    raise KeyError("type")
                records.append(record)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                dropped = len(lines) - 1 - index
                break
        return header, records, dropped

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Tracer:
    """Produces nested spans and streams them to a sink as they close.

    Parameters
    ----------
    sink:
        The :class:`TraceSink` closed spans are written to.  ``None``
        disables span recording entirely — :meth:`span` then returns a
        no-op context so call sites stay branch-free.
    clock, cpu_clock:
        Injectable wall (monotonic) and CPU clocks; tests pass fakes to
        make span durations deterministic.
    on_close:
        Optional callback invoked with every closed span record — the
        CLI's live progress line hangs off this.

    Notes
    -----
    Span ids are sequential integers starting at 1, in *open* order, so
    ids are deterministic for a deterministic schedule even though the
    file holds spans in close order.  The tracer is intentionally
    single-threaded: the engine settles all trials in the parent process,
    and worker-side (fold/fit) spans arrive as relative records that
    :meth:`emit` grafts under their trial span.
    """

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        clock: Callable[[], float] = time.monotonic,
        cpu_clock: Callable[[], float] = time.process_time,
        on_close: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.sink = sink
        self.clock = clock
        self.cpu_clock = cpu_clock
        self.on_close = on_close
        self._next_id = 1
        self._stack: List[int] = []

    @property
    def enabled(self) -> bool:
        """Whether spans are being recorded at all."""
        return self.sink is not None

    @property
    def current_id(self) -> Optional[int]:
        """Id of the innermost open span (``None`` at top level)."""
        return self._stack[-1] if self._stack else None

    def _allocate(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    # -- span production -------------------------------------------------------

    @contextmanager
    def span(self, name: str, kind: Optional[str] = None, **attrs: Any) -> Iterator[Optional[Span]]:
        """Open a child span of the innermost open span.

        Yields the mutable :class:`Span` (or ``None`` when tracing is
        disabled, so ``with tracer.span(...) as s:`` call sites must
        guard attribute writes with ``if s is not None`` — or simply not
        take the target).
        """
        if self.sink is None:
            yield None
            return
        span = Span(
            span_id=self._allocate(),
            parent_id=self.current_id,
            name=name,
            kind=kind if kind is not None else name,
            attrs=dict(attrs),
            t0=self.clock(),
            cpu0=self.cpu_clock(),
        )
        self._stack.append(span.span_id)
        try:
            yield span
        finally:
            self._stack.pop()
            self._write_span(
                span.span_id,
                span.parent_id,
                span.name,
                span.kind,
                span.t0,
                self.clock() - span.t0,
                self.cpu_clock() - span.cpu0,
                span.attrs,
                span.annotations,
            )

    def emit(
        self,
        name: str,
        kind: str,
        t0: float,
        dur: float,
        cpu_dur: float = 0.0,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
        annotations: Optional[List[Dict[str, Any]]] = None,
        children: Optional[List[Dict[str, Any]]] = None,
        origin: Optional[Dict[str, Any]] = None,
    ) -> Optional[int]:
        """Write one already-timed span (plus optional collected children).

        This is the grafting entry point for spans whose timing happened
        elsewhere — a trial measured by the engine, or fold/fit spans a
        worker process collected as *relative* records
        (``{"id", "parent", "name", "kind", "rel0", "dur", ...}``).
        Children are re-rooted under the new span: their local ids are
        remapped to fresh tracer ids and their ``rel0`` offsets are laid
        out inside the tail of the parent span's window (the evaluation
        itself runs at the end of a trial span; the head is queue wait).
        When ``origin`` (``{"pid": ..., "worker": ...}``, stamped by the
        executor that ran the evaluation) is given, each grafted child
        carries it as span attributes — that is what makes the process
        boundary visible in a stitched Chrome trace.

        Returns the new span's id, or ``None`` when tracing is disabled.
        """
        if self.sink is None:
            return None
        span_id = self._allocate()
        if parent_id is None:
            parent_id = self.current_id
        self._write_span(
            span_id, parent_id, name, kind, t0, dur, cpu_dur, attrs or {}, annotations or []
        )
        if children:
            # Worker-relative records are offsets from the collection start;
            # the collection window is the last `window` seconds of the span.
            window = max((child.get("rel0", 0.0) + child.get("dur", 0.0) for child in children),
                         default=0.0)
            base = t0 + max(0.0, dur - window)
            # Children arrive in *close* order — a fold closes after its fit
            # spans — so allocate every id before resolving parent links.
            id_map: Dict[int, int] = {int(child["id"]): self._allocate() for child in children}
            for child in children:
                local_parent = child.get("parent")
                mapped_parent = id_map.get(int(local_parent)) if local_parent is not None else span_id
                child_attrs = dict(child.get("attrs") or {})
                if origin:
                    child_attrs.setdefault("pid", origin.get("pid"))
                    if origin.get("worker") is not None:
                        child_attrs.setdefault("worker", origin.get("worker"))
                self._write_span(
                    id_map[int(child["id"])],
                    mapped_parent if mapped_parent is not None else span_id,
                    str(child.get("name", "span")),
                    str(child.get("kind", child.get("name", "span"))),
                    base + float(child.get("rel0", 0.0)),
                    float(child.get("dur", 0.0)),
                    float(child.get("cpu_dur", 0.0)),
                    child_attrs,
                    list(child.get("ann") or []),
                )
        return span_id

    def _write_span(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        t0: float,
        dur: float,
        cpu_dur: float,
        attrs: Dict[str, Any],
        annotations: List[Dict[str, Any]],
    ) -> None:
        record: Dict[str, Any] = {
            "type": "span",
            "id": span_id,
            "parent": parent_id,
            "name": name,
            "kind": kind,
            "t0": round(t0, 6),
            "dur": round(dur, 6),
            "cpu_dur": round(cpu_dur, 6),
        }
        if attrs:
            record["attrs"] = attrs
        if annotations:
            record["ann"] = annotations
        self.sink.write(record)
        _flightrec.note("span.close", name=name, span=span_id, dur=record["dur"])
        if self.on_close is not None:
            self.on_close(record)
