"""Worker-side telemetry collection that rides evaluation results home.

Worker processes cannot write to the parent's tracer or registry, and the
executor pipes already carry exactly one object per trial: the
:class:`~repro.bandit.base.EvaluationResult`.  So collection works like
this:

1. The executor wraps each evaluation in :func:`trial_collection`, which
   installs a process-local :class:`TrialCollector` discoverable via
   :func:`current_collector`.
2. Instrumented code (evaluator folds, ``@profiled`` functions, chaos
   injection) records spans/counters/timings into that collector with no
   knowledge of where it runs.
3. The executor attaches :meth:`TrialCollector.payload` to the result via
   :func:`attach_payload`; the payload is a plain JSON-able dict that
   pickles over the pipe for free.
4. The engine detaches it with :func:`detach_payload` *before* the result
   is cached or journaled (cached results must stay byte-identical to an
   untraced run) and merges it into the run's registry/tracer.

Span times inside a collector are **relative** to the collector's start —
worker monotonic clocks are not comparable to the parent's, so the parent
grafts the records into the tail of the trial span instead
(:meth:`repro.telemetry.spans.Tracer.emit`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "COLLECT_SPANS",
    "COLLECT_PROFILE",
    "COLLECT_METRICS",
    "TrialCollector",
    "current_collector",
    "trial_collection",
    "install_collector",
    "attach_payload",
    "detach_payload",
]

#: Bit in the collection flags: record fold/fit spans.
COLLECT_SPANS = 1
#: Bit in the collection flags: record ``@profiled`` hot-path timings.
COLLECT_PROFILE = 2
#: Bit in the collection flags: install a collector at all (counters and
#: fold-score timings).  Always set while a ``Telemetry`` object is active.
COLLECT_METRICS = 4

#: Attribute name the payload rides under on ``EvaluationResult.__dict__``.
PAYLOAD_ATTR = "_telemetry"

#: The installed collector, tracked per *thread*: the serve daemon runs
#: several jobs concurrently in worker threads, each with its own serial
#: engine, and one job's collector must never see another's folds.
_local = threading.local()


class TrialCollector:
    """Accumulates one trial's spans, counters and timings in-process.

    Parameters
    ----------
    flags:
        Bitmask of :data:`COLLECT_SPANS` / :data:`COLLECT_PROFILE`; a zero
        mask still collects counters (they are nearly free and the chaos
        layer always wants them).
    clock, cpu_clock:
        Injectable clocks, as everywhere else in the repo.

    Notes
    -----
    Span records use local sequential ids and ``rel0`` offsets from the
    collector's construction time; the parent remaps both when grafting.
    """

    __slots__ = ("flags", "clock", "cpu_clock", "_t0", "_spans", "_stack",
                 "_counters", "_timings", "_next_id")

    def __init__(
        self,
        flags: int = COLLECT_SPANS,
        clock: Callable[[], float] = time.monotonic,
        cpu_clock: Callable[[], float] = time.process_time,
    ) -> None:
        self.flags = flags
        self.clock = clock
        self.cpu_clock = cpu_clock
        self._t0 = clock()
        self._spans: List[Dict[str, Any]] = []
        self._stack: List[int] = []
        self._counters: Dict[str, int] = {}
        self._timings: Dict[str, List[float]] = {}
        self._next_id = 1

    @property
    def wants_spans(self) -> bool:
        return bool(self.flags & COLLECT_SPANS)

    @property
    def wants_profile(self) -> bool:
        return bool(self.flags & COLLECT_PROFILE)

    # -- recording -------------------------------------------------------------

    @contextmanager
    def span(self, name: str, kind: Optional[str] = None, **attrs: Any) -> Iterator[Optional[Dict[str, Any]]]:
        """Record one relative span (no-op context when spans are off).

        Yields the mutable record so the caller can attach attributes
        discovered mid-span (``record["attrs"]["score"] = ...``); yields
        ``None`` when span collection is disabled.
        """
        if not self.wants_spans:
            yield None
            return
        span_id = self._next_id
        self._next_id += 1
        record: Dict[str, Any] = {
            "id": span_id,
            "parent": self._stack[-1] if self._stack else None,
            "name": name,
            "kind": kind if kind is not None else name,
            "attrs": dict(attrs),
        }
        t0, cpu0 = self.clock(), self.cpu_clock()
        self._stack.append(span_id)
        try:
            yield record
        finally:
            self._stack.pop()
            record["rel0"] = round(t0 - self._t0, 6)
            record["dur"] = round(self.clock() - t0, 6)
            record["cpu_dur"] = round(self.cpu_clock() - cpu0, 6)
            if not record["attrs"]:
                del record["attrs"]
            self._spans.append(record)

    def inc(self, name: str, value: int = 1) -> None:
        """Add to an integer counter (always collected, flags or not)."""
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one value into a ``[count, total, min, max]`` timing."""
        value = float(value)
        wire = self._timings.get(name)
        if wire is None:
            self._timings[name] = [1, value, value, value]
        else:
            wire[0] += 1
            wire[1] += value
            if value < wire[2]:
                wire[2] = value
            if value > wire[3]:
                wire[3] = value

    # -- export ----------------------------------------------------------------

    def payload(self) -> Optional[Dict[str, Any]]:
        """JSON-able dict to ship home, or ``None`` when nothing was recorded."""
        out: Dict[str, Any] = {}
        if self._spans:
            out["spans"] = self._spans
        if self._counters:
            out["counters"] = self._counters
        if self._timings:
            out["timings"] = self._timings
        return out or None


def current_collector() -> Optional[TrialCollector]:
    """The collector installed for the evaluation in progress, if any.

    Instrumented code calls this on its hot path; a ``None`` return means
    telemetry is off and the caller should do nothing.  The slot is
    process-local by construction — each worker process gets its own
    module state after fork — and *thread*-local on top, so concurrent
    serve jobs in one daemon each see only their own collector.
    """
    return getattr(_local, "collector", None)


@contextmanager
def trial_collection(flags: int) -> Iterator[Optional[TrialCollector]]:
    """Install a fresh :class:`TrialCollector` for the duration of the block.

    Yields ``None`` (and installs nothing) when ``flags`` is zero, so the
    executors can pass the engine's mask straight through.  Nesting is
    not supported and not needed: one evaluation, one collector.
    """
    if not flags:
        yield None
        return
    collector = TrialCollector(flags=flags)
    previous = getattr(_local, "collector", None)
    _local.collector = collector
    try:
        yield collector
    finally:
        _local.collector = previous


@contextmanager
def install_collector(collector: Optional[TrialCollector]) -> Iterator[Optional[TrialCollector]]:
    """Install an *existing* collector for the duration of the block.

    The mega-batch path evaluates several trials interleaved (plan all,
    fit all folds fused, score all), so each trial's collector is
    created once and re-installed around every phase that touches that
    trial — counters and spans accumulate across installs into the same
    payload.  ``None`` installs nothing, mirroring
    :func:`trial_collection` with zero flags.
    """
    if collector is None:
        yield None
        return
    previous = getattr(_local, "collector", None)
    _local.collector = collector
    try:
        yield collector
    finally:
        _local.collector = previous


def attach_payload(result: Any, collector: Optional[TrialCollector]) -> None:
    """Stash the collector's payload on the result (if there is anything).

    Uses ``__dict__`` directly so plain dataclass results carry it across
    pickling without schema changes — the wire format of an untelemetered
    result is untouched.
    """
    if collector is None:
        return
    payload = collector.payload()
    if payload is not None:
        result.__dict__[PAYLOAD_ATTR] = payload


def detach_payload(result: Any) -> Optional[Dict[str, Any]]:
    """Remove and return the payload (``None`` when absent).

    The engine calls this before caching or journaling a result so stored
    results stay byte-identical to a telemetry-off run.
    """
    payload = result.__dict__.pop(PAYLOAD_ATTR, None) if hasattr(result, "__dict__") else None
    return payload
