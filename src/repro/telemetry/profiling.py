"""Opt-in hot-path profiling: the ``@profiled`` decorator.

``@profiled("mlp.fit")`` wraps a function so that, *when a trial collector
with the profile bit is installed* (``--profile`` / ``Telemetry(profile=True)``),
each call's wall and CPU time is folded into the ``profile.<name>.s`` and
``profile.<name>.cpu_s`` timings plus a ``profile.<name>.calls`` counter.
When no collector is installed the overhead is one global read and one
``None`` check — cheap enough to leave on ``MLP.fit``, ``KMeans.fit``,
fold construction and subset sampling permanently.

The decorator deliberately does **not** open spans: profiled functions
can be called thousands of times per trial (k-means per fold, fits per
rung) and per-call spans would swamp the trace.  Aggregated timings in
the registry are the right granularity; spans cover the structural
levels (run/bracket/rung/trial/fold/fit).
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, TypeVar

from .collect import current_collector

__all__ = ["profiled"]

F = TypeVar("F", bound=Callable[..., Any])


def profiled(name: str) -> Callable[[F], F]:
    """Decorate a function to record per-call timings when profiling is on.

    Parameters
    ----------
    name:
        Dot-namespaced suffix for the metric names: a function decorated
        ``@profiled("kmeans.fit")`` reports ``profile.kmeans.fit.calls``,
        ``profile.kmeans.fit.s`` and ``profile.kmeans.fit.cpu_s``.
    """
    calls_metric = f"profile.{name}.calls"
    wall_metric = f"profile.{name}.s"
    cpu_metric = f"profile.{name}.cpu_s"

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            collector = current_collector()
            if collector is None or not collector.wants_profile:
                return func(*args, **kwargs)
            t0 = time.monotonic()
            cpu0 = time.process_time()
            try:
                return func(*args, **kwargs)
            finally:
                collector.inc(calls_metric)
                collector.observe(wall_metric, time.monotonic() - t0)
                collector.observe(cpu_metric, time.process_time() - cpu0)

        wrapper.__wrapped__ = func
        return wrapper  # type: ignore[return-value]

    return decorate
