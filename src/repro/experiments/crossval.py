"""Cross-validation experiment runners (Figure 5-7, Table V).

All four experiments share one protocol: cross-validate a fixed candidate
grid on a subset of a given ratio with some CV *variant*, recommend the
top-scoring configuration, and compare against the ground-truth test scores
(every configuration refit on the full training set) via recommended-config
accuracy and nDCG.

The variants map onto the three axes of
:class:`~repro.core.evaluator.SubsetCVEvaluator`:

=================  ==========  =========================  ==============
variant            sampling    folding                    metric
=================  ==========  =========================  ==============
``random``         random      random k-fold              mean
``stratified``     stratified  stratified k-fold          mean
``ours``           grouped     general+special (3+2)      Eq. 3 UCB
``grouped-mean``   grouped     group-stratified (5+0)     mean (Table V)
``ours-mean``      grouped     general+special (3+2)      mean (Fig. 7)
``folds-g<g>s<s>`` grouped     general+special (g+s)      mean (Fig. 6)
=================  ==========  =========================  ==============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cv import CrossValidationStudy
from ..core.evaluator import MLPModelFactory, SubsetCVEvaluator
from ..core.grouping import generate_groups
from ..core.scoring import ScoreParams
from ..datasets import Dataset
from .spaces import cv_experiment_space

__all__ = [
    "CVVariantResult",
    "build_cv_evaluator",
    "run_cv_experiment",
    "CV_EXPERIMENT_DATASETS",
]

#: the six datasets of the paper's CV experiments (Figure 5).
CV_EXPERIMENT_DATASETS = ("australian", "splice", "a9a", "gisette", "satimage", "usps")


@dataclass
class CVVariantResult:
    """Per-ratio outcomes of one CV variant on one dataset.

    ``test_accuracy[ratio]`` / ``ndcg[ratio]`` hold one value per seed.
    """

    variant: str
    test_accuracy: Dict[float, List[float]] = field(default_factory=dict)
    ndcg: Dict[float, List[float]] = field(default_factory=dict)

    def mean_accuracy(self, ratio: float) -> float:
        """Seed-averaged accuracy of the recommended configuration."""
        return float(np.mean(self.test_accuracy[ratio]))

    def mean_ndcg(self, ratio: float) -> float:
        """Seed-averaged nDCG of the predicted ranking."""
        return float(np.mean(self.ndcg[ratio]))


def _parse_fold_variant(variant: str) -> Optional[Tuple[int, int]]:
    """``folds-g3s2`` -> ``(3, 2)``; ``None`` for other names."""
    if not variant.startswith("folds-g"):
        return None
    try:
        g_part, s_part = variant[len("folds-g") :].split("s")
        return int(g_part), int(s_part)
    except ValueError:
        raise ValueError(
            f"Malformed fold variant {variant!r}; expected 'folds-g<gen>s<spe>'"
        ) from None


def build_cv_evaluator(
    variant: str,
    dataset: Dataset,
    max_iter: int = 30,
    n_groups: int = 2,
    alpha: float = 0.1,
    beta_max: float = 10.0,
    min_subset: int = 30,
    random_state: Optional[int] = None,
) -> SubsetCVEvaluator:
    """Build the evaluator implementing one CV variant (see module table)."""
    task = "regression" if dataset.task == "regression" else "classification"
    factory = MLPModelFactory(task=task, max_iter=max_iter)
    mean_only = ScoreParams(use_variance=False)
    ucb = ScoreParams(alpha=alpha, beta_max=beta_max)
    common = dict(metric=dataset.metric, task=task, min_subset=min_subset)

    if variant == "random":
        return SubsetCVEvaluator(
            dataset.X_train, dataset.y_train, factory,
            sampling="random", folding="random", score_params=mean_only, **common,
        )
    if variant == "stratified":
        return SubsetCVEvaluator(
            dataset.X_train, dataset.y_train, factory,
            sampling="stratified", folding="stratified", score_params=mean_only, **common,
        )

    fold_allocation = _parse_fold_variant(variant)
    if variant in ("ours", "ours-mean", "grouped-mean") or fold_allocation is not None:
        if fold_allocation is not None:
            k_gen, k_spe = fold_allocation
        elif variant == "grouped-mean":
            k_gen, k_spe = 5, 0
        else:
            k_gen, k_spe = 3, 2
        # Special folds need at least k_spe groups.
        groups = generate_groups(
            dataset.X_train,
            dataset.y_train,
            n_groups=max(n_groups, k_spe, 1),
            task=task,
            random_state=random_state,
        )
        return SubsetCVEvaluator(
            dataset.X_train, dataset.y_train, factory,
            sampling="grouped", folding="grouped", grouping=groups,
            k_gen=k_gen, k_spe=k_spe,
            score_params=ucb if variant == "ours" else mean_only,
            **common,
        )
    raise ValueError(f"Unknown CV variant {variant!r}")


def run_cv_experiment(
    dataset: Dataset,
    variants: Sequence[str] = ("random", "stratified", "ours"),
    ratios: Sequence[float] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    seeds: Iterable[int] = range(3),
    configurations: Optional[Sequence[Dict[str, Any]]] = None,
    max_iter: int = 30,
    truth_max_iter: Optional[int] = None,
    **evaluator_overrides: Any,
) -> Dict[str, CVVariantResult]:
    """Run the shared CV protocol for several variants on one dataset.

    Ground-truth test scores (full-train fits of every configuration) are
    computed once per seed and shared across variants and ratios, exactly as
    the paper's "actual ranking".

    Returns
    -------
    dict
        ``variant -> CVVariantResult``.
    """
    if configurations is None:
        configurations = cv_experiment_space().grid()
    truth_max_iter = truth_max_iter or max_iter
    results = {variant: CVVariantResult(variant=variant) for variant in variants}

    for seed in seeds:
        # Shared ground truth for this seed.
        task = "regression" if dataset.task == "regression" else "classification"
        truth_factory = MLPModelFactory(task=task, max_iter=truth_max_iter)
        truth_evaluator = SubsetCVEvaluator(
            dataset.X_train, dataset.y_train, truth_factory,
            metric=dataset.metric, task=task,
        )
        study = CrossValidationStudy(truth_evaluator, configurations)
        truth = study.ground_truth(dataset.X_test, dataset.y_test, random_state=seed)

        for variant in variants:
            evaluator = build_cv_evaluator(
                variant, dataset, max_iter=max_iter, random_state=seed, **evaluator_overrides
            )
            variant_study = CrossValidationStudy(evaluator, configurations)
            for ratio in ratios:
                ranking = variant_study.run(subset_ratio=ratio, random_state=seed)
                record = results[variant]
                record.test_accuracy.setdefault(ratio, []).append(float(truth[ranking.recommended_index]))
                record.ndcg.setdefault(ratio, []).append(float(ranking.ndcg(truth)))
    return results
