"""Experiment runners regenerating every table and figure of the paper."""

from .crossval import (
    CV_EXPERIMENT_DATASETS,
    CVVariantResult,
    build_cv_evaluator,
    run_cv_experiment,
)
from .hpo import (
    TABLE4_METHODS,
    MethodRunStats,
    format_table4_rows,
    run_config_scaling,
    run_hpo_methods,
)
from .report import format_series, format_table, mean_std
from .reliability import format_win_rate_matrix, win_rate, win_rate_matrix
from .run_all import run_all
from .significance import PairedComparison, holm_correction, paired_t_test, wilcoxon_test
from .trajectory import AnytimeCurve, align_curves, anytime_curve, area_under_curve
from .spaces import (
    PAPER_HYPERPARAMETERS,
    cv_experiment_space,
    model_complexity_space,
    paper_search_space,
    search_space_table,
)

__all__ = [
    "AnytimeCurve",
    "CV_EXPERIMENT_DATASETS",
    "CVVariantResult",
    "align_curves",
    "anytime_curve",
    "area_under_curve",
    "MethodRunStats",
    "PAPER_HYPERPARAMETERS",
    "PairedComparison",
    "holm_correction",
    "paired_t_test",
    "wilcoxon_test",
    "TABLE4_METHODS",
    "build_cv_evaluator",
    "cv_experiment_space",
    "format_series",
    "format_table",
    "format_table4_rows",
    "format_win_rate_matrix",
    "win_rate",
    "win_rate_matrix",
    "mean_std",
    "model_complexity_space",
    "paper_search_space",
    "run_all",
    "run_config_scaling",
    "run_cv_experiment",
    "run_hpo_methods",
    "search_space_table",
]
