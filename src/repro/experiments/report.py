"""Plain-text rendering of experiment tables and figure series.

The benchmarks print the same row/series structure as the paper's tables
and figures; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "mean_std"]


def mean_std(values: Sequence[float], scale: float = 1.0, decimals: int = 2) -> str:
    """Render ``mean +/- std`` of a sample, e.g. ``96.87+-0.35``."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        return "-"
    mean = values.mean() * scale
    std = values.std() * scale
    return f"{mean:.{decimals}f}+-{std:.{decimals}f}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Fixed-width text table with a separator under the header."""
    headers = [str(h) for h in headers]
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
    title: str = "",
    decimals: int = 3,
) -> str:
    """Render figure data as a table: one x column plus one column per line."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in series:
            value = series[name][i]
            row.append("-" if value is None or (isinstance(value, float) and np.isnan(value)) else f"{value:.{decimals}f}")
        rows.append(row)
    return format_table(headers, rows, title=title)
