"""Hyperparameter-optimization experiment runners (Table IV, Figure 4).

``run_hpo_methods`` reproduces one Table IV row-group: every method is run
over several seeds on one dataset, reporting train score, test score and
search time as ``mean +/- std``.  ``run_config_scaling`` reproduces
Figure 4: SHA vs SHA+ as the configuration count grows, either by adding
hyperparameters (Table III order) or by deepening the model-size space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.enhanced import make_searcher
from ..core.evaluator import MLPModelFactory, make_scorer
from ..datasets import Dataset
from ..space import SearchSpace
from .report import format_table, mean_std
from .spaces import model_complexity_space, paper_search_space

__all__ = [
    "TABLE4_METHODS",
    "MethodRunStats",
    "run_hpo_methods",
    "run_config_scaling",
    "format_table4_rows",
]

#: Table IV's method columns, in paper order.
TABLE4_METHODS = ("random", "sha", "sha+", "hb", "hb+", "bohb", "bohb+")


@dataclass
class MethodRunStats:
    """Aggregated results of one method over several seeds."""

    method: str
    train_scores: List[float] = field(default_factory=list)
    test_scores: List[float] = field(default_factory=list)
    times: List[float] = field(default_factory=list)
    best_configs: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def mean_test(self) -> float:
        """Average test score across seeds."""
        return float(np.mean(self.test_scores)) if self.test_scores else float("nan")

    @property
    def std_test(self) -> float:
        """Standard deviation of the test score across seeds."""
        return float(np.std(self.test_scores)) if self.test_scores else float("nan")

    @property
    def mean_time(self) -> float:
        """Average search seconds across seeds."""
        return float(np.mean(self.times)) if self.times else float("nan")


def _default_searcher_kwargs(method: str, n_configs: int) -> Dict[str, Any]:
    """Budget settings scaled to the candidate-pool size."""
    key = method.lower()
    if key.startswith("sha"):
        return {"eta": 2.0, "min_budget_fraction": 1.0 / max(2, n_configs)}
    if key.startswith("hb") or key.startswith("bohb"):
        return {"eta": 3.0, "min_budget_fraction": 1.0 / 27.0}
    if key.startswith("asha"):
        return {"eta": 2.0, "min_budget_fraction": 1.0 / 8.0, "max_started": n_configs}
    return {}


def run_hpo_methods(
    dataset: Dataset,
    methods: Sequence[str] = TABLE4_METHODS,
    space: Optional[SearchSpace] = None,
    configurations: Optional[Sequence[Dict[str, Any]]] = None,
    seeds: Iterable[int] = range(5),
    max_iter: int = 30,
    n_random: int = 10,
    evaluator_kwargs: Optional[Dict[str, Any]] = None,
    searcher_kwargs: Optional[Dict[str, Dict[str, Any]]] = None,
    use_pool: bool = True,
) -> Dict[str, MethodRunStats]:
    """Run every method on one dataset over the given seeds.

    Parameters
    ----------
    dataset:
        A loaded :class:`~repro.datasets.Dataset`.
    methods:
        Method names accepted by :func:`repro.core.make_searcher`.
    space:
        Search space; defaults to the paper's 4-hyperparameter /
        162-configuration space.
    configurations:
        Candidate pool; defaults to the full grid of ``space``.  The
        ``random`` baseline ignores this and samples ``n_random``
        configurations, as in the paper.
    seeds:
        Random seeds (the paper repeats each experiment 5 times).
    max_iter:
        MLP epoch budget during search evaluations and the final refit.
    n_random:
        Pool size of the random-search baseline.
    evaluator_kwargs, searcher_kwargs:
        Per-evaluator / per-method (keyed by lowercased name) overrides.
    use_pool:
        When False, model-based searchers (BOHB, DEHB) sample/propose their
        own configurations from the space instead of drawing from a fixed
        pool; the random baseline still uses ``n_random`` samples.

    Returns
    -------
    dict
        ``method -> MethodRunStats``.
    """
    if space is None:
        space = paper_search_space(4)
    if configurations is None:
        configurations = space.grid()
    task = "regression" if dataset.task == "regression" else "classification"
    scorer = make_scorer(dataset.metric)
    searcher_kwargs = searcher_kwargs or {}
    results: Dict[str, MethodRunStats] = {}

    for method in methods:
        key = method.lower()
        stats = MethodRunStats(method=method)
        for seed in seeds:
            factory = MLPModelFactory(task=task, max_iter=max_iter)
            kwargs = {**_default_searcher_kwargs(key, len(configurations)), **searcher_kwargs.get(key, {})}
            searcher = make_searcher(
                key,
                space,
                dataset.X_train,
                dataset.y_train,
                metric=dataset.metric,
                task=task,
                model_factory=factory,
                random_state=seed,
                evaluator_kwargs=evaluator_kwargs,
                searcher_kwargs=kwargs,
            )
            if key == "random":
                rng = np.random.default_rng(seed)
                pool = [configurations[i] for i in rng.choice(len(configurations), size=min(n_random, len(configurations)), replace=False)]
                result = searcher.fit(configurations=pool)
            elif use_pool and not key.startswith(("bohb", "dehb")):
                result = searcher.fit(configurations=configurations)
            else:
                # Model-based searchers must propose their own
                # configurations (a fixed pool would bypass their samplers
                # and reduce them to HyperBand); they draw from the same
                # space the grid enumerates.
                result = searcher.fit()
            model = searcher.evaluator.fit_full(result.best_config, random_state=seed)
            stats.train_scores.append(float(scorer(model, dataset.X_train, dataset.y_train)))
            stats.test_scores.append(float(scorer(model, dataset.X_test, dataset.y_test)))
            stats.times.append(result.wall_time)
            stats.best_configs.append(result.best_config)
        results[method] = stats
    return results


def format_table4_rows(dataset_name: str, metric: str, results: Dict[str, MethodRunStats]) -> str:
    """Render one dataset's Table IV block (train, test, time rows)."""
    methods = list(results)
    metric_label = {"accuracy": "Acc.", "f1": "F1.", "r2": "R2"}.get(metric, metric)
    rows = [
        [f"train{metric_label} (%)"] + [mean_std(results[m].train_scores, scale=100.0) for m in methods],
        [f"test{metric_label} (%)"] + [mean_std(results[m].test_scores, scale=100.0) for m in methods],
        ["time (sec.)"] + [mean_std(results[m].times, decimals=2) for m in methods],
    ]
    return format_table([dataset_name, *methods], rows)


def run_config_scaling(
    dataset: Dataset,
    axis: str = "hyperparameters",
    values: Optional[Sequence[int]] = None,
    methods: Sequence[str] = ("sha", "sha+"),
    seeds: Iterable[int] = range(3),
    max_iter: int = 30,
    max_grid: int = 200,
) -> Dict[str, Dict[str, List[float]]]:
    """Figure 4: accuracy / time of SHA vs SHA+ as the space grows.

    Parameters
    ----------
    axis:
        ``"hyperparameters"`` grows the Table III prefix (1..8);
        ``"layers"`` deepens the model-size space of Figure 4's right half.
    values:
        Axis values; defaults to ``1..6`` HPs or ``1..3`` layers.
    max_grid:
        Cap on the enumerated grid per point (subsampled deterministically
        beyond this, keeping runtimes laptop-friendly).

    Returns
    -------
    dict
        ``method -> {"accuracy": [...], "time": [...], "n_configs": [...]}``
        aligned with ``values``.
    """
    if axis not in ("hyperparameters", "layers"):
        raise ValueError(f"axis must be 'hyperparameters' or 'layers', got {axis!r}")
    if values is None:
        values = list(range(1, 7)) if axis == "hyperparameters" else [1, 2, 3]
    output: Dict[str, Dict[str, List[float]]] = {
        m: {"accuracy": [], "time": [], "n_configs": []} for m in methods
    }
    for value in values:
        space = (
            paper_search_space(value)
            if axis == "hyperparameters"
            else model_complexity_space(value)
        )
        grid = space.grid()
        if len(grid) > max_grid:
            picker = np.random.default_rng(value)
            grid = [grid[i] for i in picker.choice(len(grid), size=max_grid, replace=False)]
        results = run_hpo_methods(
            dataset,
            methods=methods,
            space=space,
            configurations=grid,
            seeds=seeds,
            max_iter=max_iter,
        )
        for method in methods:
            output[method]["accuracy"].append(results[method].mean_test)
            output[method]["time"].append(results[method].mean_time)
            output[method]["n_configs"].append(float(len(grid)))
    return output
