"""Statistical comparison of HPO methods across seeds.

The paper reports mean ± std over 5 seeds; for claims like "SHA+ improves
on SHA" a paired test across seeds is the appropriate instrument.  Provides
a paired t-test and the Wilcoxon signed-rank test (both via scipy), plus a
small holm-correction helper for comparing one method against several
baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np
from scipy import stats

__all__ = ["PairedComparison", "paired_t_test", "wilcoxon_test", "holm_correction"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of one paired test.

    Attributes
    ----------
    statistic, p_value:
        The test statistic and two-sided p-value.
    mean_difference:
        Mean of ``candidate - baseline`` (positive = candidate better when
        scores are higher-is-better).
    n:
        Number of pairs.
    """

    statistic: float
    p_value: float
    mean_difference: float
    n: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha


def _validate(candidate, baseline):
    candidate = np.asarray(candidate, dtype=float)
    baseline = np.asarray(baseline, dtype=float)
    if candidate.shape != baseline.shape or candidate.ndim != 1:
        raise ValueError(
            f"candidate and baseline must be 1-D with equal length, got {candidate.shape} vs {baseline.shape}"
        )
    if candidate.shape[0] < 2:
        raise ValueError("paired tests need at least 2 pairs")
    return candidate, baseline


def paired_t_test(candidate: Sequence[float], baseline: Sequence[float]) -> PairedComparison:
    """Two-sided paired t-test on per-seed scores."""
    candidate, baseline = _validate(candidate, baseline)
    differences = candidate - baseline
    if np.allclose(differences, 0.0):
        return PairedComparison(statistic=0.0, p_value=1.0, mean_difference=0.0, n=len(candidate))
    if np.isclose(differences.std(), 0.0):
        # A perfectly constant non-zero difference degenerates the t
        # statistic (division by zero); report it as maximally significant.
        sign = float(np.sign(differences.mean()))
        return PairedComparison(
            statistic=sign * float("inf"),
            p_value=0.0,
            mean_difference=float(differences.mean()),
            n=len(candidate),
        )
    result = stats.ttest_rel(candidate, baseline)
    return PairedComparison(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        mean_difference=float(differences.mean()),
        n=len(candidate),
    )


def wilcoxon_test(candidate: Sequence[float], baseline: Sequence[float]) -> PairedComparison:
    """Two-sided Wilcoxon signed-rank test (non-parametric alternative)."""
    candidate, baseline = _validate(candidate, baseline)
    differences = candidate - baseline
    if np.allclose(differences, 0.0):
        return PairedComparison(statistic=0.0, p_value=1.0, mean_difference=0.0, n=len(candidate))
    result = stats.wilcoxon(candidate, baseline)
    return PairedComparison(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        mean_difference=float(differences.mean()),
        n=len(candidate),
    )


def holm_correction(p_values: Dict[str, float]) -> Dict[str, float]:
    """Holm step-down correction for multiple comparisons.

    Parameters
    ----------
    p_values:
        Raw p-values keyed by comparison name.

    Returns
    -------
    dict
        Adjusted p-values (clipped at 1, monotone in the Holm ordering).
    """
    if not p_values:
        return {}
    names = sorted(p_values, key=lambda name: p_values[name])
    m = len(names)
    adjusted: Dict[str, float] = {}
    running_max = 0.0
    for rank, name in enumerate(names):
        value = min(1.0, (m - rank) * p_values[name])
        running_max = max(running_max, value)
        adjusted[name] = running_max
    return adjusted
