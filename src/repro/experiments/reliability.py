"""Win-rate reliability analysis across seeds.

Complements mean ± std and the paired tests: for each pair of methods,
how often (over seeds) does one strictly beat the other?  The paper's
stability story predicts the "+" variants should rarely *lose* even when
mean gains are small.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .report import format_table

__all__ = ["win_rate", "win_rate_matrix", "format_win_rate_matrix"]


def win_rate(candidate: Sequence[float], baseline: Sequence[float], tie_epsilon: float = 1e-9) -> float:
    """Fraction of seeds where ``candidate`` strictly beats ``baseline``.

    Ties (within ``tie_epsilon``) count half, so two identical methods get
    a 0.5 win rate.
    """
    candidate = np.asarray(candidate, dtype=float)
    baseline = np.asarray(baseline, dtype=float)
    if candidate.shape != baseline.shape or candidate.ndim != 1 or candidate.size == 0:
        raise ValueError(
            f"candidate and baseline must be non-empty 1-D of equal length, got {candidate.shape} vs {baseline.shape}"
        )
    wins = (candidate > baseline + tie_epsilon).sum()
    ties = (np.abs(candidate - baseline) <= tie_epsilon).sum()
    return float((wins + 0.5 * ties) / candidate.size)


def win_rate_matrix(scores: Dict[str, Sequence[float]]) -> Dict[str, Dict[str, float]]:
    """Pairwise win rates ``matrix[row][column] = P(row beats column)``."""
    if not scores:
        raise ValueError("scores must be non-empty")
    lengths = {len(v) for v in scores.values()}
    if len(lengths) != 1:
        raise ValueError(f"All methods need the same seed count, got lengths {sorted(lengths)}")
    names = list(scores)
    matrix: Dict[str, Dict[str, float]] = {}
    for row in names:
        matrix[row] = {}
        for column in names:
            matrix[row][column] = 0.5 if row == column else win_rate(scores[row], scores[column])
    return matrix


def format_win_rate_matrix(matrix: Dict[str, Dict[str, float]], title: str = "") -> str:
    """Render the matrix as a text table (rows beat columns)."""
    names = list(matrix)
    rows: List[List[str]] = []
    for row in names:
        rows.append([row] + [f"{matrix[row][column]:.2f}" for column in names])
    return format_table(["beats ->", *names], rows, title=title)
