"""Regenerate every paper table and figure in one run.

Usage::

    python -m repro.experiments.run_all [--scale 0.3] [--seeds 3]
        [--configs 36] [--max-iter 12] [--out report.md]

Produces a markdown report with one section per paper artifact (Tables
II-V, Figures 1 and 3-7), using the same runners the ``benchmarks/`` suite
wraps.  ``EXPERIMENTS.md`` is written from this report's output.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import Counter
from typing import List

import numpy as np

from ..bandit import SuccessiveHalving
from ..core import MLPModelFactory, beta_curve, vanilla_evaluator
from ..datasets import dataset_info_table, load_dataset
from ..space import Categorical, SearchSpace
from .crossval import run_cv_experiment
from .hpo import TABLE4_METHODS, format_table4_rows, run_config_scaling, run_hpo_methods
from .report import format_series, format_table, mean_std
from .spaces import cv_experiment_space, paper_search_space, search_space_table

__all__ = ["run_all", "main"]


def _section(title: str) -> List[str]:
    return ["", f"## {title}", ""]


def run_all(
    scale: float = 0.3,
    n_seeds: int = 3,
    n_configs: int = 36,
    max_iter: int = 12,
    table4_datasets=("australian", "splice", "machine"),
    cv_datasets=("australian", "splice", "satimage"),
    stream=sys.stdout,
) -> str:
    """Run every experiment and return the markdown report."""
    seeds = range(n_seeds)
    started = time.time()
    lines: List[str] = [
        "# Reproduction report",
        "",
        f"settings: scale={scale}, seeds={n_seeds}, configs={n_configs}, max_iter={max_iter}",
    ]

    def log(text: str) -> None:
        print(text, file=stream, flush=True)

    # Table II / III ---------------------------------------------------------
    log("[1/8] Tables II-III ...")
    lines += _section("Table II — dataset analogues")
    lines += ["```", dataset_info_table(scale=scale), "```"]
    lines += _section("Table III — search space")
    lines += ["```", search_space_table(), "```"]

    # Figure 1 ----------------------------------------------------------------
    log("[2/8] Figure 1 (SHA trace) ...")
    dataset = load_dataset("australian", scale=scale, random_state=0)
    trace_space = SearchSpace([
        Categorical("hidden_layer_sizes", [(30,), (30, 30), (40,), (40, 40), (50,), (50, 50), (20,), (20, 20)]),
    ])
    factory = MLPModelFactory(task="classification", max_iter=max_iter, solver="lbfgs")
    evaluator = vanilla_evaluator(dataset.X_train, dataset.y_train, factory, metric=dataset.metric)
    trace = SuccessiveHalving(trace_space, evaluator, random_state=0, eta=2.0).fit(
        configurations=trace_space.grid()
    )
    rounds = Counter(round(t.budget_fraction, 6) for t in trace.trials)
    lines += _section("Figure 1 — SHA trace (8 configs, eta=2)")
    lines += ["```"] + [
        f"round {i}: {count} configs at budget {budget:.3f}"
        for i, (budget, count) in enumerate(sorted(rounds.items()))
    ] + ["```"]

    # Figure 3 ----------------------------------------------------------------
    log("[3/8] Figure 3 (beta curve) ...")
    gammas, betas = beta_curve(beta_max=10.0, n_points=11)
    lines += _section("Figure 3 — beta(gamma), beta_max=10")
    lines += ["```", format_series("gamma(%)", [f"{g:.0f}" for g in gammas], {"beta": betas.tolist()}), "```"]

    # Table IV ----------------------------------------------------------------
    log("[4/8] Table IV (HPO comparison) ...")
    grid = paper_search_space(4).grid()
    if n_configs < len(grid):
        rng = np.random.default_rng(0)
        grid = [grid[i] for i in rng.choice(len(grid), size=n_configs, replace=False)]
    lines += _section(f"Table IV — HPO methods ({len(grid)} configurations)")
    for name in table4_datasets:
        log(f"      - {name}")
        ds = load_dataset(name, scale=scale, random_state=0)
        results = run_hpo_methods(
            ds, methods=TABLE4_METHODS, configurations=grid, seeds=seeds, max_iter=max_iter,
            searcher_kwargs={k: {"min_budget_fraction": 1.0 / 9.0} for k in ("hb", "hb+", "bohb", "bohb+")},
        )
        lines += ["```", format_table4_rows(name, ds.metric, results), "```"]

    # Figure 4 ----------------------------------------------------------------
    log("[5/8] Figure 4 (config scaling) ...")
    ds = load_dataset("australian", scale=scale, random_state=0)
    scaling = run_config_scaling(
        ds, axis="hyperparameters", values=[1, 2, 3, 4], seeds=seeds,
        max_iter=max_iter, max_grid=64,
    )
    lines += _section("Figure 4 — SHA vs SHA+ vs number of hyperparameters (australian)")
    lines += ["```", format_series(
        "#HPs", [1, 2, 3, 4],
        {
            "SHA acc": scaling["sha"]["accuracy"],
            "SHA+ acc": scaling["sha+"]["accuracy"],
            "SHA time": scaling["sha"]["time"],
            "SHA+ time": scaling["sha+"]["time"],
        },
    ), "```"]

    # Figure 5 ----------------------------------------------------------------
    log("[6/8] Figure 5 (CV methods) ...")
    ratios = (0.1, 0.2, 0.4, 1.0)
    configurations = cv_experiment_space().grid()
    lines += _section("Figure 5 — CV methods vs subset size")
    for name in cv_datasets:
        log(f"      - {name}")
        ds = load_dataset(name, scale=scale, random_state=0)
        cv = run_cv_experiment(
            ds, variants=("random", "stratified", "ours"), ratios=ratios,
            seeds=seeds, configurations=configurations, max_iter=max_iter,
        )
        lines += [f"### {name}", "```", format_series(
            "ratio", ratios,
            {
                "random acc": [cv["random"].mean_accuracy(r) for r in ratios],
                "strat acc": [cv["stratified"].mean_accuracy(r) for r in ratios],
                "ours acc": [cv["ours"].mean_accuracy(r) for r in ratios],
                "random nDCG": [cv["random"].mean_ndcg(r) for r in ratios],
                "strat nDCG": [cv["stratified"].mean_ndcg(r) for r in ratios],
                "ours nDCG": [cv["ours"].mean_ndcg(r) for r in ratios],
            },
        ), "```"]

    # Table V ------------------------------------------------------------------
    log("[7/8] Table V (grouping ablation) + Figures 6-7 ...")
    lines += _section("Table V — grouping-only ablation (10% / 100%)")
    for name in cv_datasets:
        ds = load_dataset(name, scale=scale, random_state=0)
        cv = run_cv_experiment(
            ds, variants=("stratified", "grouped-mean"), ratios=(0.1, 1.0),
            seeds=seeds, configurations=configurations, max_iter=max_iter,
        )
        rows = []
        for ratio in (0.1, 1.0):
            for variant, label in (("stratified", "vanilla"), ("grouped-mean", "ours")):
                rows.append([
                    f"{ratio:.0%}", label,
                    mean_std(cv[variant].test_accuracy[ratio], scale=100.0),
                    f"{cv[variant].mean_ndcg(ratio):.3f}",
                ])
        lines += [f"### {name}", "```", format_table(["ratio", "method", "testAcc (%)", "nDCG"], rows), "```"]

    # Figures 6 & 7 --------------------------------------------------------------
    ds = load_dataset("splice", scale=scale, random_state=0)
    allocations = ["folds-g5s0", "folds-g4s1", "folds-g3s2", "folds-g2s3", "folds-g1s4", "folds-g0s5"]
    cv6 = run_cv_experiment(
        ds, variants=allocations, ratios=(0.3,), seeds=seeds,
        configurations=configurations, max_iter=max_iter, n_groups=5,
    )
    lines += _section("Figure 6 — fold allocation (splice, ratio 30%)")
    lines += ["```", format_series(
        "(gen,spe)", [a.replace("folds-", "") for a in allocations],
        {
            "testAcc": [cv6[a].mean_accuracy(0.3) for a in allocations],
            "nDCG": [cv6[a].mean_ndcg(0.3) for a in allocations],
        },
    ), "```"]

    cv7 = run_cv_experiment(
        ds, variants=("ours-mean", "ours"), ratios=ratios, seeds=seeds,
        configurations=configurations, max_iter=max_iter,
    )
    lines += _section("Figure 7 — metric ablation (splice)")
    lines += ["```", format_series(
        "ratio", ratios,
        {
            "mean acc": [cv7["ours-mean"].mean_accuracy(r) for r in ratios],
            "UCB acc": [cv7["ours"].mean_accuracy(r) for r in ratios],
            "mean nDCG": [cv7["ours-mean"].mean_ndcg(r) for r in ratios],
            "UCB nDCG": [cv7["ours"].mean_ndcg(r) for r in ratios],
        },
    ), "```"]

    log("[8/8] done.")
    lines += ["", f"total runtime: {time.time() - started:.0f}s", ""]
    return "\n".join(lines)


def main(argv=None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--configs", type=int, default=36)
    parser.add_argument("--max-iter", type=int, default=12)
    parser.add_argument("--out", default=None, help="write the markdown report here")
    args = parser.parse_args(argv)
    report = run_all(
        scale=args.scale, n_seeds=args.seeds, n_configs=args.configs, max_iter=args.max_iter
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"report written to {args.out}")
    else:
        print(report)


if __name__ == "__main__":
    main()
