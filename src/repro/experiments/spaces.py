"""The paper's hyperparameter search spaces (Table III).

Eight hyperparameters of the scikit-learn-style MLP, added in table order
for the "number of hyperparameters" sweep of Figure 4.  The main Table IV
comparison uses the first four (6 x 3 x 3 x 3 = 162 configurations); the
cross-validation experiments use the first two (6 x 3 = 18 configurations).
"""

from __future__ import annotations

from typing import List, Sequence

from ..space import Categorical, SearchSpace

__all__ = [
    "PAPER_HYPERPARAMETERS",
    "paper_search_space",
    "cv_experiment_space",
    "model_complexity_space",
    "search_space_table",
]

#: Table III rows, in order.
PAPER_HYPERPARAMETERS: List[Categorical] = [
    Categorical(
        "hidden_layer_sizes",
        [(30,), (30, 30), (40,), (40, 40), (50,), (50, 50)],
    ),
    Categorical("activation", ["logistic", "tanh", "relu"]),
    Categorical("solver", ["lbfgs", "sgd", "adam"]),
    Categorical("learning_rate_init", [0.1, 0.05, 0.01]),
    Categorical("batch_size", [32, 64, 128]),
    Categorical("learning_rate", ["constant", "invscaling", "adaptive"]),
    Categorical("momentum", [0.7, 0.8, 0.9]),
    Categorical("early_stopping", [True, False]),
]


def paper_search_space(n_hyperparameters: int = 8) -> SearchSpace:
    """The first ``n_hyperparameters`` Table III rows as a search space.

    ``n_hyperparameters=4`` gives the 162-configuration space of the main
    experiment; 2 gives the 18-configuration cross-validation space.
    """
    if not 1 <= n_hyperparameters <= len(PAPER_HYPERPARAMETERS):
        raise ValueError(
            f"n_hyperparameters must be in [1, {len(PAPER_HYPERPARAMETERS)}], got {n_hyperparameters}"
        )
    return SearchSpace(PAPER_HYPERPARAMETERS[:n_hyperparameters])


def cv_experiment_space() -> SearchSpace:
    """Section IV-C's 18-configuration space (hidden sizes x activation)."""
    return paper_search_space(2)


def model_complexity_space(n_layers: int, widths: Sequence[int] = (10, 20, 30, 40, 50)) -> SearchSpace:
    """Figure 4's model-size sweep: all width tuples up to ``n_layers`` deep.

    With the paper's widths this yields ``5 + 25 + ... + 5**n_layers``
    hidden-layer choices, crossed with the activation choices.
    """
    if n_layers < 1:
        raise ValueError(f"n_layers must be >= 1, got {n_layers}")
    sizes: List[tuple] = []
    frontier: List[tuple] = [()]
    for _ in range(n_layers):
        frontier = [prefix + (w,) for prefix in frontier for w in widths]
        sizes.extend(frontier)
    return SearchSpace(
        [
            Categorical("hidden_layer_sizes", sizes),
            Categorical("activation", ["logistic", "tanh", "relu"]),
        ]
    )


def search_space_table() -> str:
    """Render Table III (name and range of every hyperparameter)."""
    width = max(len(p.name) for p in PAPER_HYPERPARAMETERS) + 2
    lines = [f"{'name':<{width}}range", "-" * (width + 50)]
    for parameter in PAPER_HYPERPARAMETERS:
        lines.append(f"{parameter.name:<{width}}{parameter.choices}")
    return "\n".join(lines)
