"""Anytime-performance analysis: incumbent score versus cumulative cost.

HPO methods are often compared not just by their final pick but by how
quickly they reach good configurations.  From a
:class:`~repro.bandit.SearchResult`'s trial sequence this module builds the
incumbent trajectory over cumulative evaluation cost, aligns several
methods on a common cost grid, and renders them as a printable series —
used by the anytime extension bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..bandit.base import SearchResult

__all__ = ["AnytimeCurve", "anytime_curve", "align_curves", "area_under_curve"]


@dataclass
class AnytimeCurve:
    """Step function: best score seen after spending each cost amount.

    Attributes
    ----------
    costs:
        Cumulative evaluation cost after each trial (strictly increasing).
    scores:
        Incumbent (best-so-far) evaluation score at those costs.
    """

    costs: np.ndarray
    scores: np.ndarray

    def value_at(self, cost: float) -> float:
        """Incumbent score after spending ``cost`` (NaN before the first)."""
        index = np.searchsorted(self.costs, cost, side="right") - 1
        if index < 0:
            return float("nan")
        return float(self.scores[index])

    @property
    def total_cost(self) -> float:
        """Cost at which the search finished."""
        return float(self.costs[-1]) if len(self.costs) else 0.0


def anytime_curve(result: SearchResult) -> AnytimeCurve:
    """Build the incumbent-vs-cost curve from a search result's trials."""
    if not result.trials:
        raise ValueError("SearchResult has no trials")
    costs = np.cumsum([max(t.result.cost, 0.0) for t in result.trials])
    scores = np.maximum.accumulate([t.result.score for t in result.trials])
    return AnytimeCurve(costs=np.asarray(costs, dtype=float), scores=np.asarray(scores, dtype=float))


def align_curves(
    curves: Dict[str, AnytimeCurve],
    n_points: int = 20,
) -> Tuple[np.ndarray, Dict[str, List[float]]]:
    """Sample every curve on a shared cost grid.

    The grid spans from the earliest first-trial cost to the largest total
    cost across methods; curves that finished earlier hold their final
    value (the standard anytime-plot convention).

    Returns
    -------
    tuple
        ``(grid, {name: values})``.
    """
    if not curves:
        raise ValueError("curves must be non-empty")
    start = min(curve.costs[0] for curve in curves.values())
    end = max(curve.total_cost for curve in curves.values())
    grid = np.linspace(start, end, n_points)
    aligned = {}
    for name, curve in curves.items():
        values = []
        for cost in grid:
            if cost >= curve.total_cost:
                values.append(float(curve.scores[-1]))
            else:
                values.append(curve.value_at(cost))
        aligned[name] = values
    return grid, aligned


def area_under_curve(curve: AnytimeCurve, up_to: float) -> float:
    """Normalised area under the incumbent curve over ``[0, up_to]``.

    Higher is better (good configurations found early).  The pre-first-trial
    region contributes zero.
    """
    if up_to <= 0:
        raise ValueError(f"up_to must be positive, got {up_to}")
    # Integrate the step function.
    total = 0.0
    previous_cost = 0.0
    previous_score = 0.0
    for cost, score in zip(curve.costs, curve.scores):
        if cost >= up_to:
            break
        total += previous_score * (min(cost, up_to) - previous_cost)
        previous_cost = cost
        previous_score = score
    total += previous_score * (up_to - previous_cost)
    return total / up_to
