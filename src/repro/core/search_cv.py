"""Estimator-style front end: ``EnhancedSearchCV``.

A scikit-learn-flavoured wrapper around :func:`repro.core.optimize`: build
it with a space and method, call ``fit(X, y)``, then use it like a fitted
model (``predict`` / ``score``) or inspect ``best_config_`` and
``search_result_``.  This is the adoption-friendly surface; the functional
API underneath stays the source of truth.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..learners.base import BaseEstimator
from ..space import SearchSpace
from .enhanced import METHODS, optimize
from .evaluator import MLPModelFactory, make_scorer

__all__ = ["EnhancedSearchCV"]


class EnhancedSearchCV(BaseEstimator):
    """Hyperparameter search with the paper's enhanced evaluation.

    Parameters
    ----------
    space:
        The hyperparameter search space.
    method:
        Any registered method name (``"sha+"``, ``"hb"``, ``"bohb+"``, ...).
    metric:
        ``"accuracy"``, ``"f1"`` or ``"r2"``.
    task:
        ``"classification"`` or ``"regression"``.
    model_factory:
        Callable ``(config, random_state) -> estimator``; defaults to an
        MLP factory with ``max_iter``.
    max_iter:
        Epoch budget of the default MLP factory.
    n_configurations:
        Candidate count for infinite spaces / sampling methods; finite
        spaces default to their full grid.
    random_state:
        Seed for the whole search.

    Examples
    --------
    >>> from repro.core.search_cv import EnhancedSearchCV
    >>> from repro.experiments import paper_search_space
    >>> from repro.datasets import load_dataset
    >>> ds = load_dataset("australian", scale=0.3)
    >>> search = EnhancedSearchCV(paper_search_space(2), method="sha+",
    ...                           max_iter=5, random_state=0)
    >>> _ = search.fit(ds.X_train, ds.y_train)
    >>> sorted(search.best_config_) == ["activation", "hidden_layer_sizes"]
    True
    """

    def __init__(
        self,
        space: SearchSpace,
        method: str = "sha+",
        metric: str = "accuracy",
        task: str = "classification",
        model_factory=None,
        max_iter: int = 30,
        n_configurations: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        self.space = space
        self.method = method
        self.metric = metric
        self.task = task
        self.model_factory = model_factory
        self.max_iter = max_iter
        self.n_configurations = n_configurations
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "EnhancedSearchCV":
        """Run the search on ``(X, y)`` and refit the winner."""
        if self.method.lower() not in METHODS:
            raise ValueError(f"Unknown method {self.method!r}; available: {sorted(METHODS)}")
        factory = self.model_factory or MLPModelFactory(task=self.task, max_iter=self.max_iter)
        configurations: Optional[Sequence[Dict[str, Any]]] = None
        model_based = self.method.lower().startswith(("bohb", "dehb", "tpe", "smac"))
        if self.space.is_finite and self.n_configurations is None and not model_based:
            configurations = self.space.grid()
        outcome = optimize(
            X,
            y,
            self.space,
            method=self.method,
            metric=self.metric,
            task=self.task,
            configurations=configurations,
            n_configurations=self.n_configurations,
            model_factory=factory,
            random_state=self.random_state,
        )
        self.best_config_ = outcome.best_config
        self.best_estimator_ = outcome.model
        self.search_result_ = outcome.result
        self.train_score_ = outcome.train_score
        return self

    def _check_fitted(self) -> None:
        if not hasattr(self, "best_estimator_"):
            raise RuntimeError("EnhancedSearchCV must be fitted before use")

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict with the refit best model."""
        self._check_fitted()
        return self.best_estimator_.predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Score the refit best model with the configured metric."""
        self._check_fitted()
        return float(make_scorer(self.metric)(self.best_estimator_, X, y))

    @property
    def n_trials_(self) -> int:
        """Number of evaluations the search performed."""
        self._check_fitted()
        return self.search_result_.n_trials
