"""Instance grouping from features and labels (paper Section III-A).

Before the HPO loop starts, the training set is divided into ``v`` groups
that subsequent subset sampling and fold construction draw from:

1. features are clustered with iterated k-means (small clusters dissolved
   and re-clustered, rule controlled by ``r_group``) giving ``c_i^x``;
2. labels give a category ``c_i^y`` — used directly for classification
   (with rare classes merged), quantile-binned for regression;
3. Operation 1 merges the two: each cluster first claims the instances of
   its top-k classes, then every remaining instance joins the group of the
   cluster holding the largest share of its class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster import balanced_kmeans_labels
from ..cluster.meanshift import meanshift_labels_consolidated
from ..guard.events import GuardLog
from ..learners.base import check_array

__all__ = ["InstanceGrouping", "label_categories", "generate_groups"]


@dataclass
class InstanceGrouping:
    """Result of group construction.

    Attributes
    ----------
    group_labels:
        Group index in ``0..n_groups-1`` for every training instance.
    feature_clusters:
        The k-means cluster ``c^x`` of every instance.
    label_categories:
        The label category ``c^y`` of every instance.
    n_groups:
        Number of groups ``v``.
    """

    group_labels: np.ndarray
    feature_clusters: np.ndarray
    label_categories: np.ndarray
    n_groups: int

    def indices_of(self, group: int) -> np.ndarray:
        """Indices of all instances in ``group``."""
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group must be in [0, {self.n_groups}), got {group}")
        return np.flatnonzero(self.group_labels == group)

    @property
    def group_sizes(self) -> np.ndarray:
        """Instance count per group."""
        return np.bincount(self.group_labels, minlength=self.n_groups)

    def __len__(self) -> int:
        return len(self.group_labels)


def label_categories(
    y: np.ndarray,
    task: str = "classification",
    n_bins: int = 4,
    rare_fraction: float = 0.10,
) -> np.ndarray:
    """Label category ``c^y`` per instance.

    Classification labels are used directly, except that classes holding
    fewer than ``rare_fraction * n / u`` instances (the paper's 10% of the
    per-class average) are merged into a single "rare" category.  Regression
    targets are quantile-binned into ``n_bins`` magnitude categories.

    Returns
    -------
    numpy.ndarray
        Integer categories re-coded to ``0..n_categories-1``.
    """
    y = np.asarray(y)
    if y.ndim != 1:
        y = y.ravel()
    if len(y) == 0:
        raise ValueError("y must be non-empty")

    if task == "regression":
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        y = y.astype(float)
        quantiles = np.quantile(y, np.linspace(0, 1, n_bins + 1)[1:-1])
        return np.searchsorted(quantiles, y, side="right").astype(int)

    classes, inverse, counts = np.unique(y, return_inverse=True, return_counts=True)
    n_classes = len(classes)
    threshold = rare_fraction * len(y) / n_classes
    rare = counts < threshold
    if rare.sum() <= 1:
        # Zero or one rare class: nothing to merge, keep codes as-is.
        return inverse.astype(int)
    mapping = np.empty(n_classes, dtype=int)
    next_code = 0
    for cls_index in range(n_classes):
        if not rare[cls_index]:
            mapping[cls_index] = next_code
            next_code += 1
    mapping[rare] = next_code  # all rare classes share one merged category
    return mapping[inverse]


def generate_groups(
    X: np.ndarray,
    y: np.ndarray,
    n_groups: int = 3,
    task: str = "classification",
    r_group: float = 0.8,
    top_k: Optional[int] = None,
    n_label_bins: int = 4,
    clusterer: str = "kmeans",
    random_state: Optional[int] = None,
    guard: Optional[GuardLog] = None,
) -> InstanceGrouping:
    """Construct instance groups (Operation 1 / ``GenGroups``).

    Parameters
    ----------
    X, y:
        Training features and targets.
    n_groups:
        The number of groups ``v`` (the paper recommends at most 5 so the
        total fold count ``k_gen + k_spe`` stays at the usual 5).
    task:
        ``"classification"`` or ``"regression"`` (regression labels are
        binned into magnitude categories).
    r_group:
        Minimum-cluster-size ratio of the iterated k-means (paper: 0.8).
    top_k:
        Classes claimed per cluster in the first allocation pass; defaults
        to ``ceil(n_categories / n_groups)`` so the passes roughly cover all
        categories.
    n_label_bins:
        Category count for regression label binning.
    clusterer:
        Feature-clustering algorithm: ``"kmeans"`` (the paper's default,
        with the balanced re-clustering rule) or ``"meanshift"``
        (Section III-A lists it as an alternative; its modes are
        consolidated to ``n_groups`` clusters).
    random_state:
        Seed for clustering.
    guard:
        Optional :class:`~repro.guard.events.GuardLog`.  With a guard the
        degenerate case ``v > n_samples`` shrinks ``v`` to the sample
        count (recorded as ``grouping.n_groups_shrunk``) instead of
        raising, and empty-group refills / re-clustering fallbacks are
        recorded too.

    Returns
    -------
    InstanceGrouping
        Group labels for every instance, plus the intermediate cluster and
        category codes.
    """
    X = check_array(X)
    y = np.asarray(y)
    if len(y) != X.shape[0]:
        raise ValueError(f"X and y have inconsistent lengths: {X.shape[0]} != {len(y)}")
    if n_groups < 1:
        raise ValueError(f"n_groups must be >= 1, got {n_groups}")
    if X.shape[0] < n_groups:
        if guard is None:
            raise ValueError(f"Need at least n_groups={n_groups} instances, got {X.shape[0]}")
        guard.record(
            "grouping.n_groups_shrunk",
            f"requested v={n_groups} exceeds {X.shape[0]} samples; shrunk to fit",
            requested=n_groups,
            effective=X.shape[0],
        )
        n_groups = X.shape[0]

    if clusterer == "kmeans":
        clusters = balanced_kmeans_labels(
            X, n_clusters=n_groups, r_group=r_group, random_state=random_state, guard=guard
        )
    elif clusterer == "meanshift":
        clusters = meanshift_labels_consolidated(X, n_clusters=n_groups, random_state=random_state)
    else:
        raise ValueError(f"clusterer must be 'kmeans' or 'meanshift', got {clusterer!r}")
    categories = label_categories(
        y, task="regression" if task == "regression" else "classification", n_bins=n_label_bins
    )

    n = X.shape[0]
    n_categories = int(categories.max()) + 1
    if top_k is None:
        top_k = max(1, int(np.ceil(n_categories / n_groups)))

    # counts[i, j]: instances with category i in cluster j (Operation 1, L2).
    counts = np.zeros((n_categories, n_groups), dtype=int)
    np.add.at(counts, (categories, clusters), 1)

    group_labels = np.full(n, -1, dtype=int)

    # Pass 1: each cluster claims its top-k categories (Operation 1, L6-9).
    for cluster_index in range(n_groups):
        column = counts[:, cluster_index]
        claimed = np.argsort(-column, kind="stable")[:top_k]
        claimed = [c for c in claimed if column[c] > 0]
        if not claimed:
            continue
        member = (clusters == cluster_index) & np.isin(categories, claimed) & (group_labels == -1)
        group_labels[member] = cluster_index

    # Pass 2: remaining instances follow their category's dominant cluster
    # (Operation 1, L12-16).
    dominant_cluster = counts.argmax(axis=1)
    unassigned = group_labels == -1
    group_labels[unassigned] = dominant_cluster[categories[unassigned]]

    # Guard: keep every group non-empty so downstream stratified sampling
    # never sees a zero-width stratum.  Move the nearest-cluster instances
    # of the largest group into any empty one.
    sizes = np.bincount(group_labels, minlength=n_groups)
    for empty in np.flatnonzero(sizes == 0):
        donor = int(sizes.argmax())
        donors = np.flatnonzero((group_labels == donor) & (clusters == empty))
        if len(donors) == 0:
            donors = np.flatnonzero(group_labels == donor)
        take = donors[: max(1, len(donors) // 2)]
        group_labels[take] = empty
        sizes = np.bincount(group_labels, minlength=n_groups)
        if guard is not None:
            guard.record(
                "grouping.empty_group_refilled",
                f"group {int(empty)} was empty after Operation 1; "
                f"moved {len(take)} instance(s) from group {donor}",
                group=int(empty),
                donor=donor,
                n_moved=int(len(take)),
            )

    return InstanceGrouping(
        group_labels=group_labels,
        feature_clusters=clusters,
        label_categories=categories,
        n_groups=n_groups,
    )
