"""Standalone cross-validation application (paper Section IV-C).

Beyond full HPO runs, the paper applies its fold construction and metric
directly to k-fold cross-validation: every candidate configuration is
cross-validated on a subset of a given ratio, one configuration is
recommended, and the quality of the *ranking* (against ground-truth test
accuracies) is measured with nDCG.  :class:`CrossValidationStudy` packages
that protocol; the Figure 5-7 and Table V experiments are parameterisations
of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..bandit.base import EvaluationResult
from ..metrics import ndcg_score
from .evaluator import SubsetCVEvaluator

__all__ = ["ConfigurationRanking", "CrossValidationStudy"]


@dataclass
class ConfigurationRanking:
    """Scores and recommendation for one CV pass over the candidates.

    Attributes
    ----------
    results:
        Per-configuration :class:`~repro.bandit.EvaluationResult`.
    scores:
        The ranking scores (``result.score``) in candidate order.
    recommended_index:
        Argmax of ``scores``.
    """

    results: List[EvaluationResult] = field(default_factory=list)

    @property
    def scores(self) -> np.ndarray:
        """Ranking score per candidate."""
        return np.array([r.score for r in self.results])

    @property
    def means(self) -> np.ndarray:
        """Mean fold score per candidate."""
        return np.array([r.mean for r in self.results])

    @property
    def recommended_index(self) -> int:
        """Index of the recommended (top-scoring) configuration."""
        return int(self.scores.argmax())

    def ndcg(self, true_relevance: Sequence[float]) -> float:
        """nDCG of this ranking against ground-truth qualities."""
        return ndcg_score(true_relevance, self.scores)


class CrossValidationStudy:
    """Rank a fixed set of configurations with a CV strategy.

    Parameters
    ----------
    evaluator:
        Any :class:`~repro.core.evaluator.SubsetCVEvaluator`; its sampling /
        folding / metric axes define the CV method being studied.
    configurations:
        The candidate configurations (the paper uses an 18-config grid).
    """

    def __init__(
        self,
        evaluator: SubsetCVEvaluator,
        configurations: Sequence[Dict[str, Any]],
    ) -> None:
        if not configurations:
            raise ValueError("configurations must be non-empty")
        self.evaluator = evaluator
        self.configurations = [dict(c) for c in configurations]

    def run(
        self,
        subset_ratio: float = 1.0,
        random_state: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> ConfigurationRanking:
        """Cross-validate every configuration on a ``subset_ratio`` subset."""
        if rng is None:
            rng = np.random.default_rng(random_state)
        ranking = ConfigurationRanking()
        for config in self.configurations:
            ranking.results.append(self.evaluator.evaluate(config, subset_ratio, rng))
        return ranking

    def ground_truth(
        self,
        X_test: np.ndarray,
        y_test: np.ndarray,
        random_state: Optional[int] = None,
    ) -> np.ndarray:
        """Test score of each configuration trained on the full training set.

        This is the "actual ranking" the paper compares predicted rankings
        against; it is expensive (one full fit per configuration) and
        shared across all CV methods in an experiment.
        """
        truths = []
        for config in self.configurations:
            model = self.evaluator.fit_full(config, random_state=random_state)
            truths.append(float(self.evaluator.scorer(model, X_test, y_test)))
        return np.array(truths)
