"""Evaluation metric with variance and sampling size (paper Section III-C).

Implements Equations 1-3:

- the UCB-style combination ``s = mu + alpha * sigma`` (Eq. 1);
- the subset-size weight ``beta(gamma)`` (Eq. 2), a shifted/clamped
  ``atanh`` of the sampling percentage ``gamma = |b_t| / |B| * 100`` that
  decays from ``beta_max`` (tiny subsets: variance matters most) through
  ``beta_max / 2`` at 50% to 0 at full budget (Figure 3);
- the final score ``s = mu + alpha * beta(gamma) * sigma`` (Eq. 3).

Note on Eq. 2: the printed formula feeds a percentage straight into
``atanh``; the thresholds ``gamma_min/max = 50 (1 -/+ tanh(beta_max / 4))``
and Figure 3 pin down the intended normalisation, which divides the clamped
percentage by 100 (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..guard.events import GuardLog

__all__ = [
    "gamma_bounds",
    "beta_weight",
    "beta_curve",
    "ucb_score",
    "ScoreParams",
    "scores_from_folds",
]


def gamma_bounds(beta_max: float = 10.0) -> tuple:
    """The clamp thresholds ``(gamma_min, gamma_max)`` of Equation 2.

    Both are percentages in ``(0, 100)``; they are where the raw ``atanh``
    term would exceed ``+/- beta_max / 2``.
    """
    if beta_max <= 0:
        raise ValueError(f"beta_max must be positive, got {beta_max}")
    gamma_min = 50.0 * (1.0 - np.tanh(beta_max / 4.0))
    gamma_max = 50.0 * (1.0 - np.tanh(-beta_max / 4.0))
    return float(gamma_min), float(gamma_max)


def beta_weight(gamma, beta_max: float = 10.0):
    """Subset-size weight ``beta(gamma)`` of Equation 2.

    Parameters
    ----------
    gamma:
        Sampling percentage ``|b_t| / |B| * 100``; scalar or array.  Finite
        values outside ``[0, 100]`` are clamped (the curve is flat beyond
        ``gamma_min``/``gamma_max``); non-finite values raise.
    beta_max:
        Maximum weight, recommended ``1 / alpha`` so the combined factor
        ``alpha * beta`` is normalised to ``[0, 1]``.

    Returns
    -------
    float or numpy.ndarray
        ``beta`` in ``[0, beta_max]``: ``beta_max`` at the small-subset
        clamp, ``beta_max / 2`` at 50%, 0 at the large-subset clamp.
    """
    gamma = np.asarray(gamma, dtype=float)
    if not np.isfinite(gamma).all():
        raise ValueError("gamma must be finite; sanitize non-finite percentages upstream")
    # Out-of-range percentages (floating-point excursions past 0/100, or a
    # subset floor pushing |b_t| past |B|) clamp to the valid band instead
    # of aborting the whole evaluation: Equation 2 is constant outside
    # [gamma_min, gamma_max] anyway, so clamping is exact, never lossy.
    gamma_min, gamma_max = gamma_bounds(beta_max)
    clamped = np.clip(gamma, gamma_min, gamma_max)
    value = 2.0 * np.arctanh(1.0 - 2.0 * clamped / 100.0) + beta_max / 2.0
    if value.ndim == 0:
        return float(value)
    return value


def beta_curve(beta_max: float = 10.0, n_points: int = 101) -> tuple:
    """The Figure 3 line: ``(gammas, betas)`` over ``[0, 100]``."""
    gammas = np.linspace(0.0, 100.0, n_points)
    return gammas, beta_weight(gammas, beta_max=beta_max)


@dataclass(frozen=True)
class ScoreParams:
    """Weights of the final evaluation metric (Equation 3).

    Attributes
    ----------
    alpha:
        Variance weight of Equation 1 (paper default 0.1).
    beta_max:
        Cap of the subset-size weight (paper default 10, i.e. ``1/alpha``).
    use_variance:
        Disable to fall back to the vanilla mean-only metric (used by the
        Figure 7 ablation).
    use_sampling_weight:
        Disable to use a constant ``beta = 1`` (pure Equation 1 UCB).
    """

    alpha: float = 0.1
    beta_max: float = 10.0
    use_variance: bool = True
    use_sampling_weight: bool = True

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if self.beta_max <= 0:
            raise ValueError(f"beta_max must be positive, got {self.beta_max}")


def ucb_score(
    mean: float,
    std: float,
    gamma: float,
    params: ScoreParams = ScoreParams(),
) -> float:
    """Final evaluation metric ``s(x, y, gamma)`` of Equation 3.

    Parameters
    ----------
    mean, std:
        Mean ``mu`` and standard deviation ``sigma`` of the fold scores.
    gamma:
        Sampling percentage in ``[0, 100]``.
    params:
        Metric weights and ablation switches.

    Returns
    -------
    float
        ``mu`` when variance use is disabled, ``mu + alpha * sigma`` when
        the sampling weight is disabled, else
        ``mu + alpha * beta(gamma) * sigma``.

    Notes
    -----
    The variance term is hardened so a degenerate ``sigma`` cannot poison
    an otherwise-finite mean: a non-finite or negative ``std`` contributes
    0 (the one-fold limit), and a non-finite ``gamma`` is treated as a
    full-budget evaluation (``beta = 0``).  A non-finite ``mean`` still
    propagates — that is a genuinely failed evaluation, which the engine's
    sanitiser converts into a degraded trial.
    """
    if not params.use_variance:
        return float(mean)
    if not np.isfinite(std) or std < 0.0:
        std = 0.0
    if params.use_sampling_weight:
        if not np.isfinite(gamma):
            gamma = 100.0
        weight = beta_weight(gamma, beta_max=params.beta_max)
    else:
        weight = 1.0
    return float(mean + params.alpha * weight * std)


def scores_from_folds(
    fold_scores: Sequence[float],
    gamma: float,
    params: ScoreParams = ScoreParams(),
    guard: Optional[GuardLog] = None,
) -> tuple:
    """Convenience: ``(mean, std, final score)`` from raw fold scores.

    Non-finite fold scores are dropped before aggregation (recorded as
    ``scoring.nonfinite_fold`` when a ``guard`` log is supplied); with a
    single surviving fold ``sigma`` is exactly 0 rather than an undefined
    sample deviation.  Raises :class:`ValueError` only when *no* finite
    fold score remains — a fully failed evaluation the caller must degrade.
    """
    fold_scores = np.asarray(fold_scores, dtype=float)
    if fold_scores.size == 0:
        raise ValueError("fold_scores must be non-empty")
    finite = np.isfinite(fold_scores)
    n_dropped = int((~finite).sum())
    if n_dropped:
        if guard is not None:
            guard.record(
                "scoring.nonfinite_fold",
                f"{n_dropped} non-finite fold score(s) dropped before aggregation",
                n_dropped=n_dropped,
                n_total=int(fold_scores.size),
            )
        fold_scores = fold_scores[finite]
    if fold_scores.size == 0:
        raise ValueError("all fold scores are non-finite")
    mean = float(fold_scores.mean())
    std = 0.0 if fold_scores.size == 1 else float(fold_scores.std())
    return mean, std, ucb_score(mean, std, gamma, params)
