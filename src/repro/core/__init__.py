"""The paper's contribution: grouping, general+special folds, UCB metric.

Public surface of the enhancement described in Section III, plus the
high-level :func:`~repro.core.enhanced.optimize` entry point.
"""

from .cv import ConfigurationRanking, CrossValidationStudy
from .diagnostics import StabilityResult, compare_stability, evaluation_stability
from .enhanced import METHODS, OptimizationOutcome, make_searcher, optimize
from .evaluator import (
    FOLD_FLOOR,
    MLPModelFactory,
    SubsetCVEvaluator,
    grouped_evaluator,
    make_scorer,
    vanilla_evaluator,
)
from .folds import GeneralSpecialFolds
from .grouping import InstanceGrouping, generate_groups, label_categories
from .scoring import (
    ScoreParams,
    beta_curve,
    beta_weight,
    gamma_bounds,
    scores_from_folds,
    ucb_score,
)
from .search_cv import EnhancedSearchCV

__all__ = [
    "METHODS",
    "ConfigurationRanking",
    "CrossValidationStudy",
    "EnhancedSearchCV",
    "FOLD_FLOOR",
    "GeneralSpecialFolds",
    "InstanceGrouping",
    "MLPModelFactory",
    "OptimizationOutcome",
    "ScoreParams",
    "StabilityResult",
    "SubsetCVEvaluator",
    "beta_curve",
    "compare_stability",
    "evaluation_stability",
    "beta_weight",
    "gamma_bounds",
    "generate_groups",
    "grouped_evaluator",
    "label_categories",
    "make_scorer",
    "make_searcher",
    "optimize",
    "scores_from_folds",
    "ucb_score",
    "vanilla_evaluator",
]
