"""Configuration evaluators: subset sampling + cross-validation + scoring.

:class:`SubsetCVEvaluator` is the single workhorse behind both the vanilla
and the enhanced bandit methods.  Its three axes correspond one-to-one to
the paper's three components, each independently switchable (which is what
the ablation experiments toggle):

- ``sampling``: how the instance-budget subset is drawn — ``"random"``,
  ``"stratified"`` (by label; the vanilla baseline) or ``"grouped"``
  (group-stratified from Operation 1's groups);
- ``folding``: how CV folds are built inside the subset — ``"random"``,
  ``"stratified"`` or ``"grouped"`` (the general+special folds of
  Operation 2);
- ``score_params``: the halving metric — the vanilla mean or the paper's
  variance- and size-aware score of Equation 3.

Factory helpers :func:`vanilla_evaluator` and :func:`grouped_evaluator`
build the two configurations the paper compares.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..bandit.base import EvaluationResult
from ..engine.arena import ArenaRef, SharedArena
from ..engine.arena import attach as arena_attach
from ..engine.checkpoint import FoldCheckpoint, attach_checkpoints, attach_plan_cache_delta
from ..guard import DataReport, GuardLog, validate_dataset
from ..telemetry.collect import current_collector, install_collector
from ..telemetry.profiling import profiled
from ..learners import MLPClassifier, MLPRegressor
from ..learners.batched import MegaBatchStats, batchable_model, fit_mlp_folds, fit_mlp_trials
from ..metrics import accuracy_score, f1_score, r2_score
from ..model_selection import KFold, StratifiedKFold, random_subsample, stratified_subsample
from .folds import GeneralSpecialFolds
from .grouping import InstanceGrouping, generate_groups
from .scoring import ScoreParams, ucb_score

__all__ = [
    "FOLD_FLOOR",
    "MLPModelFactory",
    "SubsetCVEvaluator",
    "make_scorer",
    "vanilla_evaluator",
    "grouped_evaluator",
]

#: Score a guarded evaluation assigns to a fold whose fit raised or whose
#: metric came back non-finite.  Deliberately far below any real metric yet
#: far above the engine's trial-level FAILURE_SCORE sentinel, so a partially
#: failed evaluation still ranks below healthy ones but above total failures.
FOLD_FLOOR = -1e6

#: Entries kept in the per-evaluator subset/fold plan memo (LRU).
_PLAN_CACHE_LIMIT = 32


def make_scorer(metric: str) -> Callable:
    """Scoring function ``(model, X, y) -> float`` for a metric name.

    ``"accuracy"`` and ``"r2"`` are the obvious ones; ``"f1"`` scores the
    positive class for binary problems (the paper's imbalanced datasets
    encode the minority as class 1) and macro-averages otherwise.
    """
    if metric == "accuracy":
        return lambda model, X, y: accuracy_score(y, model.predict(X))
    if metric == "f1":

        def f1(model, X, y):
            predictions = model.predict(X)
            if len(np.unique(y)) <= 2:
                return f1_score(y, predictions, average="binary", pos_label=1)
            return f1_score(y, predictions, average="macro")

        return f1
    if metric == "r2":
        return lambda model, X, y: r2_score(y, model.predict(X))
    raise ValueError(f"Unknown metric {metric!r}; expected 'accuracy', 'f1' or 'r2'")


class _ConstantClassifier:
    """Degenerate fallback when a training fold contains a single class."""

    def __init__(self, label) -> None:
        self.label = label

    def predict(self, X) -> np.ndarray:
        return np.full(len(X), self.label)


class MLPModelFactory:
    """Build an MLP estimator from a configuration dict.

    Configuration keys are passed straight through as
    :class:`~repro.learners.MLPClassifier` / ``MLPRegressor`` keyword
    arguments (they share the paper's Table III names), layered over
    ``defaults``.

    Parameters
    ----------
    task:
        ``"classification"`` or ``"regression"``.
    defaults:
        Keyword arguments applied to every model (e.g. ``max_iter``).
    """

    def __init__(self, task: str = "classification", **defaults: Any) -> None:
        if task not in ("classification", "regression"):
            raise ValueError(f"task must be 'classification' or 'regression', got {task!r}")
        self.task = task
        self.defaults = defaults

    def __call__(self, config: Dict[str, Any], random_state: Optional[int] = None):
        """Instantiate an unfitted estimator for ``config``."""
        kwargs = {**self.defaults, **config}
        if random_state is not None:
            kwargs.setdefault("random_state", random_state)
        cls = MLPClassifier if self.task == "classification" else MLPRegressor
        return cls(**kwargs)


class SubsetCVEvaluator:
    """Evaluate configurations on budgeted subsets via cross-validation.

    Parameters
    ----------
    X, y:
        The full training set the budget refers to (``B = len(y)``).
    model_factory:
        Callable ``(config, random_state) -> estimator``.
    metric:
        ``"accuracy"``, ``"f1"`` or ``"r2"``.
    task:
        ``"classification"`` or ``"regression"``.
    sampling, folding:
        Axis choices described in the module docstring.
    n_splits:
        Fold count for the non-grouped folding modes.
    grouping:
        Pre-computed :class:`~repro.core.grouping.InstanceGrouping`;
        required whenever ``sampling`` or ``folding`` is ``"grouped"``.
    k_gen, k_spe, special_majority:
        Parameters of the general+special folds (paper: 3 / 2 / 0.8).
    score_params:
        Halving-metric weights; ``ScoreParams(use_variance=False)``
        reproduces the vanilla mean-only metric.
    min_subset:
        Floor on the subset size so tiny budget fractions remain splittable.
    clock:
        Zero-argument callable timing each evaluation (default
        :func:`time.perf_counter`).  Tests inject a fake clock to make
        :attr:`EvaluationResult.cost` deterministic instead of sleeping;
        a custom clock must be picklable to cross process boundaries.
    guard_policy:
        Data-integrity guard policy (``"strict"``, ``"repair"``, ``"warn"``,
        ``"off"`` or ``None``).  With an active policy (anything but
        ``off``/``None``) the dataset is validated at construction, every
        evaluation records :class:`~repro.guard.events.GuardEvent` entries
        onto its result, degenerate folds shrink instead of raising, and
        failed or non-finite folds are clamped to :data:`FOLD_FLOOR`.
    data_report:
        Pre-computed :class:`~repro.guard.DataReport` when the caller (e.g.
        :func:`grouped_evaluator`) already validated ``X, y``; skips the
        construction-time validation.
    batched:
        Whether to train a trial's fold models through the batched lane
        kernels (:func:`repro.learners.batched.fit_mlp_folds`) when every
        fold is batchable (MLP with an sgd/adam solver).  Bitwise-identical
        to the per-fold loop; ``False`` forces the sequential reference
        path.
    memoize_plans:
        Cache the drawn subset and fold partition per
        ``(budget fraction, rng state)``.  Both are pure functions of that
        pair, so repeated evaluations of the same trial seed (e.g. a warm
        re-evaluation at a budget already planned cold) skip the
        subsample/split work; the memo replays the consumed rng stream and
        any guard events, keeping results bitwise-identical.
    plan_cache_size:
        LRU capacity of the plan memo (default 32 entries).  Hits and
        misses are counted on :attr:`plan_cache_hits` /
        :attr:`plan_cache_misses` and ride each result back to the engine,
        which surfaces run totals in
        :class:`~repro.engine.EngineStats`.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        model_factory: Callable,
        metric: str = "accuracy",
        task: str = "classification",
        sampling: str = "stratified",
        folding: str = "stratified",
        n_splits: int = 5,
        grouping: Optional[InstanceGrouping] = None,
        k_gen: int = 3,
        k_spe: int = 2,
        special_majority: float = 0.8,
        score_params: Optional[ScoreParams] = None,
        min_subset: int = 30,
        clock: Optional[Callable[[], float]] = None,
        guard_policy: Optional[str] = None,
        data_report: Optional[DataReport] = None,
        batched: bool = True,
        memoize_plans: bool = True,
        plan_cache_size: int = _PLAN_CACHE_LIMIT,
    ) -> None:
        for axis, value in (("sampling", sampling), ("folding", folding)):
            if value not in ("random", "stratified", "grouped"):
                raise ValueError(f"{axis} must be 'random', 'stratified' or 'grouped', got {value!r}")
        if (sampling == "grouped" or folding == "grouped") and grouping is None:
            raise ValueError("grouped sampling/folding requires a grouping")
        self.X = np.asarray(X, dtype=float)
        self.y = np.asarray(y)
        if len(self.X) != len(self.y):
            raise ValueError(f"X and y have inconsistent lengths: {len(self.X)} != {len(self.y)}")
        self.guard_policy = guard_policy
        if self.guard_active and data_report is None:
            self.X, self.y, data_report = validate_dataset(
                self.X, self.y, policy=guard_policy, task=task
            )
        self.data_report = data_report
        # Guard events recorded before evaluation begins (dataset validation,
        # grouping); factories fill this, the CLI summarises it.
        self.setup_guard_events: list = []
        self.model_factory = model_factory
        self.metric = metric
        self.scorer = make_scorer(metric)
        self.task = task
        self.sampling = sampling
        self.folding = folding
        self.n_splits = n_splits
        self.grouping = grouping
        self.k_gen = k_gen
        self.k_spe = k_spe
        self.special_majority = special_majority
        self.score_params = score_params if score_params is not None else ScoreParams(use_variance=False)
        self.min_subset = min_subset
        self.clock = clock if clock is not None else time.perf_counter
        self.batched = batched
        self.memoize_plans = memoize_plans
        if plan_cache_size < 1:
            raise ValueError(f"plan_cache_size must be >= 1, got {plan_cache_size}")
        self.plan_cache_size = int(plan_cache_size)
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self._plan_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        #: ``{"X": ArenaRef, "y": ArenaRef}`` once :meth:`share_memory`
        #: published the dataset; ``None`` keeps plain pickle transport.
        self._arena_refs: Optional[Dict[str, ArenaRef]] = None

    @property
    def guard_active(self) -> bool:
        """Whether an active guard policy governs this evaluator."""
        return self.guard_policy not in (None, "off")

    # -- pickling -------------------------------------------------------------

    def share_memory(self, arena: SharedArena) -> Dict[str, ArenaRef]:
        """Publish the dataset into ``arena``; pickles then carry refs.

        After this, :meth:`__getstate__` replaces the ``X``/``y`` arrays
        with their :class:`~repro.engine.arena.ArenaRef` placeholders, so
        shipping the evaluator to a spawned worker moves kilobytes of
        metadata instead of the dataset — the worker attaches read-only
        shared views and verifies the content digest.  The caller (the
        parallel executor) owns the arena's lifetime; call
        :meth:`unshare_memory` before pickling for any destination that
        cannot reach this machine's shared memory.
        """
        refs = arena.publish_all({"X": self.X, "y": self.y})
        self._arena_refs = refs
        return refs

    def unshare_memory(self) -> None:
        """Forget published refs; pickling carries the arrays again."""
        self._arena_refs = None

    def __getstate__(self):
        """Drop the (possibly lambda-built) scorer so the evaluator pickles.

        :class:`~repro.engine.ParallelExecutor` ships the evaluator to
        worker processes once via the pool initializer; the scorer is
        rebuilt from ``metric`` on the other side.  With
        :meth:`share_memory` active, the dataset arrays travel as arena
        refs instead of bytes.
        """
        state = dict(self.__dict__)
        state.pop("scorer", None)
        state.pop("_plan_cache", None)
        refs = state.get("_arena_refs")
        if refs:
            state["X"] = refs["X"]
            state["y"] = refs["y"]
        return state

    def __setstate__(self, state):
        """Restore attributes, rebuild the scorer, attach any arena refs."""
        self.__dict__.update(state)
        self.scorer = make_scorer(self.metric)
        self._plan_cache = OrderedDict()
        self.__dict__.setdefault("_arena_refs", None)
        if isinstance(self.X, ArenaRef):
            self.X = arena_attach(self.X)
        if isinstance(self.y, ArenaRef):
            self.y = arena_attach(self.y)

    # -- protocol ------------------------------------------------------------

    def evaluate(
        self,
        config: Dict[str, Any],
        budget_fraction: float,
        rng: np.random.Generator,
        warm_states: Optional[List] = None,
        capture_checkpoints: bool = False,
    ) -> EvaluationResult:
        """Score ``config`` on a ``budget_fraction`` subset of the data.

        The evaluation runs in three phases — plan (subset, folds and every
        model seed, drawn in the exact order the per-fold reference loop
        consumed them), fit (batched lane kernels when every fold qualifies,
        the sequential loop otherwise) and score — so batching changes the
        execution strategy without moving a single rng draw.

        ``warm_states`` optionally carries one
        :class:`~repro.engine.checkpoint.FoldCheckpoint` (or ``None``) per
        fold from a lower-budget evaluation of the same configuration; a
        shape-compatible entry replaces the Glorot initialisation of the
        matching fold.  With ``capture_checkpoints`` the fitted per-fold
        parameters are attached to the returned result for the engine's
        :class:`~repro.engine.checkpoint.CheckpointStore`.
        """
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
        start = self.clock()
        cache_hits0, cache_misses0 = self.plan_cache_hits, self.plan_cache_misses
        guard = GuardLog(self.guard_policy) if self.guard_active else None
        subset, folds = self._subset_and_folds(budget_fraction, rng, guard)
        collector = current_collector()
        seeds, models, warm_map = self._plan_models(config, folds, rng, warm_states)

        # Fit phase: one batched call when every model fold qualifies.
        batch_fitted = False
        if self._batch_eligible(models):
            jobs, warm = self._fold_jobs(folds, models, warm_map)
            span = (
                collector.span("fit_batch", folds=len(jobs))
                if collector is not None
                else nullcontext(None)
            )
            try:
                with span as record:
                    stats = fit_mlp_folds(jobs, warm=warm or None)
                    if record is not None:
                        record["attrs"].update(stats.as_dict())
                batch_fitted = True
                self._count_batch_stats(collector, stats)
            except Exception as exc:  # noqa: BLE001 - guarded runs degrade
                if guard is None:
                    raise
                guard.record(
                    "learner.batch_fallback",
                    f"batched fit raised {type(exc).__name__}: {exc}; "
                    "re-fitting folds sequentially",
                    error=type(exc).__name__,
                )
                # The lane may have left partial state behind; rebuild the
                # models from their planned seeds and let the score phase
                # degrade broken folds one at a time like the reference path.
                models = {
                    index: self.model_factory(config, random_state=seed)
                    for index, seed in enumerate(seeds)
                    if seed is not None
                }

        fold_scores = self._score_trial(folds, models, warm_map, batch_fitted, guard, collector)
        result = self._assemble_result(
            subset, folds, models, fold_scores, guard, self.clock() - start, capture_checkpoints
        )
        attach_plan_cache_delta(
            result,
            self.plan_cache_hits - cache_hits0,
            self.plan_cache_misses - cache_misses0,
        )
        return result

    def evaluate_many(
        self,
        specs: List[Tuple],
    ) -> Tuple[List[EvaluationResult], MegaBatchStats]:
        """Evaluate several trials of one rung as a single mega-batch.

        Each spec is ``(config, budget_fraction, rng, warm_states,
        capture_checkpoints, collector)`` — one trial exactly as
        :meth:`evaluate` takes it, plus an optional
        :class:`~repro.telemetry.TrialCollector` that is installed around
        every phase touching that trial (the phases of different trials
        interleave, so a single ambient collector cannot attribute work).

        All trials are planned first (each consuming only its own rng),
        then every batch-eligible trial's folds are fused into rung-level
        lanes via :func:`~repro.learners.batched.fit_mlp_trials` —
        bitwise-identical per fold to the per-trial path — and finally
        each trial is scored.  Ineligible trials (non-MLP, lbfgs, single
        fold) fit sequentially inside their own score phase, exactly as
        :meth:`evaluate` would.

        Raises on *any* error instead of degrading: the caller falls back
        to per-trial :meth:`evaluate` calls, whose per-trial guard
        semantics are the contract.  Returns the per-trial results (spec
        order) and the aggregate :class:`MegaBatchStats`.
        """
        plans: List[Dict[str, Any]] = []
        for config, budget_fraction, rng, warm_states, capture, collector in specs:
            if not 0.0 < budget_fraction <= 1.0:
                raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
            start = self.clock()
            cache_hits0, cache_misses0 = self.plan_cache_hits, self.plan_cache_misses
            guard = GuardLog(self.guard_policy) if self.guard_active else None
            with install_collector(collector):
                subset, folds = self._subset_and_folds(budget_fraction, rng, guard)
                seeds, models, warm_map = self._plan_models(config, folds, rng, warm_states)
            plans.append(
                {
                    "config": config,
                    "subset": subset,
                    "folds": folds,
                    "seeds": seeds,
                    "models": models,
                    "warm_map": warm_map,
                    "guard": guard,
                    "collector": collector,
                    "capture": capture,
                    "own": self.clock() - start,
                    "fit_share": 0.0,
                    "batch_fitted": False,
                    "cache_delta": (
                        self.plan_cache_hits - cache_hits0,
                        self.plan_cache_misses - cache_misses0,
                    ),
                }
            )

        fused = [plan for plan in plans if self._batch_eligible(plan["models"])]
        mega = MegaBatchStats()
        if fused:
            trial_jobs = []
            warms = []
            for plan in fused:
                jobs, warm = self._fold_jobs(plan["folds"], plan["models"], plan["warm_map"])
                trial_jobs.append(jobs)
                warms.append(warm or None)
            fit_start = self.clock()
            per_trial_stats, mega = fit_mlp_trials(trial_jobs, warms)
            fit_elapsed = self.clock() - fit_start
            total_folds = sum(stats.folds for stats in per_trial_stats) or 1
            for plan, stats in zip(fused, per_trial_stats):
                plan["batch_fitted"] = True
                plan["fit_share"] = fit_elapsed * stats.folds / total_folds
                with install_collector(plan["collector"]) as collector:
                    self._count_batch_stats(collector, stats)

        results = []
        for plan in plans:
            score_start = self.clock()
            with install_collector(plan["collector"]) as collector:
                fold_scores = self._score_trial(
                    plan["folds"],
                    plan["models"],
                    plan["warm_map"],
                    plan["batch_fitted"],
                    plan["guard"],
                    collector,
                )
            cost = plan["own"] + plan["fit_share"] + (self.clock() - score_start)
            result = self._assemble_result(
                plan["subset"],
                plan["folds"],
                plan["models"],
                fold_scores,
                plan["guard"],
                cost,
                plan["capture"],
            )
            attach_plan_cache_delta(result, *plan["cache_delta"])
            results.append(result)
        return results, mega

    # -- internals -------------------------------------------------------------

    def _plan_models(
        self,
        config: Dict[str, Any],
        folds: List[Tuple[np.ndarray, np.ndarray]],
        rng: np.random.Generator,
        warm_states: Optional[List],
    ) -> Tuple[List[Optional[int]], Dict[int, Any], Dict[int, Any]]:
        """Plan phase: replicate the sequential seed stream exactly.

        A single-class fold draws nothing, every other fold draws one
        model seed, in fold order — after this the trial's rng is fully
        consumed (nothing downstream touches it), which is what lets the
        mega-batch path plan all trials before fitting any of them.
        """
        seeds: List[Optional[int]] = []
        for train_idx, _ in folds:
            if self.task == "classification" and len(np.unique(self.y[train_idx])) < 2:
                seeds.append(None)
            else:
                seeds.append(int(rng.integers(2**31)))
        models = {
            index: self.model_factory(config, random_state=seed)
            for index, seed in enumerate(seeds)
            if seed is not None
        }
        warm_map: Dict[int, Any] = {}
        if warm_states:
            for index, model in models.items():
                if (
                    index < len(warm_states)
                    and warm_states[index] is not None
                    and isinstance(model, (MLPClassifier, MLPRegressor))
                ):
                    warm_map[index] = warm_states[index]
        return seeds, models, warm_map

    def _batch_eligible(self, models: Dict[int, Any]) -> bool:
        """Whether a trial's folds can go through the lane kernels."""
        return (
            self.batched
            and len(models) >= 2
            and all(batchable_model(model) for model in models.values())
        )

    def _fold_jobs(
        self,
        folds: List[Tuple[np.ndarray, np.ndarray]],
        models: Dict[int, Any],
        warm_map: Dict[int, Any],
    ) -> Tuple[List[Tuple], Dict[int, Tuple]]:
        """Build the lane-kernel job list (and positional warm dict)."""
        order = sorted(models)
        jobs = [(models[i], self.X[folds[i][0]], self.y[folds[i][0]]) for i in order]
        warm = {
            position: (warm_map[i].coefs, warm_map[i].intercepts)
            for position, i in enumerate(order)
            if i in warm_map
        }
        return jobs, warm

    @staticmethod
    def _count_batch_stats(collector, stats) -> None:
        """Fold one trial's lane-dispatch counters into its collector."""
        if collector is None:
            return
        collector.inc("evaluator.batched_folds", stats.batched_folds)
        if stats.warm_folds:
            collector.inc("evaluator.warm_folds", stats.warm_folds)

    def _score_trial(
        self,
        folds: List[Tuple[np.ndarray, np.ndarray]],
        models: Dict[int, Any],
        warm_map: Dict[int, Any],
        batch_fitted: bool,
        guard: Optional[GuardLog],
        collector,
    ) -> List[float]:
        """Score phase (fits here too when the batched kernel didn't run)."""
        fold_scores = []
        for fold_index, (train_idx, val_idx) in enumerate(folds):
            span = (
                collector.span(
                    "fold",
                    fold=fold_index,
                    n_train=int(len(train_idx)),
                    n_val=int(len(val_idx)),
                )
                if collector is not None
                else nullcontext(None)
            )
            with span as record:
                fold_score = self._score_fold(
                    fold_index, train_idx, val_idx, models, warm_map, batch_fitted, guard
                )
                if record is not None:
                    record["attrs"]["score"] = round(float(fold_score), 6)
            if collector is not None:
                collector.observe("evaluator.fold_score", float(fold_score))
            fold_scores.append(fold_score)
        return fold_scores

    def _assemble_result(
        self,
        subset: np.ndarray,
        folds: List[Tuple[np.ndarray, np.ndarray]],
        models: Dict[int, Any],
        fold_scores: List[float],
        guard: Optional[GuardLog],
        cost: float,
        capture_checkpoints: bool,
    ) -> EvaluationResult:
        """Assemble the trial's result (and attach captured checkpoints)."""
        gamma = 100.0 * len(subset) / len(self.y)
        mean = float(np.mean(fold_scores))
        std = float(np.std(fold_scores))
        score = ucb_score(mean, std, gamma, self.score_params)
        result = EvaluationResult(
            mean=mean,
            std=std,
            score=score,
            gamma=gamma,
            fold_scores=[float(s) for s in fold_scores],
            n_instances=int(len(subset)),
            cost=cost,
            guard_events=guard.as_dicts() if guard else [],
        )
        if capture_checkpoints:
            checkpoints = [
                FoldCheckpoint.from_model(models[index]) if index in models else None
                for index in range(len(folds))
            ]
            if any(state is not None for state in checkpoints):
                attach_checkpoints(result, checkpoints)
        return result

    def _subset_and_folds(
        self,
        budget_fraction: float,
        rng: np.random.Generator,
        guard: Optional[GuardLog],
    ) -> Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
        """Draw the budget subset and its fold partition, memoized.

        Both are pure functions of ``(budget fraction, rng state)``: the
        subset consumes the subsample draw and the partition consumes the
        splitter-seed draw.  A memo hit replays the stored rng end state and
        guard events instead of redoing the clustering/stratification work,
        so the caller observes a bitwise-identical rng stream either way.
        """
        n_total = len(self.y)
        floor = max(self.min_subset, 2 * self._n_folds())
        n_subset = int(round(budget_fraction * n_total))
        n_subset = min(n_total, max(floor, n_subset))
        cache_key = None
        if self.memoize_plans:
            cache_key = (round(float(budget_fraction), 12), repr(rng.bit_generator.state))
            hit = self._plan_cache.get(cache_key)
            if hit is not None:
                subset, folds, events, end_state = hit
                rng.bit_generator.state = end_state
                if guard is not None:
                    guard.extend(events)
                self._plan_cache.move_to_end(cache_key)
                self.plan_cache_hits += 1
                collector = current_collector()
                if collector is not None:
                    collector.inc("evaluator.plan_cache_hits")
                return subset, folds
            self.plan_cache_misses += 1
            collector = current_collector()
            if collector is not None:
                collector.inc("evaluator.plan_cache_misses")
        probe = GuardLog(self.guard_policy) if guard is not None else None
        subset = self._draw_subset(n_subset, rng)
        folds = list(self._folds(subset, rng, probe))
        if probe is not None:
            guard.extend(probe.events)
        if cache_key is not None:
            self._plan_cache[cache_key] = (
                subset,
                folds,
                list(probe.events) if probe is not None else [],
                rng.bit_generator.state,
            )
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return subset, folds

    def _score_fold(
        self,
        fold_index: int,
        train_idx: np.ndarray,
        val_idx: np.ndarray,
        models: Dict[int, Any],
        warm_map: Dict[int, Any],
        batch_fitted: bool,
        guard: Optional[GuardLog],
    ) -> float:
        """Fit (unless already batch-fitted) and score one fold's model."""
        model = models.get(fold_index)
        if model is None:
            y_train = self.y[train_idx]
            if guard is not None:
                guard.record(
                    "folds.single_class_train",
                    "training fold holds a single class; scored a constant predictor",
                    n_train=int(len(train_idx)),
                )
            model = _ConstantClassifier(y_train[0])
        elif batch_fitted:
            if guard is not None and getattr(model, "diverged_", False):
                guard.record(
                    "learner.diverged",
                    "fit aborted on exploding loss; parameters rolled back "
                    "to the last finite state",
                )
        else:
            X_train, y_train = self.X[train_idx], self.y[train_idx]
            collector = current_collector()
            span = (
                collector.span("fit", n_train=int(len(train_idx)))
                if collector is not None
                else nullcontext(None)
            )
            warm = warm_map.get(fold_index)
            fit_kwargs = (
                {"coefs_init": warm.coefs, "intercepts_init": warm.intercepts}
                if warm is not None
                else {}
            )
            with span:
                if guard is None:
                    model.fit(X_train, y_train, **fit_kwargs)
                else:
                    try:
                        model.fit(X_train, y_train, **fit_kwargs)
                    except Exception as exc:  # noqa: BLE001 - any fit failure degrades
                        guard.record(
                            "learner.fit_error",
                            f"fit raised {type(exc).__name__}: {exc}",
                            error=type(exc).__name__,
                            floor=FOLD_FLOOR,
                        )
                        return FOLD_FLOOR
                    if getattr(model, "diverged_", False):
                        guard.record(
                            "learner.diverged",
                            "fit aborted on exploding loss; parameters rolled back "
                            "to the last finite state",
                        )
        score = float(self.scorer(model, self.X[val_idx], self.y[val_idx]))
        if guard is not None and not np.isfinite(score):
            guard.record(
                "scoring.nonfinite_fold",
                f"fold scored {score!r}; clamped to the fold floor",
                floor=FOLD_FLOOR,
            )
            score = FOLD_FLOOR
        return score

    def _n_folds(self) -> int:
        if self.folding == "grouped":
            return self.k_gen + self.k_spe
        return self.n_splits

    @profiled("evaluator.draw_subset")
    def _draw_subset(self, n_subset: int, rng: np.random.Generator) -> np.ndarray:
        n_total = len(self.y)
        if n_subset >= n_total:
            return np.arange(n_total)
        if self.sampling == "grouped":
            return stratified_subsample(self.grouping.group_labels, n_subset, rng=rng)
        if self.sampling == "stratified" and self.task == "classification":
            return stratified_subsample(self.y, n_subset, rng=rng)
        return random_subsample(n_total, n_subset, rng=rng)

    def _folds(
        self,
        subset: np.ndarray,
        rng: np.random.Generator,
        guard: Optional[GuardLog] = None,
    ):
        """Yield (train, validation) pairs in full-dataset coordinates."""
        seed = int(rng.integers(2**31))
        if self.folding == "grouped":
            splitter = GeneralSpecialFolds(
                self.grouping.group_labels,
                k_gen=self.k_gen,
                k_spe=self.k_spe,
                special_majority=self.special_majority,
                random_state=seed,
                guard=guard,
            )
            yield from splitter.split(subset)
            return
        n_splits = self.n_splits
        n = len(subset)
        if guard is not None and n < 2 * n_splits:
            effective = max(2, n // 2)
            guard.record(
                "folds.k_shrunk",
                f"subset of {n} too small for {n_splits} folds; using {effective}",
                n=n,
                k_before=n_splits,
                k=effective,
            )
            n_splits = effective
        if self.folding == "stratified" and self.task == "classification":
            splitter = StratifiedKFold(n_splits=n_splits, shuffle=True, random_state=seed)
            relative = splitter.split(subset, self.y[subset])
        else:
            splitter = KFold(n_splits=n_splits, shuffle=True, random_state=seed)
            relative = splitter.split(subset)
        for train_rel, val_rel in relative:
            yield subset[train_rel], subset[val_rel]

    def _fit_and_score(
        self,
        config: Dict[str, Any],
        train_idx: np.ndarray,
        val_idx: np.ndarray,
        rng: np.random.Generator,
        guard: Optional[GuardLog] = None,
    ) -> float:
        """Sequential single-fold reference: create, fit and score one model.

        :meth:`evaluate` no longer calls this (the plan/fit/score phases
        above supersede it) but it remains the executable specification the
        batched kernels are equivalence-tested against.
        """
        X_train, y_train = self.X[train_idx], self.y[train_idx]
        X_val, y_val = self.X[val_idx], self.y[val_idx]
        if self.task == "classification" and len(np.unique(y_train)) < 2:
            if guard is not None:
                guard.record(
                    "folds.single_class_train",
                    "training fold holds a single class; scored a constant predictor",
                    n_train=int(len(train_idx)),
                )
            model = _ConstantClassifier(y_train[0])
        else:
            model = self.model_factory(config, random_state=int(rng.integers(2**31)))
            collector = current_collector()
            span = (
                collector.span("fit", n_train=int(len(train_idx)))
                if collector is not None
                else nullcontext(None)
            )
            with span:
                if guard is None:
                    model.fit(X_train, y_train)
                else:
                    try:
                        model.fit(X_train, y_train)
                    except Exception as exc:  # noqa: BLE001 - any fit failure degrades
                        guard.record(
                            "learner.fit_error",
                            f"fit raised {type(exc).__name__}: {exc}",
                            error=type(exc).__name__,
                            floor=FOLD_FLOOR,
                        )
                        return FOLD_FLOOR
                    if getattr(model, "diverged_", False):
                        guard.record(
                            "learner.diverged",
                            "fit aborted on exploding loss; parameters rolled back "
                            "to the last finite state",
                        )
        score = float(self.scorer(model, X_val, y_val))
        if guard is not None and not np.isfinite(score):
            guard.record(
                "scoring.nonfinite_fold",
                f"fold scored {score!r}; clamped to the fold floor",
                floor=FOLD_FLOOR,
            )
            score = FOLD_FLOOR
        return score

    def fit_full(self, config: Dict[str, Any], random_state: Optional[int] = None):
        """Train a model with ``config`` on the entire training set."""
        model = self.model_factory(config, random_state=random_state)
        model.fit(self.X, self.y)
        return model


def vanilla_evaluator(
    X: np.ndarray,
    y: np.ndarray,
    model_factory: Callable,
    metric: str = "accuracy",
    task: str = "classification",
    n_splits: int = 5,
    min_subset: int = 30,
    clock: Optional[Callable[[], float]] = None,
    guard_policy: Optional[str] = None,
    batched: bool = True,
    memoize_plans: bool = True,
) -> SubsetCVEvaluator:
    """The baseline evaluator: stratified subsets, stratified k-fold, mean."""
    return SubsetCVEvaluator(
        X,
        y,
        model_factory,
        metric=metric,
        task=task,
        sampling="stratified" if task == "classification" else "random",
        folding="stratified",
        n_splits=n_splits,
        score_params=ScoreParams(use_variance=False),
        min_subset=min_subset,
        clock=clock,
        guard_policy=guard_policy,
        batched=batched,
        memoize_plans=memoize_plans,
    )


def grouped_evaluator(
    X: np.ndarray,
    y: np.ndarray,
    model_factory: Callable,
    metric: str = "accuracy",
    task: str = "classification",
    n_groups: int = 2,
    k_gen: int = 3,
    k_spe: int = 2,
    r_group: float = 0.8,
    special_majority: float = 0.8,
    alpha: float = 0.1,
    beta_max: float = 10.0,
    min_subset: int = 30,
    random_state: Optional[int] = None,
    grouping: Optional[InstanceGrouping] = None,
    clock: Optional[Callable[[], float]] = None,
    guard_policy: Optional[str] = None,
    batched: bool = True,
    memoize_plans: bool = True,
) -> SubsetCVEvaluator:
    """The paper's enhanced evaluator (grouped sampling/folds, Eq. 3 score).

    Builds the instance grouping up front (the paper performs this once
    before optimization starts) unless one is supplied.  With an active
    ``guard_policy`` the dataset is validated *before* grouping (clustering
    rejects NaN features, so repair must come first) and the grouping step
    itself runs under a guard log whose events land on the data report's
    side of the audit trail.
    """
    data_report = None
    if guard_policy not in (None, "off"):
        setup_guard = GuardLog(guard_policy)
        X, y, data_report = validate_dataset(
            X,
            y,
            policy=guard_policy,
            task="regression" if task == "regression" else "classification",
            guard=setup_guard,
        )
        if grouping is None:
            grouping = generate_groups(
                X,
                y,
                n_groups=n_groups,
                task="regression" if task == "regression" else "classification",
                r_group=r_group,
                random_state=random_state,
                guard=setup_guard,
            )
    if grouping is None:
        grouping = generate_groups(
            X,
            y,
            n_groups=n_groups,
            task="regression" if task == "regression" else "classification",
            r_group=r_group,
            random_state=random_state,
        )
    evaluator = SubsetCVEvaluator(
        X,
        y,
        model_factory,
        metric=metric,
        task=task,
        sampling="grouped",
        folding="grouped",
        grouping=grouping,
        k_gen=k_gen,
        k_spe=k_spe,
        special_majority=special_majority,
        score_params=ScoreParams(alpha=alpha, beta_max=beta_max),
        min_subset=min_subset,
        clock=clock,
        guard_policy=guard_policy,
        data_report=data_report,
        batched=batched,
        memoize_plans=memoize_plans,
    )
    if data_report is not None:
        evaluator.setup_guard_events = setup_guard.as_dicts()
    return evaluator
