"""Evaluation-stability diagnostics (paper Section III-E).

The paper's central stability argument: evaluating a configuration on a
small sampled subset is noisy, and group-based sampling plus
general+special folds reduce that noise.  These helpers measure it
directly — the same configuration is evaluated repeatedly with fresh
randomness, and the spread of the observed mean scores quantifies
evaluation stability (smaller is more stable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .evaluator import SubsetCVEvaluator

__all__ = ["StabilityResult", "evaluation_stability", "compare_stability"]


@dataclass
class StabilityResult:
    """Repeat-evaluation statistics for one (evaluator, config, budget).

    Attributes
    ----------
    means:
        The evaluator's mean fold score per repeat.
    """

    means: List[float]

    @property
    def spread(self) -> float:
        """Standard deviation of the repeated evaluations — the paper's
        instability measure (lower is more stable)."""
        return float(np.std(self.means))

    @property
    def average(self) -> float:
        """Average evaluation value across repeats."""
        return float(np.mean(self.means))

    def __len__(self) -> int:
        return len(self.means)


def evaluation_stability(
    evaluator: SubsetCVEvaluator,
    config: Dict[str, Any],
    budget_fraction: float,
    n_repeats: int = 10,
    random_state: Optional[int] = None,
) -> StabilityResult:
    """Evaluate ``config`` repeatedly and collect the observed means.

    Each repeat uses an independent random stream, so the spread captures
    exactly the sampling-induced noise the paper's components target.
    """
    if n_repeats < 2:
        raise ValueError(f"n_repeats must be >= 2, got {n_repeats}")
    base = np.random.default_rng(random_state)
    means = []
    for _ in range(n_repeats):
        rng = np.random.default_rng(int(base.integers(2**63)))
        means.append(evaluator.evaluate(config, budget_fraction, rng).mean)
    return StabilityResult(means=means)


def compare_stability(
    evaluators: Dict[str, SubsetCVEvaluator],
    config: Dict[str, Any],
    budgets: Sequence[float],
    n_repeats: int = 10,
    random_state: Optional[int] = None,
) -> Dict[str, Dict[float, StabilityResult]]:
    """Stability of several evaluators across budget fractions.

    Returns
    -------
    dict
        ``name -> {budget -> StabilityResult}``; compare ``spread`` values
        at matching budgets (the paper predicts the grouped evaluator's
        spread is smallest at small budgets).
    """
    output: Dict[str, Dict[float, StabilityResult]] = {}
    for name, evaluator in evaluators.items():
        per_budget = {}
        for budget in budgets:
            per_budget[budget] = evaluation_stability(
                evaluator, config, budget, n_repeats=n_repeats, random_state=random_state
            )
        output[name] = per_budget
    return output
