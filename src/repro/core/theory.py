"""Sampling-stability analysis (paper Proposition 1).

The paper argues group-based sampling is more stable than random sampling
with a binomial model: for a balanced two-class dataset, random sampling of
``n`` instances draws the positive count from ``Binomial(n, p)``, whereas
sampling ``n/2`` from each of two groups with positive rates ``p - eps``
and ``p + eps`` draws from the *convolution* of two half-size binomials —
whose variance is strictly smaller for any ``eps > 0`` and collapses to
zero at ``eps = p`` (each group pure).

This module computes both distributions exactly and exposes the summary
quantities the proposition compares, so the claim can be checked
numerically (see ``benchmarks/test_ext_proposition1.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import binom

__all__ = [
    "binomial_pmf",
    "grouped_sampling_pmf",
    "SamplingStability",
    "compare_sampling_stability",
]


def binomial_pmf(n: int, p: float) -> np.ndarray:
    """PMF of the positive count under random sampling: ``Binomial(n, p)``.

    Returns an array of length ``n + 1`` over counts ``0..n``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    return binom.pmf(np.arange(n + 1), n, p)


def grouped_sampling_pmf(n: int, p: float, eps: float) -> np.ndarray:
    """PMF of the positive count under two-group sampling (Proposition 1).

    ``n/2`` instances are drawn from a group with positive rate ``p - eps``
    and ``n/2`` from one with rate ``p + eps``; the total positive count is
    the convolution of the two binomials:

    ``P_our(x) = sum_i P(i; n/2, p - eps) * P(x - i; n/2, p + eps)``.

    Parameters
    ----------
    n:
        Total sample size (must be even so the groups split evenly).
    p:
        Overall positive rate.
    eps:
        Group skew in ``[0, min(p, 1 - p)]``; ``0`` reduces to random
        sampling, ``p`` (for ``p <= 0.5``) makes each group pure.
    """
    if n < 2 or n % 2 != 0:
        raise ValueError(f"n must be an even integer >= 2, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if eps < 0 or p - eps < 0 or p + eps > 1:
        raise ValueError(f"eps={eps} must keep both group rates in [0, 1]")
    half = n // 2
    low = binom.pmf(np.arange(half + 1), half, p - eps)
    high = binom.pmf(np.arange(half + 1), half, p + eps)
    return np.convolve(low, high)


@dataclass(frozen=True)
class SamplingStability:
    """Summary statistics of a positive-count distribution.

    Attributes
    ----------
    mean, variance:
        Moments of the positive count.
    mode_probability:
        Probability of drawing *exactly* the expected composition
        (the paper's "probability of being consistent with the overall
        distribution").
    """

    mean: float
    variance: float
    mode_probability: float

    @staticmethod
    def from_pmf(pmf: np.ndarray, expected_count: float) -> "SamplingStability":
        """Compute the summary from a PMF over counts ``0..len(pmf)-1``."""
        counts = np.arange(len(pmf))
        mean = float((counts * pmf).sum())
        variance = float(((counts - mean) ** 2 * pmf).sum())
        target = int(round(expected_count))
        mode_probability = float(pmf[target]) if 0 <= target < len(pmf) else 0.0
        return SamplingStability(mean=mean, variance=variance, mode_probability=mode_probability)


def compare_sampling_stability(n: int, p: float, eps: float) -> dict:
    """Proposition 1's comparison at one ``(n, p, eps)`` point.

    Returns
    -------
    dict
        ``{"random": SamplingStability, "grouped": SamplingStability}``.
        For ``eps = 0`` the two coincide; for ``eps > 0`` the grouped
        variance is strictly smaller (by ``n * eps**2 / 2``), and at the
        extreme ``eps = p = 0.5`` the grouped draw is deterministic.
    """
    expected = n * p
    random_stats = SamplingStability.from_pmf(binomial_pmf(n, p), expected)
    grouped_stats = SamplingStability.from_pmf(grouped_sampling_pmf(n, p, eps), expected)
    return {"random": random_stats, "grouped": grouped_stats}
