"""General and special fold construction (paper Section III-B, Operation 2).

Cross-validation folds for a (sub)set of instances are built from the
pre-computed groups:

- **general folds** are group-stratified samples that mimic the overall
  distribution (like stratified k-fold, but stratifying on the feature+label
  groups instead of labels alone);
- **special folds** deliberately deviate: fold ``i`` draws a majority
  (default 80%) of its instances from group ``omega_i`` and the remainder
  group-stratified from the other groups, so the config is also scored under
  group-specific distributions.

The ``k_gen + k_spe`` validation folds form a partition of the subset; the
training side of each fold is the subset minus its validation block, giving
ordinary k-fold semantics.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..guard.events import GuardLog
from ..telemetry.profiling import profiled

__all__ = ["GeneralSpecialFolds"]


class GeneralSpecialFolds:
    """Splitter producing ``k_gen`` general plus ``k_spe`` special folds.

    Parameters
    ----------
    group_labels:
        Group index per instance of the *full* training set (from
        :func:`repro.core.grouping.generate_groups`).
    k_gen:
        Number of general (distribution-matching) folds; the paper uses 3.
    k_spe:
        Number of special (group-biased) folds; the paper sets this to the
        group count ``v`` and uses 2 in the main experiments.  Must not
        exceed the number of groups.
    special_majority:
        Fraction of a special fold drawn from its own group (paper: 0.8).
    random_state:
        Seed for all sampling.
    guard:
        Optional :class:`~repro.guard.events.GuardLog`.  With a guard,
        degenerate inputs degrade instead of raising: ``k_spe`` exceeding
        the group count shrinks to it (``folds.k_shrunk``), a subset too
        small for ``k_gen + k_spe`` folds shrinks the fold counts
        per-split (general folds first), and reusing groups for several
        special folds is recorded as ``folds.special_group_reused``.
    """

    def __init__(
        self,
        group_labels: np.ndarray,
        k_gen: int = 3,
        k_spe: int = 2,
        special_majority: float = 0.8,
        random_state: Optional[int] = None,
        guard: Optional[GuardLog] = None,
    ) -> None:
        group_labels = np.asarray(group_labels, dtype=int)
        if group_labels.ndim != 1:
            raise ValueError(f"group_labels must be 1-D, got shape {group_labels.shape}")
        if k_gen < 0 or k_spe < 0 or k_gen + k_spe < 2:
            raise ValueError(f"Need k_gen + k_spe >= 2 folds, got k_gen={k_gen}, k_spe={k_spe}")
        n_groups = int(group_labels.max()) + 1 if len(group_labels) else 0
        if k_spe > n_groups:
            if guard is None:
                raise ValueError(f"k_spe={k_spe} cannot exceed the number of groups ({n_groups})")
            shrunk_spe = n_groups
            shrunk_gen = max(k_gen, 2 - shrunk_spe)  # keep k_gen + k_spe >= 2
            guard.record(
                "folds.k_shrunk",
                f"k_spe={k_spe} exceeds {n_groups} group(s); "
                f"using k_gen={shrunk_gen}, k_spe={shrunk_spe}",
                k_gen_before=k_gen,
                k_spe_before=k_spe,
                k_gen=shrunk_gen,
                k_spe=shrunk_spe,
            )
            k_gen, k_spe = shrunk_gen, shrunk_spe
        if not 0.0 < special_majority <= 1.0:
            raise ValueError(f"special_majority must be in (0, 1], got {special_majority}")
        self.group_labels = group_labels
        self.k_gen = k_gen
        self.k_spe = k_spe
        self.special_majority = special_majority
        self.random_state = random_state
        self.n_groups = n_groups
        self.guard = guard

    def get_n_splits(self) -> int:
        """Total fold count ``k_gen + k_spe``."""
        return self.k_gen + self.k_spe

    def split(
        self, subset_indices: Optional[np.ndarray] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train, validation)`` index pairs over the subset.

        Parameters
        ----------
        subset_indices:
            Indices (into the full training set) forming the evaluation
            subset; defaults to the entire set.  Returned indices refer to
            the same full-set coordinates.
        """
        if subset_indices is None:
            subset_indices = np.arange(len(self.group_labels))
        subset_indices = np.asarray(subset_indices, dtype=int)
        n = len(subset_indices)
        k_gen, k_spe = self._effective_counts(n)
        rng = np.random.default_rng(self.random_state)
        blocks = self._partition(subset_indices, k_gen, k_spe, rng)
        subset_set = subset_indices
        for block in blocks:
            mask = np.isin(subset_set, block, assume_unique=False)
            yield subset_set[~mask], block

    # -- internals ---------------------------------------------------------

    def _effective_counts(self, n: int) -> Tuple[int, int]:
        """Fold counts for an ``n``-instance subset, shrunk under a guard.

        Without a guard (legacy behaviour) a subset too small for
        ``k_gen + k_spe`` folds raises.  With one, general folds give way
        first — the special folds are the paper's novelty — down to one of
        each kind, bounded by ``n // 2`` total so every validation block
        keeps at least two instances.
        """
        k_gen, k_spe = self.k_gen, self.k_spe
        k_total = k_gen + k_spe
        if n >= 2 * k_total:
            return k_gen, k_spe
        if self.guard is None:
            raise ValueError(
                f"Subset of {n} instances is too small for {k_total} folds "
                f"(needs at least {2 * k_total})"
            )
        max_total = n // 2
        if max_total < 2:
            raise ValueError(
                f"Subset of {n} instances is too small for any 2-fold split "
                "(needs at least 4)"
            )
        k_total_eff = min(k_total, max_total)
        new_gen = min(k_gen, max(k_total_eff - k_spe, 1 if k_gen else 0))
        new_spe = k_total_eff - new_gen
        self.guard.record(
            "folds.k_shrunk",
            f"subset of {n} too small for {k_total} folds; "
            f"using k_gen={new_gen}, k_spe={new_spe}",
            n=n,
            k_gen_before=k_gen,
            k_spe_before=k_spe,
            k_gen=new_gen,
            k_spe=new_spe,
        )
        return new_gen, new_spe

    @profiled("folds.partition")
    def _partition(
        self,
        subset_indices: np.ndarray,
        k_gen: int,
        k_spe: int,
        rng: np.random.Generator,
    ) -> List[np.ndarray]:
        """Partition the subset into special blocks then general blocks."""
        n = len(subset_indices)
        k_total = k_gen + k_spe
        block_size = n // k_total
        groups = self.group_labels[subset_indices]

        remaining = np.ones(n, dtype=bool)  # positions within subset_indices
        blocks: List[np.ndarray] = []

        # Special folds first: they need their own group's instances, which
        # general sampling would otherwise consume.
        special_groups = self._pick_special_groups(groups, k_spe, rng)
        for group in special_groups:
            own_positions = np.flatnonzero(remaining & (groups == group))
            n_own_target = int(round(self.special_majority * block_size))
            n_own = min(n_own_target, len(own_positions), block_size)
            chosen_own = rng.choice(own_positions, size=n_own, replace=False) if n_own else np.empty(0, dtype=int)
            remaining[chosen_own] = False
            n_other = block_size - n_own
            other_positions = np.flatnonzero(remaining & (groups != group))
            if len(other_positions) < n_other:
                # Not enough foreign instances left: top up from anywhere.
                other_positions = np.flatnonzero(remaining)
            chosen_other = self._stratified_pick(other_positions, groups, n_other, rng)
            remaining[chosen_other] = False
            blocks.append(subset_indices[np.concatenate([chosen_own, chosen_other])])

        # General folds: group-stratified split of everything left.
        leftover_positions = np.flatnonzero(remaining)
        if k_gen:
            general = self._stratified_partition(leftover_positions, groups, k_gen, rng)
            blocks.extend(subset_indices[part] for part in general)
        elif len(leftover_positions):
            # No general folds: distribute leftovers round-robin into the
            # special blocks' *training* side by simply ignoring them — they
            # remain in every fold's training split by construction.
            pass
        return blocks

    def _pick_special_groups(
        self, groups: np.ndarray, k_spe: int, rng: np.random.Generator
    ) -> List[int]:
        """Choose which groups get a special fold (largest presence first)."""
        present, counts = np.unique(groups, return_counts=True)
        order = np.argsort(-counts, kind="stable")
        ranked = [int(present[i]) for i in order]
        if len(ranked) >= k_spe:
            return ranked[:k_spe]
        # Fewer distinct groups in the subset than requested special folds:
        # reuse groups cyclically (their samples will still differ).
        if self.guard is not None:
            self.guard.record(
                "folds.special_group_reused",
                f"subset holds {len(ranked)} distinct group(s) for "
                f"{k_spe} special folds; groups reused cyclically",
                n_distinct=len(ranked),
                k_spe=k_spe,
            )
        picks: List[int] = []
        while len(picks) < k_spe:
            picks.extend(ranked)
        return picks[:k_spe]

    @staticmethod
    def _stratified_pick(
        positions: np.ndarray, groups: np.ndarray, n_pick: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Pick ``n_pick`` positions roughly proportional to group sizes."""
        if n_pick <= 0 or len(positions) == 0:
            return np.empty(0, dtype=int)
        n_pick = min(n_pick, len(positions))
        member_groups = groups[positions]
        present, counts = np.unique(member_groups, return_counts=True)
        exact = counts * (n_pick / counts.sum())
        allocation = np.floor(exact).astype(int)
        order = np.argsort(-(exact - allocation))
        shortfall = n_pick - int(allocation.sum())
        for i in order:
            if shortfall == 0:
                break
            if allocation[i] < counts[i]:
                allocation[i] += 1
                shortfall -= 1
        while shortfall > 0:
            candidates = np.flatnonzero(allocation < counts)
            allocation[rng.choice(candidates)] += 1
            shortfall -= 1
        picked = []
        for group, take in zip(present, allocation):
            if take == 0:
                continue
            pool = positions[member_groups == group]
            picked.append(rng.choice(pool, size=take, replace=False))
        result = np.concatenate(picked)
        rng.shuffle(result)
        return result

    @staticmethod
    def _stratified_partition(
        positions: np.ndarray, groups: np.ndarray, k: int, rng: np.random.Generator
    ) -> List[np.ndarray]:
        """Split positions into ``k`` group-stratified, size-balanced parts."""
        parts: List[List[int]] = [[] for _ in range(k)]
        member_groups = groups[positions]
        offset = 0
        for group in np.unique(member_groups):
            members = positions[member_groups == group].copy()
            rng.shuffle(members)
            for i, position in enumerate(members):
                parts[(offset + i) % k].append(int(position))
            offset = (offset + len(members)) % k
        return [np.array(sorted(part), dtype=int) for part in parts]
