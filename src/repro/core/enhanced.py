"""High-level API: build vanilla or enhanced (``+``) bandit searchers.

``SHA+`` / ``HB+`` / ``BOHB+`` / ``ASHA+`` are the corresponding vanilla
searchers wired to the grouped evaluator — the enhancement is entirely a
property of *how configurations are evaluated*, so the factory here is the
whole integration (paper Section III-D).

:func:`optimize` is the one-call entry point used by the examples: it
builds the evaluator, runs the search, refits the winner on the full
training set and returns everything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..bandit import (
    ASHA,
    BOHB,
    DEHB,
    PASHA,
    BaseSearcher,
    HyperBand,
    RandomSearch,
    SearchResult,
    SMACSearch,
    SuccessiveHalving,
    TPESearch,
)
from ..engine.checkpoint import CheckpointStore
from ..space import SearchSpace
from .evaluator import MLPModelFactory, SubsetCVEvaluator, grouped_evaluator, vanilla_evaluator

__all__ = ["METHODS", "make_searcher", "optimize", "OptimizationOutcome"]

#: method name -> (searcher class, uses enhanced evaluator)
METHODS = {
    "random": (RandomSearch, False),
    "sha": (SuccessiveHalving, False),
    "sha+": (SuccessiveHalving, True),
    "hb": (HyperBand, False),
    "hb+": (HyperBand, True),
    "bohb": (BOHB, False),
    "bohb+": (BOHB, True),
    "asha": (ASHA, False),
    "asha+": (ASHA, True),
    "pasha": (PASHA, False),
    "pasha+": (PASHA, True),
    "dehb": (DEHB, False),
    "dehb+": (DEHB, True),
    "tpe": (TPESearch, False),
    "smac": (SMACSearch, False),
}


def make_searcher(
    method: str,
    space: SearchSpace,
    X: np.ndarray,
    y: np.ndarray,
    metric: str = "accuracy",
    task: str = "classification",
    model_factory=None,
    random_state: Optional[int] = None,
    evaluator_kwargs: Optional[Dict[str, Any]] = None,
    searcher_kwargs: Optional[Dict[str, Any]] = None,
    engine=None,
    guard: Optional[str] = None,
    telemetry=None,
    warm_start: bool = False,
    checkpoint_dir=None,
) -> BaseSearcher:
    """Construct a searcher by paper name (``"sha"``, ``"sha+"``, ...).

    Parameters
    ----------
    method:
        One of :data:`METHODS` (case-insensitive).
    space:
        The hyperparameter space.
    X, y:
        Training data defining the instance budget.
    metric, task:
        Evaluation metric and problem type.
    model_factory:
        Callable ``(config, random_state) -> estimator``; defaults to an
        :class:`~repro.core.evaluator.MLPModelFactory` with a small
        ``max_iter`` suitable for experimentation.
    random_state:
        Seed shared by the evaluator construction and the searcher.
    evaluator_kwargs, searcher_kwargs:
        Extra keyword arguments for the evaluator factory / searcher class.
    engine:
        Optional :class:`~repro.engine.TrialEngine` routing every
        evaluation through a pluggable executor with memoization and
        retries; works with any method since all searchers evaluate
        through the same seam.
    guard:
        Data-integrity guard policy (``"strict"``, ``"repair"``,
        ``"warn"``, ``"off"`` or ``None``); forwarded to the evaluator
        factory as ``guard_policy``.  See :mod:`repro.guard`.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` recording run/rung/
        trial spans and metrics for this search.  Shared with ``engine``
        when one is given (see
        :meth:`~repro.bandit.base.BaseSearcher._sync_telemetry`).
    warm_start:
        Opt in to cross-rung warm starting: every evaluation's per-fold
        trained parameters are checkpointed, and a promoted configuration
        resumes training from its lower-rung checkpoint instead of a fresh
        Glorot initialisation.  Builds a default
        :class:`~repro.engine.TrialEngine` when ``engine`` is ``None``;
        an explicit engine must carry its own ``checkpoints=`` store (this
        flag then only validates the combination).
    checkpoint_dir:
        Spill directory making the checkpoints durable (required when the
        engine journals; see
        :class:`~repro.engine.checkpoint.CheckpointStore`).  Implies
        ``warm_start``.
    """
    key = method.lower()
    if key not in METHODS:
        raise ValueError(f"Unknown method {method!r}; available: {sorted(METHODS)}")
    searcher_cls, enhanced = METHODS[key]
    if model_factory is None:
        model_factory = MLPModelFactory(task=task, max_iter=30)
    if checkpoint_dir is not None:
        warm_start = True
    if warm_start:
        if engine is None:
            from ..engine import TrialEngine

            engine = TrialEngine(checkpoints=checkpoint_dir if checkpoint_dir is not None else True)
        elif engine.checkpoints is None:
            engine.checkpoints = (
                CheckpointStore(spill_dir=checkpoint_dir)
                if checkpoint_dir is not None
                else CheckpointStore()
            )
    evaluator_kwargs = dict(evaluator_kwargs or {})
    if guard is not None:
        evaluator_kwargs.setdefault("guard_policy", guard)
    if enhanced:
        evaluator = grouped_evaluator(
            X, y, model_factory, metric=metric, task=task, random_state=random_state, **evaluator_kwargs
        )
    else:
        evaluator = vanilla_evaluator(X, y, model_factory, metric=metric, task=task, **evaluator_kwargs)
    searcher = searcher_cls(space, evaluator, random_state=random_state, **(searcher_kwargs or {}))
    if engine is not None:
        searcher.engine = engine
    if telemetry is not None:
        searcher.telemetry = telemetry
    searcher.method_name = _display_name(key)
    return searcher


def _display_name(key: str) -> str:
    base = key.rstrip("+")
    display = {
        "random": "random", "sha": "SHA", "hb": "HB", "bohb": "BOHB",
        "asha": "ASHA", "pasha": "PASHA", "dehb": "DEHB", "tpe": "TPE",
        "smac": "SMAC",
    }[base]
    return display + ("+" if key.endswith("+") else "")


@dataclass
class OptimizationOutcome:
    """Everything :func:`optimize` produces.

    Attributes
    ----------
    result:
        The raw :class:`~repro.bandit.SearchResult` of the run.
    model:
        The winning configuration refit on the full training set (the
        paper's final step), or ``None`` when ``refit=False``.
    train_score, wall_time:
        Full-train-set score of the refit model and total seconds including
        the refit.
    data_report:
        The :class:`~repro.guard.DataReport` of the entry validation when a
        guard policy was active, else ``None``.
    """

    result: SearchResult
    model: Any
    train_score: float
    wall_time: float
    data_report: Any = None

    @property
    def best_config(self) -> Dict[str, Any]:
        """The selected configuration ``tau*``."""
        return self.result.best_config


def optimize(
    X: np.ndarray,
    y: np.ndarray,
    space: SearchSpace,
    method: str = "sha+",
    metric: str = "accuracy",
    task: str = "classification",
    configurations: Optional[Sequence[Dict[str, Any]]] = None,
    n_configurations: Optional[int] = None,
    model_factory=None,
    random_state: Optional[int] = None,
    refit: bool = True,
    evaluator_kwargs: Optional[Dict[str, Any]] = None,
    searcher_kwargs: Optional[Dict[str, Any]] = None,
    engine=None,
    guard: Optional[str] = None,
    telemetry=None,
    warm_start: bool = False,
    checkpoint_dir=None,
) -> OptimizationOutcome:
    """Run hyperparameter optimization end to end.

    Pass ``engine=TrialEngine(executor=ParallelExecutor(4))`` to evaluate
    configurations on a process pool with memoization and fault tolerance;
    the fixed-seed search result is identical to the serial one.

    Pass ``telemetry=Telemetry(trace="run.trace.jsonl")`` to record a
    structured trace and metrics; recording is observational only, so the
    returned outcome is bitwise identical with telemetry on or off.

    Pass ``warm_start=True`` to resume each promoted configuration's
    training from its lower-rung checkpoint (``checkpoint_dir=`` makes the
    checkpoints durable across restarts); scores then reflect the extra
    optimisation steps, so warm and cold runs are two *different* —
    individually deterministic — experiments.

    Examples
    --------
    >>> from repro import optimize
    >>> from repro.datasets import load_dataset
    >>> from repro.experiments import paper_search_space
    >>> ds = load_dataset("australian", scale=0.3)
    >>> outcome = optimize(ds.X_train, ds.y_train, paper_search_space(4),
    ...                    method="sha+", n_configurations=8, random_state=0)
    >>> sorted(outcome.best_config) == sorted(paper_search_space(4).names)
    True
    """
    start = time.perf_counter()
    searcher = make_searcher(
        method,
        space,
        X,
        y,
        metric=metric,
        task=task,
        model_factory=model_factory,
        random_state=random_state,
        evaluator_kwargs=evaluator_kwargs,
        searcher_kwargs=searcher_kwargs,
        engine=engine,
        guard=guard,
        telemetry=telemetry,
        warm_start=warm_start,
        checkpoint_dir=checkpoint_dir,
    )
    result = searcher.fit(configurations=configurations, n_configurations=n_configurations)
    model = None
    train_score = float("nan")
    if refit:
        evaluator: SubsetCVEvaluator = searcher.evaluator
        model = evaluator.fit_full(result.best_config, random_state=random_state)
        train_score = float(evaluator.scorer(model, evaluator.X, evaluator.y))
    return OptimizationOutcome(
        result=result,
        model=model,
        train_score=train_score,
        wall_time=time.perf_counter() - start,
        data_report=getattr(searcher.evaluator, "data_report", None),
    )
