"""Prometheus text-format rendering of registries and live serve state.

The exposition format is the version-0.0.4 text format every Prometheus
scraper (and ``promtool``) understands::

    # HELP repro_engine_submitted_total Counter repro.engine.submitted
    # TYPE repro_engine_submitted_total counter
    repro_engine_submitted_total 69
    repro_serve_queue_depth{tenant="alpha"} 3

Rendering is **deterministic**: families sort by metric name, samples
sort by their label items, and values use ``repr`` formatting — so two
scrapes of an unchanged system are byte-identical and a ``diff`` of two
scrapes reads as exactly the metrics that moved.  Time-derived values
(uptime, rates-per-second) are deliberately not exported; a scraper
computes rates from counters and timestamps, and excluding them is what
makes idle scrapes diffable.

Three layers:

- :class:`Family` / :func:`render` — the format itself;
- :func:`registry_families` — a
  :class:`~repro.telemetry.metrics.MetricsRegistry` as counter, gauge
  and summary families (dotted names sanitized to underscores);
- :func:`serve_families` — the daemon's live operational state: jobs by
  state, per-tenant queue depth / running / quota / virtual clock,
  shared-cache hit rates, connection budget, degraded mode, per-tenant
  merged engine counters, and per-running-job trial progress plus rung
  occupancy per active bracket.

:func:`parse_prometheus` is the strict line-grammar reader the test
suite (and any in-repo consumer) validates scrapes with.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Family",
    "render",
    "registry_families",
    "render_registry",
    "serve_families",
    "parse_prometheus",
    "metric_name",
    "CONTENT_TYPE",
]

#: The Content-Type a /metrics response must declare.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

#: One exposition line: name, optional {labels}, value.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(raw: str, prefix: str = "repro") -> str:
    """Sanitize a dotted registry name into a legal Prometheus name."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", raw)
    if prefix:
        name = f"{prefix}_{name}"
    if not _NAME_OK.match(name):
        name = "_" + name
    return name


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class Family:
    """One metric family: a name, a type, help text and its samples.

    Samples are ``(labels, value)`` pairs where ``labels`` is a mapping
    (possibly empty).  ``suffixed`` samples (``_count``/``_sum`` of a
    summary) carry the suffix as the third tuple element.
    """

    __slots__ = ("name", "type", "help", "samples")

    def __init__(
        self,
        name: str,
        type_: str,
        help_: str,
        samples: Optional[Iterable[Tuple[Dict[str, Any], Any]]] = None,
    ) -> None:
        if not _NAME_OK.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if type_ not in ("counter", "gauge", "summary", "untyped"):
            raise ValueError(f"invalid metric type {type_!r}")
        self.name = name
        self.type = type_
        self.help = help_
        self.samples: List[Tuple[str, Tuple[Tuple[str, str], ...], Any]] = []
        for labels, value in samples or ():
            self.add(labels, value)

    def add(self, labels: Dict[str, Any], value: Any, suffix: str = "") -> "Family":
        """Append one sample (labels are canonicalized to sorted items)."""
        items = tuple(sorted((str(k), _escape_label(v)) for k, v in (labels or {}).items()))
        for key, _ in items:
            if not _LABEL_OK.match(key):
                raise ValueError(f"invalid label name {key!r}")
        self.samples.append((suffix, items, value))
        return self

    def render_lines(self) -> List[str]:
        """The family's exposition lines (samples in stable sorted order)."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.type}"]
        for suffix, items, value in sorted(self.samples, key=lambda s: (s[0], s[1])):
            labels = ",".join(f'{key}="{val}"' for key, val in items)
            label_blob = f"{{{labels}}}" if labels else ""
            lines.append(f"{self.name}{suffix}{label_blob} {_format_value(value)}")
        return lines


def render(families: Sequence[Family]) -> str:
    """Render families as one scrape body, sorted by family name."""
    lines: List[str] = []
    for family in sorted(families, key=lambda f: f.name):
        if family.samples:
            lines.extend(family.render_lines())
    return "\n".join(lines) + "\n" if lines else "\n"


# -- registry rendering --------------------------------------------------------


def registry_families(
    registry,
    prefix: str = "repro",
    labels: Optional[Dict[str, Any]] = None,
) -> List[Family]:
    """A :class:`MetricsRegistry` as counter/gauge/summary families.

    Counters get the conventional ``_total`` suffix; histograms render as
    summaries (``_count``/``_sum``) plus ``_min``/``_max`` gauge
    families, which round-trips everything
    :class:`~repro.telemetry.metrics.HistogramSummary` keeps.
    """
    labels = labels or {}
    families: List[Family] = []
    for raw, value in registry.counters().items():
        name = metric_name(raw, prefix) + "_total"
        families.append(
            Family(name, "counter", f"Counter {prefix}.{raw}").add(labels, value)
        )
    for raw, value in registry.gauges().items():
        families.append(
            Family(metric_name(raw, prefix), "gauge", f"Gauge {prefix}.{raw}").add(labels, value)
        )
    for raw, histogram in registry.histograms().items():
        base = metric_name(raw, prefix)
        summary = Family(base, "summary", f"Summary {prefix}.{raw}")
        summary.add(labels, histogram.count, suffix="_count")
        summary.add(labels, histogram.total, suffix="_sum")
        families.append(summary)
        families.append(
            Family(base + "_min", "gauge", f"Minimum observed {prefix}.{raw}").add(
                labels, histogram.minimum
            )
        )
        families.append(
            Family(base + "_max", "gauge", f"Maximum observed {prefix}.{raw}").add(
                labels, histogram.maximum
            )
        )
    return families


def render_registry(registry, prefix: str = "repro", labels: Optional[Dict[str, Any]] = None) -> str:
    """One registry straight to scrape text (the ``obs snapshot`` body)."""
    return render(registry_families(registry, prefix=prefix, labels=labels))


# -- live serve state ----------------------------------------------------------

#: Every job state the registry can hold — emitted even at zero so a
#: dashboard's series exist from the first scrape.
_JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Counter name prefix the engine uses for per-rung occupancy tallies.
_RUNG_COUNTER = re.compile(r"^engine\.rung_trials\.b(?P<bracket>-?\d+)\.r(?P<rung>-?\d+)$")

#: Gauge name the engine uses for mega-batch lane occupancy per rung
#: (fraction of a rung's batchable folds fused into stacked lanes).
_RUNG_OCCUPANCY = re.compile(
    r"^engine\.rung_occupancy\.b(?P<bracket>-?\d+)\.r(?P<rung>-?\d+)$"
)


def serve_families(daemon) -> List[Family]:
    """The daemon's live operational state as metric families.

    Reads only lock-cheap snapshots (the scheduler's own snapshot lock,
    plain attribute reads, and C-level dict copies of per-job registries)
    so a scrape can never block job dispatch.  Deliberately excludes
    wall-clock-derived values — see the module docstring.
    """
    families: List[Family] = []

    def gauge(name: str, help_: str) -> Family:
        family = Family(name, "gauge", help_)
        families.append(family)
        return family

    def counter(name: str, help_: str) -> Family:
        family = Family(name, "counter", help_)
        families.append(family)
        return family

    gauge("repro_serve_up", "Daemon liveness (always 1 while scrapeable)").add({}, 1)
    gauge("repro_serve_draining", "1 while the daemon refuses new jobs").add(
        {}, daemon.draining
    )
    gauge("repro_serve_degraded", "1 while durable writes are failing").add(
        {}, daemon.degraded_reason is not None
    )
    gauge("repro_serve_workers", "Configured job-executor threads").add(
        {}, daemon.n_workers
    )

    by_state = {state: 0 for state in _JOB_STATES}
    for record in daemon.registry.all():
        by_state[record.state] = by_state.get(record.state, 0) + 1
    jobs = gauge("repro_serve_jobs", "Jobs in the registry by state")
    for state in sorted(by_state):
        jobs.add({"state": state}, by_state[state])

    counter("repro_serve_recovered_jobs_total", "Jobs re-queued by crash recovery").add(
        {}, daemon.recovered_jobs
    )
    counter("repro_serve_shed_jobs_total", "Submits shed with 429").add(
        {}, daemon.shed_jobs
    )
    counter("repro_serve_deduped_jobs_total", "Jobs subscribed to an in-flight twin").add(
        {}, daemon.deduped_jobs
    )
    counter(
        "repro_serve_quarantined_records_total", "Corrupt job records quarantined"
    ).add({}, daemon.registry.quarantined)

    gauge("repro_serve_queue_limit", "Admission queue bound").add(
        {}, daemon.scheduler.max_queued
    )
    depth = gauge("repro_serve_queue_depth", "Queued jobs per tenant")
    running = gauge("repro_serve_running", "Running jobs per tenant")
    quota = gauge("repro_serve_quota", "Concurrency quota per tenant")
    vtime = gauge("repro_serve_vtime", "Fair-share virtual clock per tenant")
    for tenant, row in daemon.scheduler.snapshot().items():
        labels = {"tenant": tenant}
        depth.add(labels, row["queued"])
        running.add(labels, row["running"])
        quota.add(labels, row["quota"])
        vtime.add(labels, row["vtime"])

    connections = gauge("repro_serve_connections", "HTTP connection budget state")
    connections.add({"kind": "active"}, daemon._active_connections)
    connections.add({"kind": "peak"}, daemon.connections_peak)
    connections.add({"kind": "limit"}, daemon.max_connections)
    counter("repro_serve_connections_rejected_total", "Connections refused with 503").add(
        {}, daemon.connections_rejected
    )

    shared = daemon.shared.stats()
    gauge("repro_cache_contexts", "Evaluation contexts with a shared cache").add(
        {}, shared["contexts"]
    )
    gauge("repro_cache_entries", "Entries across shared evaluation caches").add(
        {}, shared["entries"]
    )
    counter("repro_cache_hits_total", "Shared-cache hits").add({}, shared["hits"])
    counter("repro_cache_misses_total", "Shared-cache misses").add({}, shared["misses"])
    gauge("repro_cache_hit_rate", "Shared-cache hit rate").add({}, shared["hit_rate"])
    gauge("repro_checkpoint_contexts", "Contexts with a checkpoint store").add(
        {}, shared["checkpoint_contexts"]
    )
    gauge("repro_checkpoints_stored", "Checkpoints held across stores").add(
        {}, shared["checkpoints_stored"]
    )

    tenant_jobs = counter("repro_tenant_jobs_total", "Finished jobs per tenant by outcome")
    tenant_trials = counter("repro_tenant_trials_total", "Trials run per tenant")
    tenant_cache = counter("repro_tenant_cache_total", "Cache lookups per tenant by outcome")
    tenant_engine = counter(
        "repro_tenant_engine_total",
        "Per-tenant engine telemetry counters (merged over finished jobs)",
    )
    for tenant, stats in sorted(daemon.registry.tenants().items()):
        labels = {"tenant": tenant}
        tenant_jobs.add({**labels, "outcome": "submitted"}, stats.submitted)
        tenant_jobs.add({**labels, "outcome": "completed"}, stats.completed)
        tenant_jobs.add({**labels, "outcome": "failed"}, stats.failed)
        tenant_jobs.add({**labels, "outcome": "cancelled"}, stats.cancelled)
        tenant_trials.add(labels, stats.trials)
        tenant_cache.add({**labels, "outcome": "hit"}, stats.cache_hits)
        tenant_cache.add({**labels, "outcome": "miss"}, stats.cache_misses)
        for raw, value in stats.metrics.counters().items():
            tenant_engine.add({**labels, "counter": metric_name(raw, "")}, value)

    live = getattr(daemon, "live_jobs", None)
    if live is not None:
        progress = gauge("repro_job_trials_done", "Settled trials per running job")
        rung_trials = gauge(
            "repro_job_rung_trials", "Trials settled per rung of each active bracket"
        )
        rung_occupancy = gauge(
            "repro_job_rung_occupancy",
            "Mega-batch lane occupancy per rung (fused folds / batchable folds)",
        )
        for record, telemetry in live.snapshot():
            labels = {"job_id": record.job_id, "tenant": record.spec.tenant}
            progress.add(labels, record.trials_done)
            for raw, value in telemetry.registry.counters().items():
                match = _RUNG_COUNTER.match(raw)
                if match is not None:
                    rung_trials.add(
                        {**labels, "bracket": match.group("bracket"), "rung": match.group("rung")},
                        value,
                    )
            for raw, value in telemetry.registry.gauges().items():
                match = _RUNG_OCCUPANCY.match(raw)
                if match is not None:
                    rung_occupancy.add(
                        {**labels, "bracket": match.group("bracket"), "rung": match.group("rung")},
                        value,
                    )
    return families


# -- parsing (validation-grade) ------------------------------------------------


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Strictly parse an exposition body; raises ``ValueError`` on bad lines.

    Returns ``{metric_name: [(labels, value), ...]}``.  Used by the test
    suite to assert every scrape parses line by line, and by anything in
    the repo that wants to read its own exporter back.
    """
    out: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if line.startswith("#"):
            raise ValueError(f"line {number}: bad comment {line!r}")
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {number}: not a sample line: {line!r}")
        labels: Dict[str, str] = {}
        blob = match.group("labels")
        if blob:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(blob):
                labels[pair.group(1)] = pair.group(2)
                consumed = pair.end()
            remainder = blob[consumed:].strip(", ")
            if remainder:
                raise ValueError(f"line {number}: bad labels {blob!r}")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {number}: bad value {match.group('value')!r}") from exc
        out.setdefault(match.group("name"), []).append((labels, value))
    return out
