"""Flight recorder: a bounded in-process ring of recent operational events.

A :class:`FlightRecorder` keeps the last ``capacity`` events (span closes,
guard trips, chaos injections, fault-point firings, job lifecycle marks)
in a fixed-size ring with lock-free appends — one slot store plus one
integer bump per event, cheap enough to leave armed in production paths.
When something kills the process, the ring is what the post-mortem reads:

- :meth:`FlightRecorder.dump` writes the ring atomically to
  ``flightrec-<pid>-<reason>.json`` (temp file + rename, so a dump can
  never itself be torn);
- processes that can *see* death coming (unhandled exception, SIGTERM,
  a fault-injected crash action, a watchdog retiring a hung worker) dump
  explicitly via the hooks in :func:`install`;
- processes that cannot (SIGKILL, power cut) are covered by the optional
  *spill*: every ``spill_every`` events — and always on ``sticky``
  events like a job dispatch — the ring is snapshotted to
  ``flightrec-<pid>-live.json``, so the file that survives an abrupt
  kill names what was in flight.

The module-global install mirrors :mod:`repro.faults.points`: disarmed,
:func:`note` is a ``None`` check and returns; armed, it appends to the
installed recorder.  A forked worker inherits the parent's installed
recorder and dump directory — ``os.getpid()`` is read at dump time, so
each process's dumps are its own.

Everything here is stdlib-only and imports nothing from the rest of the
repo, so the innermost layers (fault points, span tracer, collectors)
can call :func:`note` without import cycles.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "FLIGHTREC_SCHEMA_VERSION",
    "FlightRecorder",
    "install",
    "uninstall",
    "installed",
    "note",
    "dump_now",
]

#: Version stamped into every dump file; bump when the schema changes.
FLIGHTREC_SCHEMA_VERSION = 1

#: Default ring capacity (events retained).
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Fixed-capacity event ring with atomic crash dumps.

    Parameters
    ----------
    capacity:
        Events retained; older events are overwritten in ring order.
    dump_dir:
        Directory crash dumps and live spills are written to (created on
        first dump).  ``None`` disables dumping — the ring still records,
        which is what the engine-embedded recorder does until a daemon
        or CLI gives it a home.
    spill_every:
        Snapshot the ring to ``flightrec-<pid>-live.json`` every N
        recorded events (0 disables periodic spilling).  Sticky events
        (``note(..., sticky=True)``) always spill immediately.
    clock:
        Injectable monotonic clock for event timestamps.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        dump_dir: Optional[Union[str, Path]] = None,
        spill_every: int = 0,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.spill_every = spill_every
        self.clock = clock
        self._ring: List[Optional[Dict[str, Any]]] = [None] * capacity
        self._seq = 0
        self.dumps_written = 0

    # -- recording -------------------------------------------------------------

    def record(self, kind: str, sticky: bool = False, **fields: Any) -> None:
        """Append one event (lock-free: one slot store, one integer bump).

        Two racing appends can claim the same sequence number and one
        event may be lost — an accepted trade for keeping the hot path
        free of locks; the ring is diagnostics, not a ledger.
        """
        seq = self._seq
        self._seq = seq + 1
        event = {"seq": seq, "t": round(self.clock(), 6), "kind": kind}
        if fields:
            event.update(fields)
        self._ring[seq % self.capacity] = event
        if self.dump_dir is not None and (
            sticky or (self.spill_every and (seq + 1) % self.spill_every == 0)
        ):
            self._spill()

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first (a copy; safe to mutate)."""
        seq = self._seq
        if seq <= self.capacity:
            window = self._ring[:seq]
        else:
            pivot = seq % self.capacity
            window = self._ring[pivot:] + self._ring[:pivot]
        return [dict(event) for event in window if event is not None]

    def __len__(self) -> int:
        return min(self._seq, self.capacity)

    # -- dumping ---------------------------------------------------------------

    def payload(self, reason: str) -> Dict[str, Any]:
        """The JSON-able dump body (schema documented in OBSERVABILITY.md)."""
        events = self.events()
        return {
            "schema_version": FLIGHTREC_SCHEMA_VERSION,
            "pid": os.getpid(),
            "reason": reason,
            "created_unix": round(time.time(), 3),
            "events_recorded": self._seq,
            "events_retained": len(events),
            "capacity": self.capacity,
            "events": events,
        }

    def dump(self, reason: str, directory: Optional[Union[str, Path]] = None) -> Optional[Path]:
        """Atomically write ``flightrec-<pid>-<reason>.json``; returns the path.

        Returns ``None`` when no directory is configured, and swallows
        write errors — a post-mortem writer must never turn a crash into
        a different crash.
        """
        target_dir = Path(directory) if directory is not None else self.dump_dir
        if target_dir is None:
            return None
        safe_reason = "".join(c if c.isalnum() or c in "-_." else "-" for c in reason)
        path = target_dir / f"flightrec-{os.getpid()}-{safe_reason}.json"
        try:
            self._write_atomic(path, self.payload(reason))
        except OSError:
            return None
        self.dumps_written += 1
        return path

    def _spill(self) -> None:
        """Snapshot the ring to the live file (best-effort, atomic)."""
        path = self.dump_dir / f"flightrec-{os.getpid()}-live.json"
        try:
            self._write_atomic(path, self.payload("live"))
        except OSError:
            pass

    @staticmethod
    def _write_atomic(path: Path, payload: Dict[str, Any]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=False) + "\n")
        os.replace(tmp, path)


#: The installed recorder, or ``None`` (the common case — zero cost).
_recorder: Optional[FlightRecorder] = None
_previous_excepthook = None


def installed() -> Optional[FlightRecorder]:
    """The process-wide recorder, or ``None`` when none is installed."""
    return _recorder


def note(kind: str, sticky: bool = False, **fields: Any) -> None:
    """Record one event on the installed recorder.  No-op unless installed."""
    recorder = _recorder
    if recorder is None:
        return
    recorder.record(kind, sticky=sticky, **fields)


def dump_now(reason: str) -> Optional[Path]:
    """Dump the installed recorder (``None`` when absent or undumpable)."""
    recorder = _recorder
    if recorder is None:
        return None
    return recorder.dump(reason)


def _crash_excepthook(exc_type, exc, tb) -> None:
    """sys.excepthook chain link: dump the ring, then defer to the previous."""
    recorder = _recorder
    if recorder is not None:
        recorder.record(
            "crash.exception",
            error=f"{getattr(exc_type, '__name__', exc_type)}: {exc}",
        )
        recorder.dump("exception")
    hook = _previous_excepthook or sys.__excepthook__
    hook(exc_type, exc, tb)


def _fault_observer(site: str, index: int, action: Optional[str]) -> None:
    """repro.faults observer: record every armed hit, dump before actions.

    Registered with :func:`repro.faults.points.set_fault_observer` by
    :func:`install`.  The dump happens *before* the action fires because
    crash actions exit via ``os._exit`` — nothing downstream of the
    action ever runs.
    """
    recorder = _recorder
    if recorder is None:
        return
    if action is None:
        recorder.record("fault.hit", site=site, hit=index)
        return
    recorder.record("fault.fire", site=site, hit=index, action=action)
    recorder.dump(f"fault-{site}")


def install(
    recorder: Optional[FlightRecorder] = None,
    dump_dir: Optional[Union[str, Path]] = None,
    capacity: int = DEFAULT_CAPACITY,
    spill_every: int = 0,
    hook_exceptions: bool = True,
) -> FlightRecorder:
    """Install a process-wide flight recorder and wire its crash hooks.

    Idempotent in spirit: installing over an existing recorder replaces
    it (the daemon owns the process; tests install fresh ones per case).
    Hooks wired here:

    - ``sys.excepthook`` — dump on any unhandled exception (chains to the
      previously-installed hook);
    - the :mod:`repro.faults.points` observer — record every armed
      fault-point hit and dump *before* an injected action fires.

    SIGTERM and watchdog-kill dumps are wired at their owners (the serve
    daemon's signal handler, the parallel executor's retire path), which
    know the reason strings.
    """
    global _recorder, _previous_excepthook
    if recorder is None:
        recorder = FlightRecorder(
            capacity=capacity, dump_dir=dump_dir, spill_every=spill_every
        )
    elif dump_dir is not None:
        recorder.dump_dir = Path(dump_dir)
    _recorder = recorder
    if hook_exceptions and _previous_excepthook is None:
        _previous_excepthook = sys.excepthook
        sys.excepthook = _crash_excepthook
    from ..faults import points as _points

    _points.set_fault_observer(_fault_observer)
    return recorder


def uninstall() -> Optional[FlightRecorder]:
    """Remove the installed recorder (hooks become no-ops); returns it."""
    global _recorder
    previous = _recorder
    _recorder = None
    try:
        from ..faults import points as _points

        _points.set_fault_observer(None)
    except ImportError:  # interpreter teardown
        pass
    return previous
