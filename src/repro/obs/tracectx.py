"""Trace contexts: one identity for a piece of work across processes.

A :class:`TraceContext` is the minimal cross-process trace envelope —
a ``trace_id`` naming the logical operation (a serve job, a CLI run) and
the span id of the parent under which any downstream spans should hang.
It exists so the spans one operation produces in *different* places —
the daemon thread that dispatched a job, the engine that ran it, the
worker processes that fitted its folds — can be re-joined into one tree
by ``tools/trace_view.py``:

- the serve daemon mints a context per job (``trace_id`` = the job id,
  which is already unique and deterministic for a given submission);
- :class:`repro.telemetry.Telemetry` stamps the context into the trace
  file **header** (``trace_id`` / ``parent_span`` fields), so every span
  in that file is claimed by the trace without per-span overhead;
- worker-side spans ride home on the PR-4 result sidecar and are grafted
  into the same file, carrying their origin ``pid``/``worker`` as span
  attributes (:meth:`repro.telemetry.spans.Tracer.emit`), which is what
  makes the process boundary visible in the merged Chrome trace.

Contexts are tracked per *thread*: the serve daemon runs several jobs
concurrently in worker threads and each must see only its own context.
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = ["TraceContext", "mint", "current_context", "use_context"]


class TraceContext:
    """Identity of one logical operation across processes.

    Attributes
    ----------
    trace_id:
        Stable string naming the operation (a job id, or a digest of the
        run's identity for CLI runs).
    parent_span:
        Span id in the *parent* trace under which this context's spans
        logically hang, or ``None`` for a root context.
    origin_pid:
        Pid of the process that minted the context.
    """

    __slots__ = ("trace_id", "parent_span", "origin_pid")

    def __init__(
        self,
        trace_id: str,
        parent_span: Optional[int] = None,
        origin_pid: Optional[int] = None,
    ) -> None:
        self.trace_id = str(trace_id)
        self.parent_span = parent_span
        self.origin_pid = origin_pid if origin_pid is not None else os.getpid()

    def child(self, parent_span: int) -> "TraceContext":
        """The same trace, re-rooted under ``parent_span``."""
        return TraceContext(self.trace_id, parent_span=parent_span, origin_pid=self.origin_pid)

    def to_wire(self) -> Dict[str, Any]:
        """Compact JSON-able form (header fields, sidecar payloads)."""
        wire: Dict[str, Any] = {"trace_id": self.trace_id, "origin_pid": self.origin_pid}
        if self.parent_span is not None:
            wire["parent_span"] = self.parent_span
        return wire

    @classmethod
    def from_wire(cls, wire: Optional[Dict[str, Any]]) -> Optional["TraceContext"]:
        """Inverse of :meth:`to_wire`; ``None`` in, ``None`` out."""
        if not wire or "trace_id" not in wire:
            return None
        return cls(
            wire["trace_id"],
            parent_span=wire.get("parent_span"),
            origin_pid=wire.get("origin_pid"),
        )

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"parent_span={self.parent_span}, origin_pid={self.origin_pid})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.parent_span == other.parent_span
        )


def mint(*parts: Any) -> TraceContext:
    """Deterministically mint a context from identity material.

    Equal inputs produce equal trace ids, so a resumed job or a re-run
    of the same spec lands in the same logical trace — which is exactly
    what an operator diffing two attempts wants.
    """
    blob = "\x1f".join(str(part) for part in parts)
    return TraceContext(hashlib.blake2b(blob.encode("utf-8"), digest_size=8).hexdigest())


_local = threading.local()


def current_context() -> Optional[TraceContext]:
    """The context installed for the current thread, if any."""
    return getattr(_local, "context", None)


@contextmanager
def use_context(context: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Install ``context`` as the current thread's trace context."""
    previous = getattr(_local, "context", None)
    _local.context = context
    try:
        yield context
    finally:
        _local.context = previous
