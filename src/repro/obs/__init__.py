"""repro.obs — the operational observability plane.

Three legs, one package:

- :mod:`repro.obs.prom` — Prometheus-text rendering of the telemetry
  :class:`~repro.telemetry.metrics.MetricsRegistry` and of the serve
  daemon's live state (``GET /metrics``, ``repro obs snapshot``);
- :mod:`repro.obs.tracectx` — :class:`TraceContext`, the cross-process
  trace identity stitched through serve → engine → workers;
- :mod:`repro.obs.flightrec` — the crash-dumping flight recorder ring.

Everything is opt-in and bitwise-neutral on run outputs: the exporter
only *reads* registries, contexts ride existing sidecars, and the
flight recorder's hooks are ``None``-check no-ops until installed.
"""

from .flightrec import (
    DEFAULT_CAPACITY,
    FLIGHTREC_SCHEMA_VERSION,
    FlightRecorder,
    dump_now,
    install,
    installed,
    note,
    uninstall,
)
from .prom import (
    CONTENT_TYPE,
    Family,
    parse_prometheus,
    registry_families,
    render,
    render_registry,
    serve_families,
)
from .tracectx import TraceContext, current_context, mint, use_context

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_CAPACITY",
    "FLIGHTREC_SCHEMA_VERSION",
    "Family",
    "FlightRecorder",
    "TraceContext",
    "current_context",
    "dump_now",
    "install",
    "installed",
    "mint",
    "note",
    "parse_prometheus",
    "registry_families",
    "render",
    "render_registry",
    "serve_families",
    "uninstall",
    "use_context",
]
