"""Data-integrity guard layer: validation, degradation, numerical hardening.

Real-world datasets break the assumptions the evaluation pipeline was
built on: features carry NaN/inf cells, columns are constant or
duplicated, groups end up smaller than the fold counts drawn from them,
and learners diverge into non-finite weights.  This package is the
single place those pathologies are detected, repaired (or refused) and
*recorded*:

- :func:`~repro.guard.validate.validate_dataset` sanitises a dataset at
  pipeline entry under a ``strict | repair | warn | off`` policy and
  returns a structured :class:`~repro.guard.validate.DataReport`;
- :class:`~repro.guard.events.GuardLog` collects typed
  :class:`~repro.guard.events.GuardEvent` records for every graceful
  degradation downstream code performs — shrunken fold counts, re-seeded
  empty clusters, clamped scores, aborted diverging fits — so nothing
  degrades silently;
- events ride on each
  :class:`~repro.bandit.base.EvaluationResult` into the engine, where
  they are counted in :class:`~repro.engine.EngineStats` and persisted
  by the run journal.

See ``docs/ROBUSTNESS.md`` for the full event taxonomy and policy
semantics.
"""

from .events import EVENT_KINDS, GuardEvent, GuardLog
from .validate import (
    GUARD_POLICIES,
    DataIssue,
    DataReport,
    GuardError,
    GuardWarning,
    validate_dataset,
)

__all__ = [
    "DataIssue",
    "DataReport",
    "EVENT_KINDS",
    "GUARD_POLICIES",
    "GuardError",
    "GuardEvent",
    "GuardLog",
    "GuardWarning",
    "validate_dataset",
]
