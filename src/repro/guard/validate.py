"""Dataset validation and sanitisation at pipeline entry.

:func:`validate_dataset` is the guard layer's front door: every dataset
headed for grouping / fold construction / learner training passes through
it once, under one of four policies:

- ``strict`` — any integrity issue raises :class:`GuardError`;
- ``repair`` — issues are fixed in a copy (median imputation, column
  drops, row drops) and recorded;
- ``warn`` — issues are recorded and emitted as :class:`GuardWarning`
  but the data is returned untouched;
- ``off`` — no checks at all (the historical behaviour).

Whatever the policy, the function returns a structured
:class:`DataReport` so callers (CLI summaries, benchmarks, tests) can see
exactly what was found and what was done about it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .events import GuardLog

__all__ = [
    "GUARD_POLICIES",
    "DataIssue",
    "DataReport",
    "GuardError",
    "GuardWarning",
    "validate_dataset",
]

#: Valid values of the ``policy`` argument / CLI ``--guard`` flag.
GUARD_POLICIES = ("strict", "repair", "warn", "off")


class GuardError(ValueError):
    """A data-integrity issue rejected under the ``strict`` policy."""


class GuardWarning(UserWarning):
    """A data-integrity issue surfaced under the ``warn`` policy."""


@dataclass(frozen=True)
class DataIssue:
    """One integrity finding of :func:`validate_dataset`.

    Attributes
    ----------
    kind:
        Event-taxonomy kind (``data.*``, see :mod:`repro.guard.events`).
    detail:
        Human-readable description.
    n_affected:
        Cells / columns / rows / classes concerned.
    repaired:
        Whether the returned data had the issue fixed.
    """

    kind: str
    detail: str
    n_affected: int = 0
    repaired: bool = False

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON payloads."""
        return {
            "kind": self.kind,
            "detail": self.detail,
            "n_affected": self.n_affected,
            "repaired": self.repaired,
        }


@dataclass
class DataReport:
    """Structured outcome of one :func:`validate_dataset` call.

    Attributes
    ----------
    policy:
        The policy the validation ran under.
    n_samples_in, n_samples_out:
        Row counts before / after repair (rows only drop under ``repair``).
    n_features_in, n_features_out:
        Column counts before / after repair.
    issues:
        Every finding, in detection order.
    """

    policy: str
    n_samples_in: int = 0
    n_samples_out: int = 0
    n_features_in: int = 0
    n_features_out: int = 0
    issues: List[DataIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no issue was found."""
        return not self.issues

    @property
    def n_repaired(self) -> int:
        """Number of issues the returned data had fixed."""
        return sum(1 for issue in self.issues if issue.repaired)

    def summary(self) -> str:
        """One-line human summary (used by the CLI run report)."""
        if self.ok:
            return f"guard[{self.policy}]: data clean"
        parts = ", ".join(
            f"{issue.kind.split('.', 1)[1]}={issue.n_affected}" for issue in self.issues
        )
        return (
            f"guard[{self.policy}]: {len(self.issues)} issue(s) "
            f"({self.n_repaired} repaired): {parts}"
        )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON payloads."""
        return {
            "policy": self.policy,
            "n_samples_in": self.n_samples_in,
            "n_samples_out": self.n_samples_out,
            "n_features_in": self.n_features_in,
            "n_features_out": self.n_features_out,
            "issues": [issue.as_dict() for issue in self.issues],
        }


def _finite_column_median(column: np.ndarray) -> float:
    """Median of the finite entries; 0.0 when the whole column is bad."""
    finite = column[np.isfinite(column)]
    return float(np.median(finite)) if len(finite) else 0.0


def validate_dataset(
    X: np.ndarray,
    y: np.ndarray,
    policy: str = "repair",
    task: str = "classification",
    guard: Optional[GuardLog] = None,
    max_label_fraction: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray, DataReport]:
    """Check (and under ``repair`` fix) a dataset's integrity.

    Checks, in order: non-finite feature cells, zero-variance columns,
    exact duplicate columns, non-finite regression targets, and label
    cardinality (single-class / near-unique labels for classification).
    Shape problems — length mismatch, empty data, non-2-D features —
    raise :class:`GuardError` under every policy, because no repair is
    meaningful.

    Parameters
    ----------
    X, y:
        Features (coerced to a 2-D float array) and targets.
    policy:
        One of :data:`GUARD_POLICIES`.
    task:
        ``"classification"`` or ``"regression"`` — decides the label
        checks.
    guard:
        Optional :class:`~repro.guard.events.GuardLog`; every issue is
        mirrored into it as a ``data.*`` event.
    max_label_fraction:
        Classification labels with more than this fraction of distinct
        values per sample are flagged ``data.high_cardinality``.

    Returns
    -------
    tuple
        ``(X, y, report)``; the arrays are copies only when something was
        repaired.
    """
    if policy not in GUARD_POLICIES:
        raise ValueError(f"policy must be one of {GUARD_POLICIES}, got {policy!r}")

    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise GuardError(f"X must be 2-dimensional, got shape {X.shape}")
    y = np.asarray(y)
    if y.ndim != 1:
        y = y.ravel()
    if len(y) != X.shape[0]:
        raise GuardError(f"X and y have inconsistent lengths: {X.shape[0]} != {len(y)}")
    if X.shape[0] == 0:
        raise GuardError("dataset is empty")

    report = DataReport(
        policy=policy,
        n_samples_in=X.shape[0],
        n_samples_out=X.shape[0],
        n_features_in=X.shape[1],
        n_features_out=X.shape[1],
    )
    if policy == "off":
        return X, y, report

    repair = policy == "repair"

    def found(kind: str, detail: str, n_affected: int, repaired: bool) -> None:
        report.issues.append(
            DataIssue(kind=kind, detail=detail, n_affected=n_affected, repaired=repaired)
        )
        if guard is not None:
            guard.record(kind, detail, n_affected=n_affected, repaired=repaired)
        if policy == "strict":
            raise GuardError(f"strict guard: {detail}")
        if policy == "warn":
            warnings.warn(detail, GuardWarning, stacklevel=3)

    # 1. Non-finite feature cells -> column-median imputation.
    bad_cells = ~np.isfinite(X)
    n_bad = int(bad_cells.sum())
    if n_bad:
        if repair:
            X = X.copy()
            for column_index in np.flatnonzero(bad_cells.any(axis=0)):
                column = X[:, column_index]
                column[bad_cells[:, column_index]] = _finite_column_median(column)
        found(
            "data.nonfinite_cells",
            f"{n_bad} NaN/inf feature cell(s)"
            + (" imputed with column medians" if repair else ""),
            n_bad,
            repair,
        )

    # 2. Non-finite regression targets -> drop the rows (no sane imputation).
    if task == "regression" and np.issubdtype(y.dtype, np.number):
        bad_rows = ~np.isfinite(y.astype(float))
        n_bad_rows = int(bad_rows.sum())
        if n_bad_rows:
            if n_bad_rows == len(y):
                raise GuardError("every regression target is non-finite")
            if repair:
                X, y = X[~bad_rows], y[~bad_rows]
                report.n_samples_out = X.shape[0]
            found(
                "data.nonfinite_targets",
                f"{n_bad_rows} non-finite target(s)" + (" dropped" if repair else ""),
                n_bad_rows,
                repair,
            )

    # 3. Zero-variance columns (constant features carry no signal and break
    #    normalisers); keep at least one column even if all are constant.
    constant = np.all(X == X[:1], axis=0) if X.shape[0] else np.zeros(X.shape[1], bool)
    n_constant = int(constant.sum())
    if n_constant:
        droppable = repair and n_constant < X.shape[1]
        if droppable:
            X = X[:, ~constant]
        found(
            "data.constant_columns",
            f"{n_constant} constant feature column(s)" + (" dropped" if droppable else ""),
            n_constant,
            droppable,
        )

    # 4. Exact duplicate columns (later copies dropped under repair).
    duplicate = np.zeros(X.shape[1], dtype=bool)
    seen: Dict[bytes, int] = {}
    for column_index in range(X.shape[1]):
        fingerprint = X[:, column_index].tobytes()
        if fingerprint in seen:
            duplicate[column_index] = True
        else:
            seen[fingerprint] = column_index
    n_duplicate = int(duplicate.sum())
    if n_duplicate:
        if repair:
            X = X[:, ~duplicate]
        found(
            "data.duplicate_columns",
            f"{n_duplicate} duplicate feature column(s)" + (" dropped" if repair else ""),
            n_duplicate,
            repair,
        )
    report.n_features_out = X.shape[1]

    # 5. Label cardinality (classification): single-class data cannot be
    #    learned from (downstream degrades to a constant predictor), and
    #    near-unique labels usually mean a regression target was mislabeled.
    if task == "classification":
        n_classes = len(np.unique(y))
        if n_classes < 2:
            found(
                "data.single_class",
                "labels contain a single class; models degrade to a constant predictor",
                n_classes,
                False,
            )
        elif n_classes > max(2, int(max_label_fraction * len(y))):
            found(
                "data.high_cardinality",
                f"{n_classes} distinct labels over {len(y)} samples "
                "(is this a regression target?)",
                n_classes,
                False,
            )

    return X, y, report
