"""Typed guard events: the audit trail of every graceful degradation.

Whenever guarded code repairs, clamps, shrinks or substitutes something
instead of crashing, it records a :class:`GuardEvent` into a
:class:`GuardLog`.  Events are plain data (kind + human detail + JSON-able
context), so they serialise into the run journal and survive process
boundaries by riding on
:attr:`~repro.bandit.base.EvaluationResult.guard_events`.

The ``kind`` vocabulary is dot-namespaced by pipeline stage:

========================  ====================================================
kind                      meaning
========================  ====================================================
``data.nonfinite_cells``  NaN/inf feature cells found (imputed under repair)
``data.nonfinite_targets``  NaN/inf regression targets (rows dropped)
``data.constant_columns``  zero-variance feature columns (dropped)
``data.duplicate_columns``  exact duplicate feature columns (dropped)
``data.single_class``     classification labels hold one class
``data.high_cardinality``  label cardinality close to the sample count
``grouping.n_groups_shrunk``  requested ``v`` exceeded the sample count
``grouping.empty_group_refilled``  Operation 1 left a group empty
``grouping.recluster_fallback``  the ``r_group`` iteration ran out of points
``folds.k_shrunk``        fold counts reduced to fit a small subset
``folds.special_group_reused``  fewer distinct groups than ``k_spe``
``folds.single_class_train``  a training fold held one class
``learner.diverged``      a fit was aborted on exploding / non-finite loss
``learner.fit_error``     a fit raised; the fold was scored at the floor
``scoring.nonfinite_fold``  a non-finite fold score was clamped/dropped
``scoring.gamma_clamped``  an out-of-range sampling percentage was clamped
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["EVENT_KINDS", "GuardEvent", "GuardLog"]

#: The documented event vocabulary (unknown kinds are allowed but new code
#: should extend this set so the taxonomy stays discoverable).
EVENT_KINDS = frozenset(
    {
        "data.nonfinite_cells",
        "data.nonfinite_targets",
        "data.constant_columns",
        "data.duplicate_columns",
        "data.single_class",
        "data.high_cardinality",
        "grouping.n_groups_shrunk",
        "grouping.empty_group_refilled",
        "grouping.recluster_fallback",
        "folds.k_shrunk",
        "folds.special_group_reused",
        "folds.single_class_train",
        "learner.diverged",
        "learner.fit_error",
        "scoring.nonfinite_fold",
        "scoring.gamma_clamped",
    }
)


@dataclass(frozen=True)
class GuardEvent:
    """One recorded degradation.

    Attributes
    ----------
    kind:
        Dot-namespaced event type (see the module table).
    detail:
        Human-readable one-liner.
    context:
        JSON-able scalars pinning down what happened (counts, before/after
        values); keep values to numbers and short strings so events
        serialise into the journal unchanged.
    """

    kind: str
    detail: str = ""
    context: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form used on the wire (journal, results JSON)."""
        payload: Dict[str, Any] = {"kind": self.kind, "detail": self.detail}
        if self.context:
            payload["context"] = dict(self.context)
        return payload

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "GuardEvent":
        """Inverse of :meth:`as_dict`."""
        return GuardEvent(
            kind=str(data.get("kind", "unknown")),
            detail=str(data.get("detail", "")),
            context=dict(data.get("context") or {}),
        )


class GuardLog:
    """Ordered, picklable recorder of :class:`GuardEvent` objects.

    Guarded code receives a log (or ``None`` — recording is always
    optional) and calls :meth:`record`; consumers read :attr:`events`,
    :meth:`counts` or :meth:`as_dicts`.  A log is deliberately cheap:
    recording appends to a list, nothing else, so guards stay well under
    the <5% overhead budget.

    Parameters
    ----------
    policy:
        The guard policy this log was created under (informational; the
        policy is enforced by the code doing the recording).
    """

    def __init__(self, policy: Optional[str] = None) -> None:
        self.policy = policy
        self.events: List[GuardEvent] = []

    def record(self, kind: str, detail: str = "", **context: Any) -> GuardEvent:
        """Append one event and return it."""
        event = GuardEvent(kind=kind, detail=detail, context=context)
        self.events.append(event)
        return event

    def counts(self) -> Dict[str, int]:
        """Event count per kind, insertion-ordered."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def as_dicts(self) -> List[Dict[str, Any]]:
        """All events in wire form (the shape stored on evaluation results)."""
        return [event.as_dict() for event in self.events]

    def extend(self, events: Iterable[GuardEvent]) -> None:
        """Append events recorded elsewhere (e.g. merged from a worker)."""
        self.events.extend(events)

    def clear(self) -> None:
        """Drop all recorded events (the per-evaluation reset)."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # An empty log is still a real log: truthiness follows existence,
        # not event count, so `if guard:` guards on presence.
        return True

    def __repr__(self) -> str:
        return f"GuardLog(policy={self.policy!r}, events={len(self.events)})"
