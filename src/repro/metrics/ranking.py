"""Ranking metrics for configuration-ordering quality.

The paper's cross-validation experiments (Figures 5-7, Table V) compare the
*predicted* ranking of hyperparameter configurations (by CV score) to the
*actual* ranking (by full test accuracy) with nDCG.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["dcg_score", "ndcg_score", "ranking_from_scores"]


def ranking_from_scores(scores) -> np.ndarray:
    """Indices ordering items from best to worst score (ties stable)."""
    scores = np.asarray(scores, dtype=float)
    # Stable mergesort keeps deterministic output when scores tie.
    return np.argsort(-scores, kind="stable")


def dcg_score(relevance_in_rank_order, k: Optional[int] = None) -> float:
    """Discounted cumulative gain of a relevance sequence already in rank order.

    Uses the standard gain ``rel_i / log2(i + 2)`` for rank position ``i``
    (0-based).
    """
    relevance = np.asarray(relevance_in_rank_order, dtype=float)
    if k is not None:
        relevance = relevance[:k]
    if relevance.size == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(relevance.size) + 2.0)
    return float((relevance * discounts).sum())


def ndcg_score(true_relevance, predicted_scores, k: Optional[int] = None) -> float:
    """Normalised DCG of ranking items by ``predicted_scores``.

    Parameters
    ----------
    true_relevance:
        Ground-truth quality of each item (e.g. a configuration's test
        accuracy).  Values are shifted to be non-negative, which leaves the
        induced ordering — and therefore the metric's meaning — unchanged.
    predicted_scores:
        Scores used to produce the evaluated ranking (e.g. CV scores).
    k:
        Optional truncation depth.

    Returns
    -------
    float
        nDCG in ``[0, 1]``; 1 means the predicted ranking matches an ideal
        ordering of the true relevance.
    """
    true_relevance = np.asarray(true_relevance, dtype=float)
    predicted_scores = np.asarray(predicted_scores, dtype=float)
    if true_relevance.shape[0] != predicted_scores.shape[0]:
        raise ValueError(
            "true_relevance and predicted_scores have inconsistent lengths: "
            f"{true_relevance.shape[0]} != {predicted_scores.shape[0]}"
        )
    if true_relevance.shape[0] == 0:
        raise ValueError("ndcg_score requires at least one item")
    shifted = true_relevance - true_relevance.min()
    predicted_order = ranking_from_scores(predicted_scores)
    ideal_order = ranking_from_scores(shifted)
    dcg = dcg_score(shifted[predicted_order], k=k)
    ideal = dcg_score(shifted[ideal_order], k=k)
    if ideal == 0.0:
        # All items equally relevant: any ranking is perfect.
        return 1.0
    return dcg / ideal
