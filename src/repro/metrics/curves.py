"""Threshold-curve metrics: ROC AUC and average precision.

Not reported in the paper's tables but standard for the imbalanced
workloads it evaluates (fraud, machine), and used by the extension
examples.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["roc_curve", "roc_auc_score", "average_precision_score"]


def _validate(y_true, y_score):
    y_true = np.asarray(y_true).ravel()
    y_score = np.asarray(y_score, dtype=float).ravel()
    if y_true.shape[0] != y_score.shape[0]:
        raise ValueError(
            f"y_true and y_score have inconsistent lengths: {y_true.shape[0]} != {y_score.shape[0]}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("metrics require at least one sample")
    positives = y_true == 1
    if positives.all() or (~positives).all():
        raise ValueError("ROC/AP require both classes present in y_true")
    return positives.astype(float), y_score


def roc_curve(y_true, y_score) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """False-positive rate, true-positive rate and thresholds.

    ``y_true`` uses 1 for the positive class; thresholds are the distinct
    scores in decreasing order.
    """
    positives, y_score = _validate(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")
    sorted_scores = y_score[order]
    sorted_positives = positives[order]

    # Cut only where the score changes (ties share a point).
    distinct = np.flatnonzero(np.diff(sorted_scores)) if len(sorted_scores) > 1 else np.array([], dtype=int)
    cut_points = np.concatenate([distinct, [len(sorted_scores) - 1]])

    tps = np.cumsum(sorted_positives)[cut_points]
    fps = (cut_points + 1) - tps
    total_positive = positives.sum()
    total_negative = len(positives) - total_positive

    tpr = np.concatenate([[0.0], tps / total_positive])
    fpr = np.concatenate([[0.0], fps / total_negative])
    thresholds = np.concatenate([[np.inf], sorted_scores[cut_points]])
    return fpr, tpr, thresholds


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve (trapezoidal rule)."""
    fpr, tpr, _ = roc_curve(y_true, y_score)
    return float(np.trapezoid(tpr, fpr))


def average_precision_score(y_true, y_score) -> float:
    """Average precision: the step-function area under precision-recall."""
    positives, y_score = _validate(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")
    sorted_positives = positives[order]
    tps = np.cumsum(sorted_positives)
    precision = tps / np.arange(1, len(tps) + 1)
    recall = tps / positives.sum()
    recall_steps = np.diff(np.concatenate([[0.0], recall]))
    return float((precision * recall_steps).sum())
