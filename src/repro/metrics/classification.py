"""Classification metrics: accuracy, precision, recall, F1, confusion matrix.

Standard definitions matching scikit-learn; the paper reports accuracy for
balanced datasets and F1 for imbalanced ones (Table IV).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
]


def _validate_pair(y_true, y_pred):
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError(
            f"y_true and y_pred have inconsistent lengths: {y_true.shape[0]} != {y_pred.shape[0]}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("metrics require at least one sample")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching predictions."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true, y_pred, labels: Optional[np.ndarray] = None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class ``i`` predicted ``j``."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t in index and p in index:
            matrix[index[t], index[p]] += 1
    return matrix


def _per_class_prf(y_true, y_pred, labels):
    # The confusion matrix must cover *all* observed labels even when only
    # one class is scored, otherwise false positives/negatives involving the
    # other classes are silently dropped.
    all_labels = np.unique(
        np.concatenate([np.asarray(y_true).ravel(), np.asarray(y_pred).ravel(), np.asarray(labels).ravel()])
    )
    matrix = confusion_matrix(y_true, y_pred, labels=all_labels)
    true_positive = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_positive / predicted, 0.0)
        recall = np.where(actual > 0, true_positive / actual, 0.0)
        denominator = precision + recall
        f1 = np.where(denominator > 0, 2.0 * precision * recall / denominator, 0.0)
    # Restrict to the requested labels, in their order.
    index = {label: i for i, label in enumerate(all_labels.tolist())}
    select = np.array([index[label] for label in np.asarray(labels).ravel().tolist()])
    return precision[select], recall[select], f1[select], actual[select]


def _resolve_labels(y_true, y_pred, average: str, pos_label):
    if average == "binary":
        return np.asarray([pos_label])
    return np.unique(np.concatenate([np.asarray(y_true).ravel(), np.asarray(y_pred).ravel()]))


def precision_score(y_true, y_pred, average: str = "binary", pos_label=1) -> float:
    """Precision = TP / (TP + FP), averaged per ``average`` mode."""
    labels = _resolve_labels(y_true, y_pred, average, pos_label)
    precision, _, _, support = _per_class_prf(y_true, y_pred, labels)
    return _reduce(precision, support, average)


def recall_score(y_true, y_pred, average: str = "binary", pos_label=1) -> float:
    """Recall = TP / (TP + FN), averaged per ``average`` mode."""
    labels = _resolve_labels(y_true, y_pred, average, pos_label)
    _, recall, _, support = _per_class_prf(y_true, y_pred, labels)
    return _reduce(recall, support, average)


def f1_score(y_true, y_pred, average: str = "binary", pos_label=1) -> float:
    """F1 = harmonic mean of precision and recall.

    Parameters
    ----------
    average:
        ``"binary"`` scores only ``pos_label``; ``"macro"`` averages the
        per-class F1 unweighted; ``"weighted"`` weights by class support.
    """
    labels = _resolve_labels(y_true, y_pred, average, pos_label)
    _, _, f1, support = _per_class_prf(y_true, y_pred, labels)
    return _reduce(f1, support, average)


def _reduce(values: np.ndarray, support: np.ndarray, average: str) -> float:
    if average == "binary":
        return float(values[0])
    if average == "macro":
        return float(values.mean())
    if average == "weighted":
        total = support.sum()
        if total == 0:
            return 0.0
        return float((values * support).sum() / total)
    raise ValueError(f"Unknown average mode {average!r}; expected 'binary', 'macro' or 'weighted'")
