"""Evaluation metrics used across the reproduction."""

from .classification import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from .curves import average_precision_score, roc_auc_score, roc_curve
from .ranking import dcg_score, ndcg_score, ranking_from_scores
from .regression import mean_absolute_error, mean_squared_error, r2_score

__all__ = [
    "accuracy_score",
    "average_precision_score",
    "confusion_matrix",
    "dcg_score",
    "f1_score",
    "roc_auc_score",
    "roc_curve",
    "mean_absolute_error",
    "mean_squared_error",
    "ndcg_score",
    "precision_score",
    "r2_score",
    "ranking_from_scores",
    "recall_score",
]
