"""Regression metrics: R², MSE, MAE."""

from __future__ import annotations

import numpy as np

__all__ = ["r2_score", "mean_squared_error", "mean_absolute_error"]


def _validate_pair(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError(
            f"y_true and y_pred have inconsistent lengths: {y_true.shape[0]} != {y_pred.shape[0]}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("metrics require at least one sample")
    return y_true, y_pred


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    Returns 1 for a perfect fit, 0 for the mean predictor and negative
    values for worse-than-mean fits.  A constant ``y_true`` yields 1.0 when
    predicted exactly, 0.0 otherwise.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def mean_squared_error(y_true, y_pred) -> float:
    """Mean of squared residuals."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(((y_true - y_pred) ** 2).mean())


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean of absolute residuals."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.abs(y_true - y_pred).mean())
