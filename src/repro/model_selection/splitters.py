"""Data splitting utilities: k-fold, stratified k-fold, train/test split.

These reimplement the scikit-learn splitters the paper's baselines use
("random" = :class:`KFold` with shuffling, "stratified" =
:class:`StratifiedKFold`), plus subset-sampling helpers used when a bandit
method allocates an instance budget to a configuration.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "KFold",
    "StratifiedKFold",
    "train_test_split",
    "random_subsample",
    "stratified_subsample",
]


def _check_n_splits(n_splits: int, n_samples: int) -> None:
    if n_splits < 2:
        raise ValueError(f"n_splits must be >= 2, got {n_splits}")
    if n_splits > n_samples:
        raise ValueError(f"n_splits={n_splits} greater than n_samples={n_samples}")


class KFold:
    """Plain k-fold splitter (optionally shuffled).

    Yields ``(train_indices, test_indices)`` pairs; fold sizes differ by at
    most one instance.
    """

    def __init__(
        self, n_splits: int = 5, shuffle: bool = True, random_state: Optional[int] = None
    ) -> None:
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def get_n_splits(self) -> int:
        """Number of folds produced by :meth:`split`."""
        return self.n_splits

    def split(self, X, y=None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Generate train/test index pairs over ``len(X)`` samples."""
        n_samples = len(X)
        _check_n_splits(self.n_splits, n_samples)
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


class StratifiedKFold:
    """K-fold preserving per-class proportions in every fold.

    Classes are distributed round-robin across folds after an optional
    shuffle, so each fold's label distribution approximates the global one.
    """

    def __init__(
        self, n_splits: int = 5, shuffle: bool = True, random_state: Optional[int] = None
    ) -> None:
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def get_n_splits(self) -> int:
        """Number of folds produced by :meth:`split`."""
        return self.n_splits

    def split(self, X, y) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Generate stratified train/test index pairs."""
        y = np.asarray(y)
        n_samples = len(y)
        if len(X) != n_samples:
            raise ValueError(f"X and y have inconsistent lengths: {len(X)} != {n_samples}")
        _check_n_splits(self.n_splits, n_samples)
        rng = np.random.default_rng(self.random_state)
        fold_of = np.empty(n_samples, dtype=int)
        next_fold = 0
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            if self.shuffle:
                rng.shuffle(members)
            # Continue the round-robin across classes so small classes do
            # not all land in fold 0.
            for offset, idx in enumerate(members):
                fold_of[idx] = (next_fold + offset) % self.n_splits
            next_fold = (next_fold + len(members)) % self.n_splits
        all_indices = np.arange(n_samples)
        for fold in range(self.n_splits):
            test = all_indices[fold_of == fold]
            train = all_indices[fold_of != fold]
            yield train, test


def train_test_split(
    X,
    y,
    test_size: float = 0.2,
    stratify: Optional[np.ndarray] = None,
    random_state: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split arrays into train and test subsets (the paper's 80/20 rule).

    Parameters
    ----------
    X, y:
        Features and targets of equal length.
    test_size:
        Fraction of samples placed in the test split, in ``(0, 1)``.
    stratify:
        When given, the split preserves these labels' proportions.
    random_state:
        Seed for the shuffling.

    Returns
    -------
    tuple
        ``(X_train, X_test, y_train, y_test)``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    n_samples = len(X)
    if len(y) != n_samples:
        raise ValueError(f"X and y have inconsistent lengths: {n_samples} != {len(y)}")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    rng = np.random.default_rng(random_state)
    n_test = max(1, int(round(test_size * n_samples)))
    if n_test >= n_samples:
        n_test = n_samples - 1
    if stratify is not None:
        test_idx = stratified_subsample(np.asarray(stratify), n_test, rng=rng)
        test_mask = np.zeros(n_samples, dtype=bool)
        test_mask[test_idx] = True
        train_idx = np.flatnonzero(~test_mask)
    else:
        order = rng.permutation(n_samples)
        test_idx, train_idx = order[:n_test], order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def random_subsample(
    n_samples: int,
    n_select: int,
    rng: Optional[np.random.Generator] = None,
    random_state: Optional[int] = None,
) -> np.ndarray:
    """Uniformly sample ``n_select`` indices without replacement."""
    if rng is None:
        rng = np.random.default_rng(random_state)
    if not 0 < n_select <= n_samples:
        raise ValueError(f"n_select must be in [1, {n_samples}], got {n_select}")
    return rng.choice(n_samples, size=n_select, replace=False)


def stratified_subsample(
    labels: np.ndarray,
    n_select: int,
    rng: Optional[np.random.Generator] = None,
    random_state: Optional[int] = None,
) -> np.ndarray:
    """Sample ``n_select`` indices preserving the label proportions.

    Every label present receives at least one slot when capacity allows;
    fractional remainders are resolved by largest-remainder rounding, then
    leftover slots are assigned to random labels with spare instances.
    """
    if rng is None:
        rng = np.random.default_rng(random_state)
    labels = np.asarray(labels)
    n_samples = len(labels)
    if not 0 < n_select <= n_samples:
        raise ValueError(f"n_select must be in [1, {n_samples}], got {n_select}")
    classes, counts = np.unique(labels, return_counts=True)
    exact = counts * (n_select / n_samples)
    allocation = np.floor(exact).astype(int)
    # Largest-remainder rounding up to the requested size.
    remainder_order = np.argsort(-(exact - allocation))
    shortfall = n_select - int(allocation.sum())
    for idx in remainder_order:
        if shortfall == 0:
            break
        if allocation[idx] < counts[idx]:
            allocation[idx] += 1
            shortfall -= 1
    # Any residual (possible when some classes saturated) goes anywhere free.
    while shortfall > 0:
        candidates = np.flatnonzero(allocation < counts)
        pick = rng.choice(candidates)
        allocation[pick] += 1
        shortfall -= 1
    selected = []
    for cls, take in zip(classes, allocation):
        if take == 0:
            continue
        members = np.flatnonzero(labels == cls)
        selected.append(rng.choice(members, size=take, replace=False))
    result = np.concatenate(selected) if selected else np.empty(0, dtype=int)
    rng.shuffle(result)
    return result
