"""Additional splitters: repeated k-fold and group-aware k-fold.

``RepeatedStratifiedKFold`` backs multi-seed cross-validation experiments;
``GroupKFold`` keeps all instances of one group in the same fold — useful
when the instance groups from Operation 1 must not leak between train and
validation sides.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .splitters import KFold, StratifiedKFold

__all__ = ["RepeatedKFold", "RepeatedStratifiedKFold", "GroupKFold", "LeaveOneOut"]


class RepeatedKFold:
    """``n_repeats`` independent shuffled k-fold rounds."""

    def __init__(self, n_splits: int = 5, n_repeats: int = 2, random_state: Optional[int] = None) -> None:
        if n_repeats < 1:
            raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
        self.n_splits = n_splits
        self.n_repeats = n_repeats
        self.random_state = random_state

    def get_n_splits(self) -> int:
        """Total split count ``n_splits * n_repeats``."""
        return self.n_splits * self.n_repeats

    def split(self, X, y=None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield all repeats' folds, each repeat with a derived seed."""
        seed_source = np.random.default_rng(self.random_state)
        for _ in range(self.n_repeats):
            fold = KFold(self.n_splits, shuffle=True, random_state=int(seed_source.integers(2**31)))
            yield from fold.split(X)


class RepeatedStratifiedKFold:
    """``n_repeats`` independent shuffled stratified k-fold rounds."""

    def __init__(self, n_splits: int = 5, n_repeats: int = 2, random_state: Optional[int] = None) -> None:
        if n_repeats < 1:
            raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
        self.n_splits = n_splits
        self.n_repeats = n_repeats
        self.random_state = random_state

    def get_n_splits(self) -> int:
        """Total split count ``n_splits * n_repeats``."""
        return self.n_splits * self.n_repeats

    def split(self, X, y) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield all repeats' stratified folds."""
        seed_source = np.random.default_rng(self.random_state)
        for _ in range(self.n_repeats):
            fold = StratifiedKFold(
                self.n_splits, shuffle=True, random_state=int(seed_source.integers(2**31))
            )
            yield from fold.split(X, y)


class GroupKFold:
    """K-fold where all members of a group land in the same fold.

    Groups are assigned to folds greedily by decreasing size (balancing
    fold sizes), so validation folds never split a group.
    """

    def __init__(self, n_splits: int = 5) -> None:
        self.n_splits = n_splits

    def get_n_splits(self) -> int:
        """Number of folds."""
        return self.n_splits

    def split(self, X, y=None, groups=None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield train/test pairs with group integrity preserved."""
        if groups is None:
            raise ValueError("GroupKFold requires a groups array")
        groups = np.asarray(groups)
        n_samples = len(groups)
        if len(X) != n_samples:
            raise ValueError(f"X and groups have inconsistent lengths: {len(X)} != {n_samples}")
        unique, counts = np.unique(groups, return_counts=True)
        if len(unique) < self.n_splits:
            raise ValueError(
                f"Cannot split {len(unique)} groups into {self.n_splits} folds"
            )
        # Greedy balanced assignment: biggest group to the lightest fold.
        order = np.argsort(-counts, kind="stable")
        fold_sizes = np.zeros(self.n_splits, dtype=int)
        fold_of_group = {}
        for index in order:
            fold = int(fold_sizes.argmin())
            fold_of_group[unique[index]] = fold
            fold_sizes[fold] += counts[index]
        fold_of = np.array([fold_of_group[g] for g in groups])
        indices = np.arange(n_samples)
        for fold in range(self.n_splits):
            yield indices[fold_of != fold], indices[fold_of == fold]


class LeaveOneOut:
    """Degenerate k-fold with one validation instance per split."""

    def get_n_splits(self, X=None) -> int:
        """Number of splits (== number of samples)."""
        if X is None:
            raise ValueError("LeaveOneOut needs X to count splits")
        return len(X)

    def split(self, X, y=None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield each instance once as the validation side."""
        n_samples = len(X)
        if n_samples < 2:
            raise ValueError("LeaveOneOut requires at least 2 samples")
        indices = np.arange(n_samples)
        for i in range(n_samples):
            yield np.delete(indices, i), indices[i : i + 1]
