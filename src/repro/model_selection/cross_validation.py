"""Generic cross-validation driver.

``cross_validate`` trains a clone of the estimator on each fold's training
indices and scores it on the held-out indices, returning the per-fold
scores.  It is splitter-agnostic: the vanilla baselines pass
:class:`~repro.model_selection.KFold` / ``StratifiedKFold`` while the paper's
method passes the general+special fold generator from
:mod:`repro.core.folds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..learners.base import clone

__all__ = ["CrossValidationResult", "cross_validate", "fit_and_score"]


@dataclass
class CrossValidationResult:
    """Per-fold scores with convenience aggregates.

    Attributes
    ----------
    fold_scores:
        Validation score per fold, in split order.
    fold_sizes:
        Number of validation instances per fold.
    """

    fold_scores: List[float] = field(default_factory=list)
    fold_sizes: List[int] = field(default_factory=list)

    @property
    def mean(self) -> float:
        """Average fold score (the vanilla evaluation metric)."""
        return float(np.mean(self.fold_scores)) if self.fold_scores else float("nan")

    @property
    def std(self) -> float:
        """Population standard deviation across folds."""
        return float(np.std(self.fold_scores)) if self.fold_scores else float("nan")

    def __len__(self) -> int:
        return len(self.fold_scores)


def fit_and_score(
    estimator,
    X: np.ndarray,
    y: np.ndarray,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
) -> float:
    """Fit a clone on the train indices and return its held-out score."""
    model = clone(estimator)
    model.fit(X[train_idx], y[train_idx])
    return float(model.score(X[test_idx], y[test_idx]))


def cross_validate(
    estimator,
    X: np.ndarray,
    y: np.ndarray,
    splits: Iterable[Tuple[np.ndarray, np.ndarray]],
    max_splits: Optional[int] = None,
) -> CrossValidationResult:
    """Evaluate ``estimator`` over the supplied train/validation splits.

    Parameters
    ----------
    estimator:
        Any object following the :class:`~repro.learners.BaseEstimator`
        protocol (``fit`` / ``score`` / clonable).
    X, y:
        Full data arrays that the split index pairs refer to.
    splits:
        Iterable of ``(train_indices, validation_indices)`` pairs, e.g. the
        output of a splitter's ``split`` method.
    max_splits:
        Optional cap on how many splits to consume.

    Returns
    -------
    CrossValidationResult
        Scores and validation-fold sizes per split.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    result = CrossValidationResult()
    for i, (train_idx, test_idx) in enumerate(splits):
        if max_splits is not None and i >= max_splits:
            break
        if len(train_idx) == 0 or len(test_idx) == 0:
            raise ValueError(f"Split {i} has an empty train or validation side")
        result.fold_scores.append(fit_and_score(estimator, X, y, train_idx, test_idx))
        result.fold_sizes.append(int(len(test_idx)))
    return result
