"""Splitting and cross-validation substrate."""

from .cross_validation import CrossValidationResult, cross_validate, fit_and_score
from .extended import GroupKFold, LeaveOneOut, RepeatedKFold, RepeatedStratifiedKFold
from .splitters import (
    KFold,
    StratifiedKFold,
    random_subsample,
    stratified_subsample,
    train_test_split,
)

__all__ = [
    "CrossValidationResult",
    "GroupKFold",
    "KFold",
    "LeaveOneOut",
    "RepeatedKFold",
    "RepeatedStratifiedKFold",
    "StratifiedKFold",
    "cross_validate",
    "fit_and_score",
    "random_subsample",
    "stratified_subsample",
    "train_test_split",
]
