"""BOHB — Bayesian Optimization + HyperBand (Falkner et al., ICML 2018).

Inherits the bracket machinery from :class:`~repro.bandit.hyperband.HyperBand`
and replaces random configuration proposals with a TPE-style density-ratio
sampler: observations at the largest sufficiently-populated budget are split
into a *good* and a *bad* set, diagonal-bandwidth kernel density estimates
are fitted to each, and candidates maximising ``l(x) / g(x)`` are proposed.

Configurations are modelled in the unit hypercube through
:meth:`repro.space.SearchSpace.encode`, which handles categorical
hyperparameters uniformly.

Crash-safe resume (:meth:`~repro.bandit.base.BaseSearcher.resume`) works
for BOHB despite its model-based proposals: the sampler's randomness comes
from the searcher's own re-seeded stream and its observations are exactly
the trial results, which a journal-backed engine replays bitwise — so the
resumed run refits the same densities and proposes the same candidates as
the uninterrupted one.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .base import Trial
from .hyperband import HyperBand

__all__ = ["BOHB", "DensityEstimator"]


class DensityEstimator:
    """Diagonal-bandwidth Gaussian KDE over unit-hypercube points.

    A tiny, dependency-free stand-in for statsmodels' multivariate KDE used
    by the reference BOHB implementation.  Bandwidths follow Scott's rule
    per dimension with a floor that keeps degenerate (constant) dimensions
    usable.
    """

    def __init__(self, points: np.ndarray, min_bandwidth: float = 1e-3) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[0] == 0:
            raise ValueError("DensityEstimator requires at least one point")
        self.points = points
        n, d = points.shape
        scott = n ** (-1.0 / (d + 4))
        spread = points.std(axis=0)
        self.bandwidths = np.maximum(spread * scott, min_bandwidth)

    def pdf(self, x: np.ndarray) -> float:
        """Density at ``x`` (unnormalised constants cancel in ratios)."""
        x = np.asarray(x, dtype=float)
        z = (x[None, :] - self.points) / self.bandwidths[None, :]
        log_kernel = -0.5 * (z**2).sum(axis=1) - np.log(self.bandwidths).sum()
        # log-sum-exp for numerical stability
        m = log_kernel.max()
        return float(np.exp(m) * np.exp(log_kernel - m).sum() / len(self.points))

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one point: pick a kernel centre and add bandwidth noise."""
        centre = self.points[int(rng.integers(len(self.points)))]
        draw = centre + rng.standard_normal(centre.shape) * self.bandwidths
        return np.clip(draw, 0.0, 1.0)


class BOHB(HyperBand):
    """HyperBand with TPE-style model-based configuration proposals.

    Parameters
    ----------
    space, evaluator, random_state, eta, min_budget_fraction:
        See :class:`~repro.bandit.hyperband.HyperBand`.
    random_fraction:
        Fraction of proposals drawn uniformly at random to keep theoretical
        HyperBand guarantees (reference default 1/3).
    top_n_percent:
        Percentile split between the "good" and "bad" observation sets.
    n_candidates:
        Candidates scored by the density ratio per model-based proposal.
    min_points_in_model:
        Observations required at a budget before its model is trusted;
        defaults to ``dim + 2``.
    """

    method_name = "BOHB"

    def __init__(
        self,
        space,
        evaluator,
        random_state=None,
        eta: float = 3.0,
        min_budget_fraction: float = 1.0 / 27.0,
        random_fraction: float = 1.0 / 3.0,
        top_n_percent: float = 15.0,
        n_candidates: int = 24,
        min_points_in_model: Optional[int] = None,
        engine=None,
        telemetry=None,
    ) -> None:
        super().__init__(
            space,
            evaluator,
            random_state=random_state,
            eta=eta,
            min_budget_fraction=min_budget_fraction,
            engine=engine,
            telemetry=telemetry,
        )
        if not 0.0 <= random_fraction <= 1.0:
            raise ValueError(f"random_fraction must be in [0, 1], got {random_fraction}")
        if not 0.0 < top_n_percent < 100.0:
            raise ValueError(f"top_n_percent must be in (0, 100), got {top_n_percent}")
        self.random_fraction = random_fraction
        self.top_n_percent = top_n_percent
        self.n_candidates = n_candidates
        self.min_points_in_model = min_points_in_model or (len(space) + 2)
        self._observations: Dict[float, List[Tuple[np.ndarray, float]]] = defaultdict(list)

    def _reset(self) -> None:
        super()._reset()
        self._observations = defaultdict(list)

    # -- HyperBand hooks ----------------------------------------------------

    def _observe(self, trial: Trial) -> None:
        """Record (encoded config, score) under the trial's budget."""
        encoded = self.space.encode(trial.config)
        self._observations[round(trial.budget_fraction, 6)].append(
            (encoded, trial.result.score)
        )

    def _propose_configs(self, n: int, budget_fraction: float) -> List[Dict[str, Any]]:
        """Mix of random and density-ratio proposals."""
        proposals = []
        for _ in range(n):
            use_model = self._rng.random() >= self.random_fraction
            config = self._model_based_proposal() if use_model else None
            if config is None:
                config = self.space.sample(self._rng)
            proposals.append(config)
        return proposals

    # -- TPE model -------------------------------------------------------------

    def _model_budget(self) -> Optional[float]:
        """Largest budget whose observation count supports a model."""
        eligible = [
            budget
            for budget, obs in self._observations.items()
            if len(obs) >= self.min_points_in_model + 2
        ]
        return max(eligible) if eligible else None

    def _model_based_proposal(self) -> Optional[Dict[str, Any]]:
        budget = self._model_budget()
        if budget is None:
            return None
        observations = self._observations[budget]
        points = np.array([obs[0] for obs in observations])
        scores = np.array([obs[1] for obs in observations])
        n_good = max(self.min_points_in_model, int(np.ceil(len(scores) * self.top_n_percent / 100.0)))
        n_good = min(n_good, len(scores) - 1)
        if n_good < 1:
            return None
        order = np.argsort(-scores, kind="stable")
        good = DensityEstimator(points[order[:n_good]])
        bad = DensityEstimator(points[order[n_good:]])

        best_vector: Optional[np.ndarray] = None
        best_ratio = -np.inf
        for _ in range(self.n_candidates):
            candidate = good.sample(self._rng)
            g_density = bad.pdf(candidate)
            l_density = good.pdf(candidate)
            ratio = l_density / max(g_density, 1e-32)
            if ratio > best_ratio:
                best_ratio = ratio
                best_vector = candidate
        if best_vector is None:
            return None
        return self.space.decode(best_vector)
