"""Sequential TPE — an Optuna-style full-budget baseline.

The paper compares against Optuna and SMAC3 in the text (Section IV-B) and
reports that, under a time budget similar to SHA's, they perform close to
random search — which is why Table IV keeps only the random baseline.  This
sequential Tree-structured Parzen Estimator lets that claim be reproduced:
it evaluates one configuration at a time at *full* budget, proposing each
next candidate from the good/bad density ratio (the same machinery BOHB
uses, without multi-fidelity budgets).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import BaseSearcher, SearchResult, top_k_indices
from .bohb import DensityEstimator

__all__ = ["TPESearch"]


class TPESearch(BaseSearcher):
    """Sequential model-based search with a TPE sampler.

    Parameters
    ----------
    space, evaluator, random_state:
        See :class:`~repro.bandit.base.BaseSearcher`.
    n_trials:
        Total configurations evaluated (each at full budget).
    n_startup:
        Random evaluations before the density model activates.
    top_n_percent:
        Good/bad split percentile.
    n_candidates:
        Candidates scored per model proposal.
    """

    method_name = "TPE"

    def __init__(
        self,
        space,
        evaluator,
        random_state=None,
        n_trials: int = 10,
        n_startup: int = 5,
        top_n_percent: float = 25.0,
        n_candidates: int = 24,
    ) -> None:
        super().__init__(space, evaluator, random_state)
        if n_trials < 1:
            raise ValueError(f"n_trials must be >= 1, got {n_trials}")
        if n_startup < 1:
            raise ValueError(f"n_startup must be >= 1, got {n_startup}")
        if not 0.0 < top_n_percent < 100.0:
            raise ValueError(f"top_n_percent must be in (0, 100), got {top_n_percent}")
        self.n_trials = n_trials
        self.n_startup = n_startup
        self.top_n_percent = top_n_percent
        self.n_candidates = n_candidates

    def _propose(self, observations: List[Tuple[np.ndarray, float]]) -> Dict[str, Any]:
        if len(observations) < max(self.n_startup, 3):
            return self.space.sample(self._rng)
        points = np.array([obs[0] for obs in observations])
        scores = np.array([obs[1] for obs in observations])
        n_good = max(1, int(np.ceil(len(scores) * self.top_n_percent / 100.0)))
        n_good = min(n_good, len(scores) - 1)
        order = np.argsort(-scores, kind="stable")
        good = DensityEstimator(points[order[:n_good]])
        bad = DensityEstimator(points[order[n_good:]])
        best_vector, best_ratio = None, -np.inf
        for _ in range(self.n_candidates):
            candidate = good.sample(self._rng)
            ratio = good.pdf(candidate) / max(bad.pdf(candidate), 1e-32)
            if ratio > best_ratio:
                best_ratio, best_vector = ratio, candidate
        return self.space.decode(best_vector)

    def _fit(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]] = None,
        n_configurations: Optional[int] = None,
    ) -> SearchResult:
        """Run the sequential search.

        When an explicit candidate pool is given, proposals are snapped to
        the nearest unevaluated pool member (grid-restricted TPE).
        """
        self._reset()
        start = time.perf_counter()
        pool: Optional[List[Dict[str, Any]]] = None
        if configurations is not None:
            pool = self._initial_configurations(configurations, None)
        n_total = n_configurations or self.n_trials

        observations: List[Tuple[np.ndarray, float]] = []
        remaining = list(range(len(pool))) if pool is not None else None
        for _ in range(n_total):
            proposal = self._propose(observations)
            if pool is not None:
                if not remaining:
                    break
                encoded = self.space.encode(proposal)
                pool_vectors = np.array([self.space.encode(pool[i]) for i in remaining])
                nearest = int(((pool_vectors - encoded) ** 2).sum(axis=1).argmin())
                proposal = pool[remaining.pop(nearest)]
            trial = self._evaluate(proposal, 1.0)
            observations.append((self.space.encode(proposal), trial.result.score))

        best = top_k_indices([t.result.score for t in self._trials], 1)[0]
        return SearchResult(
            best_config=self._trials[best].config,
            best_score=self._trials[best].result.score,
            trials=list(self._trials),
            wall_time=time.perf_counter() - start,
            method=self.method_name,
        )
