"""Random search baseline.

The paper's ``random`` baseline evaluates a fixed number of uniformly drawn
configurations at full budget and returns the best — the yardstick all
bandit methods are compared against in Table IV.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence

from .base import BaseSearcher, SearchResult, top_k_indices

__all__ = ["RandomSearch"]


class RandomSearch(BaseSearcher):
    """Evaluate ``n_configurations`` random configurations at full budget.

    Parameters
    ----------
    space, evaluator, random_state:
        See :class:`~repro.bandit.base.BaseSearcher`.
    n_configurations:
        Default sample size when :meth:`fit` is called without arguments
        (the paper uses 10).
    """

    method_name = "random"

    def __init__(self, space, evaluator, random_state=None, n_configurations: int = 10) -> None:
        super().__init__(space, evaluator, random_state)
        self.n_configurations = n_configurations

    def _fit(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]] = None,
        n_configurations: Optional[int] = None,
    ) -> SearchResult:
        """Evaluate the candidates at full budget; return the best."""
        self._reset()
        start = time.perf_counter()
        if configurations is None and n_configurations is None:
            n_configurations = self.n_configurations
        candidates = self._initial_configurations(configurations, n_configurations)
        trials = [self._evaluate(config, 1.0) for config in candidates]
        best = top_k_indices([t.result.score for t in trials], 1)[0]
        return SearchResult(
            best_config=trials[best].config,
            best_score=trials[best].result.score,
            trials=list(self._trials),
            wall_time=time.perf_counter() - start,
            method=self.method_name,
        )
