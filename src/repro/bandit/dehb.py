"""DEHB — Differential Evolution HyperBand (Awad et al., IJCAI 2021),
simplified.

Listed in the paper's related work: HyperBand's random configuration
sampling is replaced by differential evolution over the unit-hypercube
encodings.  This implementation keeps HyperBand's bracket machinery (via
subclassing) and maintains one evolving population per budget level; new
bracket candidates are produced with rand/1 mutation + binomial crossover
against the population of the corresponding budget (falling back to random
sampling until enough parents exist).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Tuple

import numpy as np

from .base import Trial
from .hyperband import HyperBand

__all__ = ["DEHB"]


class DEHB(HyperBand):
    """HyperBand with differential-evolution proposals.

    Parameters
    ----------
    space, evaluator, random_state, eta, min_budget_fraction:
        See :class:`~repro.bandit.hyperband.HyperBand`.
    mutation_factor:
        DE scale factor ``F`` in the mutant ``a + F (b - c)``.
    crossover_prob:
        Per-dimension probability of inheriting from the mutant.
    min_population:
        Parents required at a budget before DE activates there.
    """

    method_name = "DEHB"

    def __init__(
        self,
        space,
        evaluator,
        random_state=None,
        eta: float = 3.0,
        min_budget_fraction: float = 1.0 / 27.0,
        mutation_factor: float = 0.5,
        crossover_prob: float = 0.5,
        min_population: int = 4,
    ) -> None:
        super().__init__(
            space, evaluator, random_state=random_state,
            eta=eta, min_budget_fraction=min_budget_fraction,
        )
        if not 0.0 < mutation_factor <= 2.0:
            raise ValueError(f"mutation_factor must be in (0, 2], got {mutation_factor}")
        if not 0.0 <= crossover_prob <= 1.0:
            raise ValueError(f"crossover_prob must be in [0, 1], got {crossover_prob}")
        if min_population < 4:
            raise ValueError(f"min_population must be >= 4 (rand/1 needs 3 parents + target), got {min_population}")
        self.mutation_factor = mutation_factor
        self.crossover_prob = crossover_prob
        self.min_population = min_population
        self._populations: Dict[float, List[Tuple[np.ndarray, float]]] = defaultdict(list)

    def _reset(self) -> None:
        super()._reset()
        self._populations = defaultdict(list)

    # -- HyperBand hooks -----------------------------------------------------

    def _observe(self, trial: Trial) -> None:
        """Add the evaluated vector to its budget's population."""
        budget = round(trial.budget_fraction, 6)
        self._populations[budget].append((self.space.encode(trial.config), trial.result.score))

    def _parent_pool(self, budget: float) -> List[Tuple[np.ndarray, float]]:
        """Population at this budget, backfilled from neighbouring budgets."""
        pool = list(self._populations[round(budget, 6)])
        if len(pool) < self.min_population:
            for other_budget in sorted(self._populations, reverse=True):
                if round(budget, 6) == other_budget:
                    continue
                pool.extend(self._populations[other_budget])
                if len(pool) >= self.min_population:
                    break
        return pool

    def _propose_configs(self, n: int, budget_fraction: float) -> List[Dict[str, Any]]:
        """DE rand/1 + binomial crossover proposals (random until warm)."""
        pool = self._parent_pool(budget_fraction)
        proposals: List[Dict[str, Any]] = []
        for _ in range(n):
            if len(pool) < self.min_population:
                proposals.append(self.space.sample(self._rng))
                continue
            # Target: a good member (tournament of 2); parents a, b, c random distinct.
            contender_ids = self._rng.choice(len(pool), size=2, replace=False)
            target_id = max(contender_ids, key=lambda i: pool[i][1])
            parent_ids = self._rng.choice(len(pool), size=3, replace=False)
            a, b, c = (pool[i][0] for i in parent_ids)
            mutant = np.clip(a + self.mutation_factor * (b - c), 0.0, 1.0)
            target = pool[target_id][0]
            cross = self._rng.random(len(target)) < self.crossover_prob
            # Guarantee at least one mutant dimension (standard DE rule).
            cross[int(self._rng.integers(len(target)))] = True
            child = np.where(cross, mutant, target)
            proposals.append(self.space.decode(child))
        return proposals
