"""Bandit-based hyperparameter-optimization substrate.

Faithful single-process implementations of the methods the paper compares:
random search, Successive Halving (SHA), HyperBand (HB), BOHB and a
simulated-asynchronous ASHA.  All of them evaluate configurations through
the :class:`~repro.bandit.base.ConfigurationEvaluator` protocol — swapping
in the grouped evaluator from :mod:`repro.core` yields the paper's enhanced
SHA+/HB+/BOHB+ variants.
"""

from .asha import ASHA
from .base import (
    BaseSearcher,
    ConfigurationEvaluator,
    EvaluationResult,
    SearchResult,
    Trial,
    top_k_indices,
)
from .bohb import BOHB, DensityEstimator
from .dehb import DEHB
from .hyperband import HyperBand
from .pasha import PASHA
from .random_search import RandomSearch
from .smac import SMACSearch, expected_improvement
from .successive_halving import SuccessiveHalving
from .tpe import TPESearch

__all__ = [
    "ASHA",
    "BOHB",
    "DEHB",
    "PASHA",
    "SMACSearch",
    "TPESearch",
    "expected_improvement",
    "BaseSearcher",
    "ConfigurationEvaluator",
    "DensityEstimator",
    "EvaluationResult",
    "HyperBand",
    "RandomSearch",
    "SearchResult",
    "SuccessiveHalving",
    "Trial",
    "top_k_indices",
]
