"""PASHA — Progressive ASHA (Bohdal et al., 2023), simplified.

Listed in the paper's related work as a HyperBand improvement: instead of
fixing the maximum rung up front, PASHA starts with a *small* rung ceiling
and only unlocks the next rung when the ranking of the top configurations
at the two highest active rungs disagrees — i.e. more budget is spent only
when the cheap budgets have not yet stabilised the leaderboard.

This implementation follows the published stopping rule (soft rank
stability of the top ``1/eta`` configurations) on top of this package's
simulated-asynchronous ASHA machinery.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..space import config_key
from .base import BaseSearcher, SearchResult

__all__ = ["PASHA"]


class PASHA(BaseSearcher):
    """Progressive successive halving with dynamic rung unlocking.

    Parameters
    ----------
    space, evaluator, random_state:
        See :class:`~repro.bandit.base.BaseSearcher`.
    eta:
        Promotion rate.
    min_budget_fraction:
        Rung-0 instance fraction.
    initial_rungs:
        Active rungs at the start (the reference uses the two cheapest).
    max_started:
        Configurations started at rung 0 when no pool is given.
    """

    method_name = "PASHA"

    def __init__(
        self,
        space,
        evaluator,
        random_state=None,
        eta: float = 2.0,
        min_budget_fraction: float = 1.0 / 8.0,
        initial_rungs: int = 2,
        max_started: int = 32,
    ) -> None:
        super().__init__(space, evaluator, random_state)
        if eta <= 1.0:
            raise ValueError(f"eta must be > 1, got {eta}")
        if not 0.0 < min_budget_fraction <= 1.0:
            raise ValueError(f"min_budget_fraction must be in (0, 1], got {min_budget_fraction}")
        if initial_rungs < 1:
            raise ValueError(f"initial_rungs must be >= 1, got {initial_rungs}")
        self.eta = eta
        self.min_budget_fraction = min_budget_fraction
        self.initial_rungs = initial_rungs
        self.max_started = max_started

    @property
    def max_rung(self) -> int:
        """Highest rung the schedule can ever unlock."""
        return int(math.floor(math.log(1.0 / self.min_budget_fraction, self.eta)))

    def _budget_at(self, rung: int) -> float:
        return min(1.0, self.min_budget_fraction * self.eta**rung)

    @staticmethod
    def _top_ranking(completed: List[Tuple[float, int]], k: int) -> List[int]:
        ranked = sorted(completed, key=lambda item: (-item[0], item[1]))
        return [config_id for _, config_id in ranked[:k]]

    def _should_unlock(self, rungs: Dict[int, List[Tuple[float, int]]], ceiling: int) -> bool:
        """Unlock the next rung when the top sets of the two highest active
        rungs disagree (the reference's ranking-stability test)."""
        if ceiling >= self.max_rung:
            return False
        high, low = rungs[ceiling], rungs.get(ceiling - 1, [])
        if len(high) < 2 or len(low) < 2:
            return False
        k = max(1, int(len(high) / self.eta))
        top_high = set(self._top_ranking(high, k))
        top_low = set(self._top_ranking(low, k))
        return not top_high <= top_low

    def _fit(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]] = None,
        n_configurations: Optional[int] = None,
    ) -> SearchResult:
        """Run PASHA sequentially (promotion rule identical to ASHA's)."""
        self._reset()
        start = time.perf_counter()
        if configurations is not None or n_configurations is not None:
            pool = self._initial_configurations(configurations, n_configurations)
        else:
            pool = self.space.sample_batch(self.max_started, rng=self._rng)
        pool = list(pool)
        next_new = 0

        rungs: Dict[int, List[Tuple[float, int]]] = {k: [] for k in range(self.max_rung + 1)}
        promoted: Dict[int, Set[int]] = {k: set() for k in range(self.max_rung + 1)}
        configs_by_id: Dict[int, Dict[str, Any]] = {}
        key_to_id: Dict[Tuple, int] = {}
        ceiling = min(self.initial_rungs - 1, self.max_rung)
        best: Optional[Tuple[float, float]] = None
        best_config: Optional[Dict[str, Any]] = None

        def register(config: Dict[str, Any]) -> int:
            key = config_key(config)
            if key not in key_to_id:
                key_to_id[key] = len(key_to_id)
                configs_by_id[key_to_id[key]] = config
            return key_to_id[key]

        def next_job() -> Optional[Tuple[int, int]]:
            nonlocal next_new
            for rung_index in range(ceiling - 1, -1, -1):
                completed = rungs[rung_index]
                if not completed:
                    continue
                n_promotable = int(len(completed) / self.eta)
                for config_id in self._top_ranking(completed, n_promotable):
                    if config_id not in promoted[rung_index]:
                        promoted[rung_index].add(config_id)
                        return config_id, rung_index + 1
            if next_new < len(pool):
                config_id = register(pool[next_new])
                next_new += 1
                return config_id, 0
            return None

        while True:
            job = next_job()
            if job is None:
                if self._should_unlock(rungs, ceiling):
                    ceiling += 1
                    continue
                break
            config_id, rung_index = job
            trial = self._evaluate(
                configs_by_id[config_id], self._budget_at(rung_index), iteration=rung_index
            )
            rungs[rung_index].append((trial.result.score, config_id))
            key = (self._budget_at(rung_index), trial.result.score)
            if best is None or key > best:
                best = key
                best_config = configs_by_id[config_id]

        self.final_ceiling_ = ceiling
        assert best_config is not None
        return SearchResult(
            best_config=best_config,
            best_score=best[1],
            trials=list(self._trials),
            wall_time=time.perf_counter() - start,
            method=self.method_name,
        )
