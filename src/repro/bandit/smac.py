"""SMAC-style Bayesian optimization with a random-forest surrogate.

The paper's Section IV-B compares against SMAC3, whose defining features
are a random-forest surrogate (mean + per-tree variance) and an expected-
improvement acquisition optimized over candidate configurations.  This
sequential implementation reproduces that recipe on top of
:class:`repro.learners.forest.RandomForestRegressor`, evaluating every
accepted configuration at full budget like the paper's comparison did.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import norm

from .base import BaseSearcher, SearchResult, top_k_indices

__all__ = ["SMACSearch", "expected_improvement"]


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01) -> np.ndarray:
    """EI acquisition ``E[max(0, f - best - xi)]`` for maximisation.

    Parameters
    ----------
    mean, std:
        Surrogate predictions per candidate.
    best:
        Current incumbent value.
    xi:
        Exploration margin.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    improvement = mean - best - xi
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, improvement / std, 0.0)
        ei = np.where(
            std > 0,
            improvement * norm.cdf(z) + std * norm.pdf(z),
            np.maximum(improvement, 0.0),
        )
    return ei


class SMACSearch(BaseSearcher):
    """Sequential model-based optimization with an RF surrogate + EI.

    Parameters
    ----------
    space, evaluator, random_state:
        See :class:`~repro.bandit.base.BaseSearcher`.
    n_trials:
        Total full-budget evaluations.
    n_startup:
        Random evaluations before the surrogate activates.
    n_candidates:
        Random candidates scored by EI per iteration.
    n_estimators:
        Trees in the surrogate forest.
    """

    method_name = "SMAC"

    def __init__(
        self,
        space,
        evaluator,
        random_state=None,
        n_trials: int = 10,
        n_startup: int = 4,
        n_candidates: int = 64,
        n_estimators: int = 10,
    ) -> None:
        super().__init__(space, evaluator, random_state)
        if n_trials < 1:
            raise ValueError(f"n_trials must be >= 1, got {n_trials}")
        if n_startup < 1:
            raise ValueError(f"n_startup must be >= 1, got {n_startup}")
        if n_candidates < 1:
            raise ValueError(f"n_candidates must be >= 1, got {n_candidates}")
        self.n_trials = n_trials
        self.n_startup = n_startup
        self.n_candidates = n_candidates
        self.n_estimators = n_estimators

    def _propose(
        self, observations: List[Tuple[np.ndarray, float]], pool_vectors: Optional[np.ndarray]
    ) -> np.ndarray:
        """Next encoded configuration: random during startup, EI-argmax after."""
        if len(observations) < self.n_startup:
            if pool_vectors is not None:
                return pool_vectors[int(self._rng.integers(len(pool_vectors)))]
            return self.space.encode(self.space.sample(self._rng))

        from ..learners.forest import RandomForestRegressor

        X = np.array([obs[0] for obs in observations])
        y = np.array([obs[1] for obs in observations])
        surrogate = RandomForestRegressor(
            n_estimators=self.n_estimators,
            min_samples_leaf=1,
            random_state=int(self._rng.integers(2**31)),
        ).fit(X, y)

        if pool_vectors is not None:
            candidates = pool_vectors
        else:
            candidates = np.array([
                self.space.encode(self.space.sample(self._rng))
                for _ in range(self.n_candidates)
            ])
        mean, std = surrogate.predict_with_std(candidates)
        acquisition = expected_improvement(mean, std, best=float(y.max()))
        return candidates[int(acquisition.argmax())]

    def _fit(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]] = None,
        n_configurations: Optional[int] = None,
    ) -> SearchResult:
        """Run the sequential optimization."""
        self._reset()
        start = time.perf_counter()
        pool: Optional[List[Dict[str, Any]]] = None
        pool_vectors: Optional[np.ndarray] = None
        if configurations is not None:
            pool = self._initial_configurations(configurations, None)
            pool_vectors = np.array([self.space.encode(c) for c in pool])
        n_total = n_configurations or self.n_trials

        observations: List[Tuple[np.ndarray, float]] = []
        evaluated_pool_ids: set = set()
        for _ in range(n_total):
            if pool is not None and len(evaluated_pool_ids) >= len(pool):
                break
            remaining_vectors = pool_vectors
            if pool is not None:
                remaining = [i for i in range(len(pool)) if i not in evaluated_pool_ids]
                remaining_vectors = pool_vectors[remaining]
            vector = self._propose(observations, remaining_vectors)
            if pool is not None:
                distances = ((pool_vectors - vector) ** 2).sum(axis=1)
                distances[list(evaluated_pool_ids)] = np.inf
                index = int(distances.argmin())
                evaluated_pool_ids.add(index)
                config = pool[index]
            else:
                config = self.space.decode(vector)
            trial = self._evaluate(config, 1.0)
            observations.append((self.space.encode(config), trial.result.score))

        best = top_k_indices([t.result.score for t in self._trials], 1)[0]
        return SearchResult(
            best_config=self._trials[best].config,
            best_score=self._trials[best].result.score,
            trials=list(self._trials),
            wall_time=time.perf_counter() - start,
            method=self.method_name,
        )
