"""Shared abstractions for bandit-based searchers.

Defines the evaluation protocol every searcher consumes — which is the seam
the paper's enhancement plugs into: a *vanilla* evaluator gives SHA / HB /
BOHB, while the grouped evaluator from :mod:`repro.core` turns the same
searchers into SHA+ / HB+ / BOHB+ without touching their logic.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Sequence

import numpy as np

from ..space import SearchSpace, config_key

__all__ = [
    "EvaluationResult",
    "ConfigurationEvaluator",
    "Trial",
    "SearchResult",
    "BaseSearcher",
    "top_k_indices",
]


@dataclass
class EvaluationResult:
    """Outcome of evaluating one configuration under a partial budget.

    Attributes
    ----------
    mean:
        Average cross-validation score ``mu`` (the vanilla metric).
    std:
        Standard deviation ``sigma`` across folds.
    score:
        Ranking score used for halving; equals ``mean`` for vanilla
        evaluators and ``mu + alpha * beta(gamma) * sigma`` (Equation 3) for
        the enhanced evaluator.
    gamma:
        Subset size as a percentage of the full budget (``gamma`` in the
        paper).
    fold_scores:
        Per-fold validation scores.
    n_instances:
        Number of training instances actually used.
    cost:
        Wall-clock seconds spent on this evaluation.
    guard_events:
        Data-integrity degradations recorded while evaluating, as
        JSON-able dicts (see :mod:`repro.guard.events`).  Kept as plain
        data so the events survive worker-process boundaries and journal
        round-trips; empty when no guard is active.
    """

    mean: float
    std: float
    score: float
    gamma: float
    fold_scores: List[float] = field(default_factory=list)
    n_instances: int = 0
    cost: float = 0.0
    guard_events: List[Dict[str, Any]] = field(default_factory=list)


class ConfigurationEvaluator(Protocol):
    """Anything that can score a configuration under a budget fraction."""

    def evaluate(
        self,
        config: Dict[str, Any],
        budget_fraction: float,
        rng: np.random.Generator,
    ) -> EvaluationResult:
        """Train/validate ``config`` on a ``budget_fraction`` subset."""
        ...


@dataclass
class Trial:
    """One (configuration, budget) evaluation performed during a search."""

    config: Dict[str, Any]
    budget_fraction: float
    result: EvaluationResult
    iteration: int = 0
    bracket: int = 0

    @property
    def key(self):
        """Hashable configuration identity."""
        return config_key(self.config)


@dataclass
class SearchResult:
    """Complete record of one HPO run.

    Attributes
    ----------
    best_config:
        The configuration surviving to the end of the search.
    best_score:
        Its evaluation score at the largest budget seen.
    trials:
        Every (config, budget) evaluation in execution order.
    wall_time:
        Total search seconds (sum of evaluation costs plus overhead the
        searcher reports).
    method:
        Human-readable searcher name (e.g. ``"SHA+"``).
    """

    best_config: Dict[str, Any]
    best_score: float
    trials: List[Trial] = field(default_factory=list)
    wall_time: float = 0.0
    method: str = ""

    @property
    def n_trials(self) -> int:
        """Number of evaluations performed."""
        return len(self.trials)

    @property
    def total_evaluation_cost(self) -> float:
        """Sum of per-evaluation wall-clock costs."""
        return float(sum(t.result.cost for t in self.trials))

    def incumbent_trajectory(self) -> List[float]:
        """Best score seen after each trial (monotone non-decreasing)."""
        best = -np.inf
        trajectory = []
        for trial in self.trials:
            best = max(best, trial.result.score)
            trajectory.append(best)
        return trajectory


def top_k_indices(scores: Sequence[float], k: int) -> List[int]:
    """Indices of the ``k`` largest scores, best first, ties broken stably."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    scores = np.asarray(scores, dtype=float)
    order = np.argsort(-scores, kind="stable")
    return order[: min(k, len(scores))].tolist()


class BaseSearcher:
    """Common plumbing for all searchers.

    Parameters
    ----------
    space:
        The hyperparameter search space.
    evaluator:
        Evaluation strategy (vanilla or grouped); this is the paper's
        plug-in point.
    random_state:
        Seed for configuration sampling and subset draws.
    engine:
        Optional :class:`~repro.engine.TrialEngine`.  Without one
        (default), evaluations run inline against the searcher's shared
        random stream — the historical behaviour, bit-for-bit.  With one,
        evaluations are routed through the engine: each trial gets a seed
        derived from ``(random_state, config, budget)``, enabling
        memoization, retries and parallel executors while keeping results
        independent of worker count and completion order.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`.  When set, every
        ``fit()`` is wrapped in a ``run`` span, rung batches get ``rung``
        spans, and each evaluation is recorded as a ``trial`` span with
        its fold/fit children and metrics — through the engine when one
        is attached (the engine inherits this telemetry if it has none of
        its own), or inline otherwise.  Recording never touches the
        search's random streams, so results stay bit-for-bit identical
        to an uninstrumented run.
    """

    method_name = "base"

    def __init__(
        self,
        space: SearchSpace,
        evaluator: ConfigurationEvaluator,
        random_state: Optional[int] = None,
        engine=None,
        telemetry=None,
    ) -> None:
        self.space = space
        self.evaluator = evaluator
        self.random_state = random_state
        self.engine = engine
        self.telemetry = telemetry
        self._rng = np.random.default_rng(random_state)
        self._trials: List[Trial] = []

    def _reset(self) -> None:
        self._rng = np.random.default_rng(self.random_state)
        self._trials = []
        if self.engine is not None:
            self.engine.bind(
                self.evaluator,
                root_seed=self.random_state,
                metadata=self._run_identity(),
            )

    def _sync_telemetry(self) -> None:
        """Reconcile searcher- and engine-attached telemetry (either way).

        A telemetry object may arrive on the searcher (``optimize(...,
        telemetry=...)``) or on the engine (``TrialEngine(...,
        telemetry=...)``); whichever side has one shares it with the
        other so spans and metrics land in a single place.
        """
        engine_telemetry = getattr(self.engine, "telemetry", None)
        if self.telemetry is None:
            self.telemetry = engine_telemetry
        elif self.engine is not None and engine_telemetry is None:
            self.engine.telemetry = self.telemetry

    def _span(self, name: str, **attrs):
        """A structural tracer span, or an inert context when telemetry is off."""
        if self.telemetry is None:
            return nullcontext(None)
        return self.telemetry.span(name, **attrs)

    def _run_identity(self) -> Dict[str, Any]:
        """Identity recorded in (and verified against) a run-journal header.

        Guards a resume against the silent mixing of two different runs: a
        journal written by one searcher/space refuses to replay into
        another, and (since the guard layer landed) a journal written under
        one guard policy refuses to replay under a different one — guards
        change scores, so mixing policies would silently corrupt a run.
        Journals from before the guard key simply lack it and still resume.
        """
        from ..engine.journal import space_fingerprint  # local import avoids a cycle

        guard_policy = getattr(self.evaluator, "guard_policy", None)
        return {
            "searcher": self.method_name,
            "space": space_fingerprint(self.space),
            "guard": guard_policy if guard_policy is not None else "off",
        }

    def resume(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]] = None,
        n_configurations: Optional[int] = None,
    ) -> SearchResult:
        """Re-run :meth:`fit` against the engine's journal of a prior run.

        Requires an engine configured with a
        :class:`~repro.engine.journal.RunJournal`.  The searcher replays
        its (deterministic) schedule; every trial the interrupted run made
        durable is served from the journal with ``resumed=True`` and only
        the lost tail is executed, so the returned result is bitwise
        identical to the uninterrupted run's.  Pass the same candidate
        arguments the original run used.
        """
        if self.engine is None or self.engine.journal is None:
            raise RuntimeError(
                "resume() requires an engine with a journal; pass "
                "engine=TrialEngine(..., journal=path)"
            )
        return self.fit(configurations=configurations, n_configurations=n_configurations)

    def _evaluate(
        self,
        config: Dict[str, Any],
        budget_fraction: float,
        iteration: int = 0,
        bracket: int = 0,
    ) -> Trial:
        """Run the evaluator (directly or via the engine) and record the trial."""
        if self.engine is not None:
            return self._evaluate_batch([config], budget_fraction, iteration, bracket)[0]
        if self.telemetry is not None:
            with self.telemetry.trial(
                trial_id=len(self._trials),
                budget_fraction=budget_fraction,
                iteration=iteration,
                bracket=bracket,
            ) as record:
                result = self.evaluator.evaluate(config, budget_fraction, self._rng)
                record["attrs"].update(
                    score=float(result.score),
                    gamma=float(result.gamma),
                    cost=float(result.cost),
                )
                record["ann"].extend(
                    event.as_dict() if hasattr(event, "as_dict") else dict(event)
                    for event in (result.guard_events or [])
                )
        else:
            result = self.evaluator.evaluate(config, budget_fraction, self._rng)
        trial = Trial(
            config=config,
            budget_fraction=budget_fraction,
            result=result,
            iteration=iteration,
            bracket=bracket,
        )
        self._trials.append(trial)
        return trial

    def _evaluate_batch(
        self,
        configs: Sequence[Dict[str, Any]],
        budget_fraction: float,
        iteration: int = 0,
        bracket: int = 0,
    ) -> List[Trial]:
        """Evaluate a rung's worth of configurations, engine-batched if possible.

        Without an engine this degrades to the serial loop (identical to
        calling :meth:`_evaluate` per configuration).  With one, the whole
        batch is submitted at once so a parallel executor can overlap the
        evaluations; outcomes come back in request order, so recorded
        trials keep the exact ordering of the serial path.  Either way
        the batch is wrapped in a ``rung`` span when telemetry is on.
        """
        with self._span(
            "rung",
            budget_fraction=budget_fraction,
            iteration=iteration,
            bracket=bracket,
            n_configs=len(configs),
        ):
            if self.engine is None:
                return [
                    self._evaluate(config, budget_fraction, iteration, bracket)
                    for config in configs
                ]
            from ..engine.protocol import TrialRequest  # local import avoids a cycle

            requests = [
                TrialRequest(
                    config=config,
                    budget_fraction=budget_fraction,
                    iteration=iteration,
                    bracket=bracket,
                )
                for config in configs
            ]
            outcomes = self.engine.run_batch(requests)
            return [self._record_outcome(outcome) for outcome in outcomes]

    def _record_outcome(self, outcome) -> Trial:
        """Convert an engine :class:`~repro.engine.TrialOutcome` into a Trial."""
        request = outcome.request
        trial = Trial(
            config=request.config,
            budget_fraction=request.budget_fraction,
            result=outcome.result,
            iteration=request.iteration,
            bracket=request.bracket,
        )
        self._trials.append(trial)
        return trial

    def _initial_configurations(
        self, configurations: Optional[Sequence[Dict[str, Any]]], n_configurations: Optional[int]
    ) -> List[Dict[str, Any]]:
        """Resolve the candidate set: explicit list, sample, or full grid."""
        if configurations is not None:
            configs = [dict(c) for c in configurations]
            if not configs:
                raise ValueError("configurations must be non-empty")
            for config in configs:
                self.space.validate(config)
            return configs
        if n_configurations is not None:
            return self.space.sample_batch(n_configurations, rng=self._rng)
        if self.space.is_finite:
            return self.space.grid()
        raise ValueError(
            "An infinite space requires either explicit configurations or n_configurations"
        )

    def fit(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]] = None,
        n_configurations: Optional[int] = None,
    ) -> SearchResult:
        """Run the search and return its :class:`SearchResult`.

        Template method: syncs telemetry between searcher and engine,
        opens the ``run`` span, and delegates the actual search to the
        subclass's :meth:`_fit`.
        """
        self._sync_telemetry()
        with self._span(
            "run",
            searcher=self.method_name,
            root_seed=self.random_state,
            engine=self.engine is not None,
        ) as span:
            result = self._fit(configurations, n_configurations)
            if span is not None:
                span.attrs["best_score"] = float(result.best_score)
                span.attrs["n_trials"] = result.n_trials
            return result

    def _fit(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]],
        n_configurations: Optional[int],
    ) -> SearchResult:
        """Subclass hook: the actual search, run inside the ``run`` span."""
        raise NotImplementedError
