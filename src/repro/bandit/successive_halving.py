"""Successive Halving (SHA) — Jamieson & Talwalkar, 2016.

Implements Algorithm 1 of the paper with instances as the budget: each
iteration allocates ``b_t = B / |T_t|`` instances to every surviving
configuration, scores them through the evaluator, and keeps the top
``1/eta`` fraction until one configuration remains (Figure 1 shows the
``eta = 2`` trace with 8 configurations).

The halving schedule is a pure function of the candidate list and the
seed, so a journal-backed engine makes interrupted runs resumable: see
:meth:`~repro.bandit.base.BaseSearcher.resume`.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Optional, Sequence

from .base import BaseSearcher, SearchResult, Trial, top_k_indices

__all__ = ["SuccessiveHalving"]


class SuccessiveHalving(BaseSearcher):
    """Successive halving over a candidate set.

    Parameters
    ----------
    space, evaluator, random_state, engine:
        See :class:`~repro.bandit.base.BaseSearcher`; each halving
        iteration is submitted to the engine as one batch, so a parallel
        executor evaluates a whole rung concurrently.
    eta:
        Elimination rate: the top ``1/eta`` of configurations survive each
        iteration.  The paper halves, so the default is 2.
    min_budget_fraction:
        Floor on the per-configuration instance fraction, protecting very
        large candidate sets from degenerate one-instance evaluations.

    Examples
    --------
    Budget doubles as the candidate set halves::

        iteration 0: 8 configs x 1/8 budget
        iteration 1: 4 configs x 1/4 budget
        iteration 2: 2 configs x 1/2 budget
        iteration 3: 1 config   (winner)
    """

    method_name = "SHA"

    def __init__(
        self,
        space,
        evaluator,
        random_state=None,
        eta: float = 2.0,
        min_budget_fraction: float = 0.01,
        engine=None,
        telemetry=None,
    ) -> None:
        super().__init__(space, evaluator, random_state, engine=engine, telemetry=telemetry)
        if eta <= 1.0:
            raise ValueError(f"eta must be > 1, got {eta}")
        if not 0.0 < min_budget_fraction <= 1.0:
            raise ValueError(f"min_budget_fraction must be in (0, 1], got {min_budget_fraction}")
        self.eta = eta
        self.min_budget_fraction = min_budget_fraction

    def _fit(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]] = None,
        n_configurations: Optional[int] = None,
    ) -> SearchResult:
        """Run halving until a single configuration survives."""
        self._reset()
        start = time.perf_counter()
        survivors = self._initial_configurations(configurations, n_configurations)
        last_trials: List[Trial] = []
        iteration = 0
        while len(survivors) > 1:
            budget_fraction = max(1.0 / len(survivors), self.min_budget_fraction)
            budget_fraction = min(budget_fraction, 1.0)
            last_trials = self._evaluate_batch(survivors, budget_fraction, iteration=iteration)
            n_keep = max(1, math.ceil(len(survivors) / self.eta))
            keep = top_k_indices([t.result.score for t in last_trials], n_keep)
            survivors = [last_trials[i].config for i in keep]
            iteration += 1

        if last_trials:
            scores = {id(t.config): t.result.score for t in last_trials}
            best_score = scores.get(id(survivors[0]), last_trials[0].result.score)
        else:
            # Single candidate: evaluate once at full budget for a score.
            trial = self._evaluate(survivors[0], 1.0, iteration=0)
            best_score = trial.result.score
        return SearchResult(
            best_config=survivors[0],
            best_score=float(best_score),
            trials=list(self._trials),
            wall_time=time.perf_counter() - start,
            method=self.method_name,
        )
