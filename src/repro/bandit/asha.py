"""ASHA — Asynchronous Successive Halving (Li et al., 2018).

The reproduction runs on a single process, so asynchrony is *simulated*:
``n_workers`` virtual workers pull jobs from the ASHA scheduler, each job's
duration is the measured wall-clock cost of its evaluation, and worker
clocks advance through an event queue.  The scheduling decisions (greedy
promotion of any configuration in the top ``1/eta`` of its rung, bottom-rung
backfill otherwise) are exactly ASHA's, so promotion behaviour and the
simulated makespan are faithful.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..space import config_key
from .base import BaseSearcher, SearchResult

__all__ = ["ASHA"]


@dataclass
class _Rung:
    """Completed evaluations at one budget level."""

    completed: List[Tuple[float, int]] = field(default_factory=list)  # (score, config_id)
    promoted: Set[int] = field(default_factory=set)


class ASHA(BaseSearcher):
    """Simulated-asynchronous successive halving.

    Parameters
    ----------
    space, evaluator, random_state:
        See :class:`~repro.bandit.base.BaseSearcher`.
    eta:
        Promotion rate: a configuration is promoted when it ranks in the
        top ``1/eta`` of completions at its rung.
    min_budget_fraction:
        Rung-0 instance fraction; rung ``k`` uses ``min * eta**k``.
    n_workers:
        Number of simulated parallel workers.
    max_started:
        Cap on distinct configurations started at rung 0 when :meth:`fit`
        receives no explicit candidates.
    """

    method_name = "ASHA"

    def __init__(
        self,
        space,
        evaluator,
        random_state=None,
        eta: float = 2.0,
        min_budget_fraction: float = 1.0 / 8.0,
        n_workers: int = 4,
        max_started: int = 32,
    ) -> None:
        super().__init__(space, evaluator, random_state)
        if eta <= 1.0:
            raise ValueError(f"eta must be > 1, got {eta}")
        if not 0.0 < min_budget_fraction <= 1.0:
            raise ValueError(f"min_budget_fraction must be in (0, 1], got {min_budget_fraction}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.eta = eta
        self.min_budget_fraction = min_budget_fraction
        self.n_workers = n_workers
        self.max_started = max_started
        self.simulated_makespan_: float = 0.0

    @property
    def max_rung(self) -> int:
        """Highest rung index (budget fraction capped at 1.0)."""
        return int(math.floor(math.log(1.0 / self.min_budget_fraction, self.eta)))

    def _budget_at(self, rung: int) -> float:
        return min(1.0, self.min_budget_fraction * self.eta**rung)

    def fit(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]] = None,
        n_configurations: Optional[int] = None,
    ) -> SearchResult:
        """Run the simulated-asynchronous search."""
        self._reset()
        start = time.perf_counter()
        if configurations is not None or n_configurations is not None:
            pool = self._initial_configurations(configurations, n_configurations)
        else:
            pool = self.space.sample_batch(self.max_started, rng=self._rng)
        pool = list(pool)
        next_new = 0

        rungs: Dict[int, _Rung] = {k: _Rung() for k in range(self.max_rung + 1)}
        configs_by_id: Dict[int, Dict[str, Any]] = {}
        key_to_id: Dict[Tuple, int] = {}
        best: Optional[Tuple[float, int, Dict[str, Any], float]] = None  # (budget, rung, config, score)

        def register(config: Dict[str, Any]) -> int:
            key = config_key(config)
            if key not in key_to_id:
                new_id = len(key_to_id)
                key_to_id[key] = new_id
                configs_by_id[new_id] = config
            return key_to_id[key]

        def next_job() -> Optional[Tuple[int, int]]:
            """(config_id, rung) per ASHA's promote-else-grow rule."""
            nonlocal next_new
            for rung_index in range(self.max_rung - 1, -1, -1):
                rung = rungs[rung_index]
                if not rung.completed:
                    continue
                n_promotable = int(len(rung.completed) / self.eta)
                ranked = sorted(rung.completed, key=lambda item: -item[0])
                for score, config_id in ranked[:n_promotable]:
                    if config_id not in rung.promoted:
                        rung.promoted.add(config_id)
                        return config_id, rung_index + 1
            if next_new < len(pool):
                config_id = register(pool[next_new])
                next_new += 1
                return config_id, 0
            return None

        # Event-driven simulation.  Evaluations run eagerly (the real cost is
        # measured at dispatch) but their scores only become visible to the
        # scheduler at the job's simulated completion time, which is what
        # makes the promotion decisions genuinely asynchronous.
        pending: List[Tuple[float, int, int, int, float]] = []  # (finish, seq, config_id, rung, score)
        free_workers = self.n_workers
        clock = 0.0
        sequence = 0
        while True:
            job = next_job() if free_workers > 0 else None
            if job is not None:
                config_id, rung_index = job
                config = configs_by_id[config_id]
                trial = self._evaluate(config, self._budget_at(rung_index), iteration=rung_index)
                duration = max(trial.result.cost, 1e-9)
                heapq.heappush(
                    pending, (clock + duration, sequence, config_id, rung_index, trial.result.score)
                )
                sequence += 1
                free_workers -= 1
                candidate = (self._budget_at(rung_index), rung_index, config, trial.result.score)
                if best is None or (candidate[0], candidate[3]) > (best[0], best[3]):
                    best = candidate
                continue
            if not pending:
                break  # nothing running, nothing schedulable: done
            finish, _, config_id, rung_index, score = heapq.heappop(pending)
            clock = max(clock, finish)
            rungs[rung_index].completed.append((score, config_id))
            free_workers += 1

        self.simulated_makespan_ = clock
        assert best is not None  # the pool is never empty
        return SearchResult(
            best_config=best[2],
            best_score=best[3],
            trials=list(self._trials),
            wall_time=time.perf_counter() - start,
            method=self.method_name,
        )
