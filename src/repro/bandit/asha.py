"""ASHA — Asynchronous Successive Halving (Li et al., 2018).

Two execution modes share one scheduler (greedy promotion of any
configuration in the top ``1/eta`` of its rung, bottom-rung backfill
otherwise):

- **Simulated** (default, no engine): the historical single-process mode.
  ``n_workers`` virtual workers pull jobs, each job's duration is the
  measured wall-clock cost of its evaluation, and worker clocks advance
  through an event queue — promotion behaviour and the simulated makespan
  are faithful even though evaluations actually run serially.
- **Engine-backed** (``engine=`` given): jobs are submitted to a
  :class:`~repro.engine.TrialEngine`, keeping up to ``n_workers`` trials
  in flight.  With a :class:`~repro.engine.ParallelExecutor` the
  asynchrony is *real*: scheduler decisions react to genuine completion
  order, ``measured_makespan_`` reports actual wall-clock time, and
  ``simulated_makespan_`` falls back to a greedy list-scheduling estimate
  over the measured costs.

A journal-backed engine makes engine-mode ASHA crash-resumable
(:meth:`~repro.bandit.base.BaseSearcher.resume`): replayed completions are
delivered in submission order, so the resumed prefix reproduces the
promotion decisions of a run whose completions arrived in submission
order — exactly the serial executor's behaviour.  Per-trial scores are
reproducible under any executor; with a parallel executor only the
*promotion schedule* may differ between an original and a resumed run,
just as it may differ between two parallel runs of a real asynchronous
deployment.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..space import config_key
from .base import BaseSearcher, SearchResult

__all__ = ["ASHA"]


@dataclass
class _Rung:
    """Completed evaluations at one budget level."""

    completed: List[Tuple[float, int]] = field(default_factory=list)  # (score, config_id)
    promoted: Set[int] = field(default_factory=set)


class _Scheduler:
    """ASHA's promote-else-grow job source, shared by both execution modes."""

    def __init__(self, pool: List[Dict[str, Any]], eta: float, max_rung: int) -> None:
        self.pool = pool
        self.eta = eta
        self.rungs: Dict[int, _Rung] = {k: _Rung() for k in range(max_rung + 1)}
        self.configs_by_id: Dict[int, Dict[str, Any]] = {}
        self._key_to_id: Dict[Tuple, int] = {}
        self._next_new = 0
        self._max_rung = max_rung

    def _register(self, config: Dict[str, Any]) -> int:
        key = config_key(config)
        if key not in self._key_to_id:
            new_id = len(self._key_to_id)
            self._key_to_id[key] = new_id
            self.configs_by_id[new_id] = config
        return self._key_to_id[key]

    def next_job(self) -> Optional[Tuple[int, int]]:
        """(config_id, rung): promote from the highest promotable rung, else grow."""
        for rung_index in range(self._max_rung - 1, -1, -1):
            rung = self.rungs[rung_index]
            if not rung.completed:
                continue
            n_promotable = int(len(rung.completed) / self.eta)
            ranked = sorted(rung.completed, key=lambda item: -item[0])
            for _, config_id in ranked[:n_promotable]:
                if config_id not in rung.promoted:
                    rung.promoted.add(config_id)
                    return config_id, rung_index + 1
        if self._next_new < len(self.pool):
            config_id = self._register(self.pool[self._next_new])
            self._next_new += 1
            return config_id, 0
        return None

    def complete(self, config_id: int, rung_index: int, score: float) -> None:
        """Make a finished evaluation visible to future scheduling decisions."""
        self.rungs[rung_index].completed.append((score, config_id))


class ASHA(BaseSearcher):
    """Asynchronous successive halving (simulated or engine-backed).

    Parameters
    ----------
    space, evaluator, random_state, engine:
        See :class:`~repro.bandit.base.BaseSearcher`.  Without an engine
        the asynchrony is simulated; with one, up to ``n_workers`` trials
        are kept in flight on the engine's executor.
    eta:
        Promotion rate: a configuration is promoted when it ranks in the
        top ``1/eta`` of completions at its rung.
    min_budget_fraction:
        Rung-0 instance fraction; rung ``k`` uses ``min * eta**k``.
    n_workers:
        Number of (virtual or in-flight) parallel workers.
    max_started:
        Cap on distinct configurations started at rung 0 when :meth:`fit`
        receives no explicit candidates.

    Attributes
    ----------
    simulated_makespan_:
        Event-queue makespan in simulated mode; greedy list-scheduling
        estimate over measured costs in engine mode.
    measured_makespan_:
        Actual wall-clock seconds of the dispatch loop (equals the serial
        evaluation time in simulated mode; genuinely smaller when an
        engine with a parallel executor overlaps trials).
    """

    method_name = "ASHA"

    def __init__(
        self,
        space,
        evaluator,
        random_state=None,
        eta: float = 2.0,
        min_budget_fraction: float = 1.0 / 8.0,
        n_workers: int = 4,
        max_started: int = 32,
        engine=None,
        telemetry=None,
    ) -> None:
        super().__init__(space, evaluator, random_state, engine=engine, telemetry=telemetry)
        if eta <= 1.0:
            raise ValueError(f"eta must be > 1, got {eta}")
        if not 0.0 < min_budget_fraction <= 1.0:
            raise ValueError(f"min_budget_fraction must be in (0, 1], got {min_budget_fraction}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.eta = eta
        self.min_budget_fraction = min_budget_fraction
        self.n_workers = n_workers
        self.max_started = max_started
        self.simulated_makespan_: float = 0.0
        self.measured_makespan_: float = 0.0

    @property
    def max_rung(self) -> int:
        """Highest rung index (budget fraction capped at 1.0)."""
        return int(math.floor(math.log(1.0 / self.min_budget_fraction, self.eta)))

    def _budget_at(self, rung: int) -> float:
        return min(1.0, self.min_budget_fraction * self.eta**rung)

    def _resolve_pool(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]],
        n_configurations: Optional[int],
    ) -> List[Dict[str, Any]]:
        if configurations is not None or n_configurations is not None:
            return list(self._initial_configurations(configurations, n_configurations))
        return list(self.space.sample_batch(self.max_started, rng=self._rng))

    def _fit(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]] = None,
        n_configurations: Optional[int] = None,
    ) -> SearchResult:
        """Run the asynchronous search (simulated or engine-backed)."""
        self._reset()
        start = time.perf_counter()
        pool = self._resolve_pool(configurations, n_configurations)
        scheduler = _Scheduler(pool, self.eta, self.max_rung)
        if self.engine is None:
            best = self._run_simulated(scheduler)
        else:
            best = self._run_engine(scheduler)
        self.measured_makespan_ = time.perf_counter() - start
        assert best is not None  # the pool is never empty
        return SearchResult(
            best_config=best[2],
            best_score=best[3],
            trials=list(self._trials),
            wall_time=time.perf_counter() - start,
            method=self.method_name,
        )

    # -- simulated mode (historical behaviour) ---------------------------------

    def _run_simulated(self, scheduler: _Scheduler):
        """Event-driven simulation: evaluations run eagerly (the real cost is
        measured at dispatch) but their scores only become visible to the
        scheduler at the job's simulated completion time, which is what
        makes the promotion decisions genuinely asynchronous."""
        best = None  # (budget, rung, config, score)
        pending: List[Tuple[float, int, int, int, float]] = []  # (finish, seq, config_id, rung, score)
        free_workers = self.n_workers
        clock = 0.0
        sequence = 0
        while True:
            job = scheduler.next_job() if free_workers > 0 else None
            if job is not None:
                config_id, rung_index = job
                config = scheduler.configs_by_id[config_id]
                trial = self._evaluate(config, self._budget_at(rung_index), iteration=rung_index)
                duration = max(trial.result.cost, 1e-9)
                heapq.heappush(
                    pending, (clock + duration, sequence, config_id, rung_index, trial.result.score)
                )
                sequence += 1
                free_workers -= 1
                candidate = (self._budget_at(rung_index), rung_index, config, trial.result.score)
                if best is None or (candidate[0], candidate[3]) > (best[0], best[3]):
                    best = candidate
                continue
            if not pending:
                break  # nothing running, nothing schedulable: done
            finish, _, config_id, rung_index, score = heapq.heappop(pending)
            clock = max(clock, finish)
            scheduler.complete(config_id, rung_index, score)
            free_workers += 1

        self.simulated_makespan_ = clock
        return best

    # -- engine mode (real dispatch) -------------------------------------------

    def _run_engine(self, scheduler: _Scheduler):
        """Keep up to ``n_workers`` trials in flight on the engine.

        Scheduling decisions consume *actual* completion order, so with a
        parallel executor this is true ASHA rather than a simulation.  The
        per-trial derived seeds still make each individual evaluation
        reproducible; only the promotion schedule may differ between
        executors, exactly as in a real asynchronous deployment.
        """
        from ..engine.protocol import TrialRequest  # local import avoids a cycle

        best = None
        in_flight: Dict[int, Tuple[int, int]] = {}  # trial_id -> (config_id, rung)
        durations: List[float] = []
        while True:
            while len(in_flight) < self.n_workers:
                job = scheduler.next_job()
                if job is None:
                    break
                config_id, rung_index = job
                request = self.engine.submit(
                    TrialRequest(
                        config=scheduler.configs_by_id[config_id],
                        budget_fraction=self._budget_at(rung_index),
                        iteration=rung_index,
                    )
                )
                in_flight[request.trial_id] = (config_id, rung_index)
            if not in_flight:
                break
            outcome = self.engine.wait_one()
            config_id, rung_index = in_flight.pop(outcome.request.trial_id)
            trial = self._record_outcome(outcome)
            scheduler.complete(config_id, rung_index, trial.result.score)
            durations.append(max(trial.result.cost, 1e-9))
            candidate = (self._budget_at(rung_index), rung_index, trial.config, trial.result.score)
            if best is None or (candidate[0], candidate[3]) > (best[0], best[3]):
                best = candidate

        self.simulated_makespan_ = self._list_schedule_makespan(durations)
        return best

    def _list_schedule_makespan(self, durations: List[float]) -> float:
        """Greedy ``n_workers``-machine makespan estimate over observed costs."""
        if not durations:
            return 0.0
        worker_free = [0.0] * self.n_workers
        heapq.heapify(worker_free)
        for duration in durations:
            heapq.heappush(worker_free, heapq.heappop(worker_free) + duration)
        return max(worker_free)
