"""HyperBand — Li et al., JMLR 2017.

Runs several Successive-Halving brackets that trade off the number of
configurations against their starting budget ("exploration-exploitation"
over resource allocation).  Bracket ``s`` starts ``n_s`` configurations at
fraction ``eta^-s`` of the instance budget and halves ``s`` times.

The configuration-proposal step is isolated in :meth:`_propose_configs` so
that BOHB can subclass and replace random sampling with its model-based
sampler while inheriting the bracket machinery unchanged.

HyperBand runs are the expensive restarts the engine's run journal exists
for: with ``engine=TrialEngine(..., journal=path)`` every completed rung
evaluation is durable, and re-running :meth:`fit` (or calling
:meth:`~repro.bandit.base.BaseSearcher.resume`) after a crash replays the
completed brackets from disk and continues from the first lost trial.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Optional, Sequence

from .base import BaseSearcher, SearchResult, Trial, top_k_indices

__all__ = ["HyperBand"]


class HyperBand(BaseSearcher):
    """HyperBand over instance budgets.

    Parameters
    ----------
    space, evaluator, random_state, engine:
        See :class:`~repro.bandit.base.BaseSearcher`; every rung of every
        bracket is submitted to the engine as one batch, and cycled pool
        configurations hit the engine's evaluation cache across brackets.
    eta:
        Halving rate inside each bracket (HpBandSter's default of 3).
    min_budget_fraction:
        Smallest per-configuration instance fraction; determines the number
        of brackets ``s_max = floor(log_eta(1 / min_budget_fraction))``.
    """

    method_name = "HB"

    def __init__(
        self,
        space,
        evaluator,
        random_state=None,
        eta: float = 3.0,
        min_budget_fraction: float = 1.0 / 27.0,
        engine=None,
        telemetry=None,
    ) -> None:
        super().__init__(space, evaluator, random_state, engine=engine, telemetry=telemetry)
        if eta <= 1.0:
            raise ValueError(f"eta must be > 1, got {eta}")
        if not 0.0 < min_budget_fraction <= 1.0:
            raise ValueError(f"min_budget_fraction must be in (0, 1], got {min_budget_fraction}")
        self.eta = eta
        self.min_budget_fraction = min_budget_fraction

    @property
    def s_max(self) -> int:
        """Deepest bracket index."""
        return int(math.floor(math.log(1.0 / self.min_budget_fraction, self.eta)))

    def bracket_plan(self) -> List[Dict[str, float]]:
        """The (n_configs, starting fraction) of every bracket, deep first."""
        plan = []
        for s in range(self.s_max, -1, -1):
            n = int(math.ceil((self.s_max + 1) / (s + 1) * self.eta**s))
            r = self.eta**-s
            plan.append({"s": s, "n_configs": n, "budget_fraction": r})
        return plan

    # -- hook for BOHB -------------------------------------------------------

    def _propose_configs(self, n: int, budget_fraction: float) -> List[Dict[str, Any]]:
        """Candidate configurations for a new bracket (random here)."""
        return self.space.sample_batch(n, rng=self._rng, unique=False)

    def _observe(self, trial: Trial) -> None:
        """Notification hook after every evaluation (no-op for HB)."""

    # -- main loop ------------------------------------------------------------

    def _fit(
        self,
        configurations: Optional[Sequence[Dict[str, Any]]] = None,
        n_configurations: Optional[int] = None,
    ) -> SearchResult:
        """Run every bracket and return the best configuration found.

        When an explicit candidate list is given (the paper's fixed-grid
        comparison), brackets draw from that pool instead of sampling the
        space, cycling when a bracket wants more configurations than the
        pool holds.
        """
        self._reset()
        start = time.perf_counter()
        pool: Optional[List[Dict[str, Any]]] = None
        if configurations is not None or n_configurations is not None:
            pool = self._initial_configurations(configurations, n_configurations)
            pool_order = list(self._rng.permutation(len(pool)))
        best_trial: Optional[Trial] = None

        for bracket in self.bracket_plan():
            s = int(bracket["s"])
            n = int(bracket["n_configs"])
            budget_fraction = float(bracket["budget_fraction"])
            if pool is not None:
                candidates = []
                while len(candidates) < n:
                    if not pool_order:
                        pool_order = list(self._rng.permutation(len(pool)))
                    candidates.append(dict(pool[pool_order.pop()]))
                candidates = candidates[:n]
            else:
                candidates = self._propose_configs(n, budget_fraction)

            with self._span(
                "bracket", s=s, n_configs=n, budget_fraction=budget_fraction
            ):
                survivors = candidates
                rung_budget = budget_fraction
                for rung in range(s + 1):
                    trials = self._evaluate_batch(
                        survivors, min(rung_budget, 1.0), iteration=rung, bracket=s
                    )
                    for trial in trials:
                        self._observe(trial)
                        if best_trial is None or self._is_better(trial, best_trial):
                            best_trial = trial
                    n_keep = max(1, int(len(survivors) / self.eta))
                    keep = top_k_indices([t.result.score for t in trials], n_keep)
                    survivors = [trials[i].config for i in keep]
                    rung_budget *= self.eta
                    if len(survivors) == 1 and rung == s:
                        break

        assert best_trial is not None  # at least one bracket always runs
        return SearchResult(
            best_config=best_trial.config,
            best_score=best_trial.result.score,
            trials=list(self._trials),
            wall_time=time.perf_counter() - start,
            method=self.method_name,
        )

    @staticmethod
    def _is_better(candidate: Trial, incumbent: Trial) -> bool:
        """Prefer larger budgets; break ties on score.

        A score measured on a larger subset is more reliable, so the
        incumbent is only displaced by an equal-or-larger-budget trial with
        a better score, or by any strictly-larger-budget trial.
        """
        if candidate.budget_fraction > incumbent.budget_fraction:
            return True
        if candidate.budget_fraction == incumbent.budget_fraction:
            return candidate.result.score > incumbent.result.score
        return False
