"""Synthetic dataset generators.

``make_classification`` follows the design of scikit-learn's generator:
class centroids on hypercube vertices, several Gaussian clusters per class,
redundant features as random linear combinations of informative ones, pure
noise features and optional label flipping.  ``make_regression`` produces a
linear target with an optional smooth nonlinear component so that MLP
capacity actually matters.

These generators drive the paper-dataset analogues in
:mod:`repro.datasets.registry`: the paper's effects depend on dataset
*shape* (size, imbalance, dimension, cluster structure), which is exactly
what the parameters control.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["make_classification", "make_drifting_classification", "make_regression"]


def _class_weights(weights: Optional[Sequence[float]], n_classes: int) -> np.ndarray:
    if weights is None:
        return np.full(n_classes, 1.0 / n_classes)
    weights = np.asarray(weights, dtype=float)
    if weights.shape[0] != n_classes:
        raise ValueError(f"weights must have length {n_classes}, got {weights.shape[0]}")
    if (weights <= 0).any():
        raise ValueError("weights must be strictly positive")
    return weights / weights.sum()


def make_classification(
    n_samples: int = 100,
    n_features: int = 20,
    n_informative: Optional[int] = None,
    n_redundant: Optional[int] = None,
    n_classes: int = 2,
    n_clusters_per_class: int = 2,
    weights: Optional[Sequence[float]] = None,
    class_sep: float = 1.0,
    flip_y: float = 0.01,
    random_state: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a random classification problem.

    Parameters
    ----------
    n_samples:
        Total number of instances.
    n_features:
        Total feature count (informative + redundant + noise).
    n_informative:
        Features carrying class signal; defaults to
        ``min(n_features, max(2, ceil(log2(n_classes * n_clusters_per_class)) + 2))``.
    n_redundant:
        Random linear combinations of informative features; defaults to
        ``min(2, n_features - n_informative)``.
    n_classes:
        Number of classes.
    n_clusters_per_class:
        Gaussian sub-clusters per class — this is the intra-class structure
        the paper's feature clustering step exploits.
    weights:
        Per-class sampling proportions (need not sum to one); ``None`` means
        balanced.
    class_sep:
        Centroid spread multiplier; larger = easier problem.
    flip_y:
        Fraction of labels replaced with uniform random classes (label
        noise).
    random_state:
        Seed for full reproducibility.

    Returns
    -------
    tuple
        ``(X, y)`` with ``X`` of shape ``(n_samples, n_features)`` and
        integer labels ``y`` in ``0..n_classes-1``.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    if n_clusters_per_class < 1:
        raise ValueError(f"n_clusters_per_class must be >= 1, got {n_clusters_per_class}")
    if not 0.0 <= flip_y <= 1.0:
        raise ValueError(f"flip_y must be in [0, 1], got {flip_y}")
    rng = np.random.default_rng(random_state)

    n_centroids = n_classes * n_clusters_per_class
    if n_informative is None:
        n_informative = min(n_features, max(2, int(np.ceil(np.log2(max(2, n_centroids)))) + 2))
    if n_informative > n_features:
        raise ValueError(
            f"n_informative={n_informative} cannot exceed n_features={n_features}"
        )
    if n_redundant is None:
        n_redundant = min(2, n_features - n_informative)
    if n_informative + n_redundant > n_features:
        raise ValueError("n_informative + n_redundant cannot exceed n_features")
    n_noise = n_features - n_informative - n_redundant

    # Random hypercube-corner-like centroids, one per (class, cluster).
    centroids = rng.choice([-1.0, 1.0], size=(n_centroids, n_informative))
    centroids += rng.uniform(-0.3, 0.3, size=centroids.shape)
    centroids *= class_sep

    probabilities = _class_weights(weights, n_classes)
    y = rng.choice(n_classes, size=n_samples, p=probabilities)
    cluster_of = rng.integers(n_clusters_per_class, size=n_samples)
    centroid_index = y * n_clusters_per_class + cluster_of

    X_informative = centroids[centroid_index] + rng.standard_normal((n_samples, n_informative))
    parts = [X_informative]
    if n_redundant:
        mixing = rng.standard_normal((n_informative, n_redundant))
        parts.append(X_informative @ mixing / np.sqrt(n_informative))
    if n_noise:
        parts.append(rng.standard_normal((n_samples, n_noise)))
    X = np.hstack(parts)

    if flip_y > 0:
        flip_mask = rng.random(n_samples) < flip_y
        y[flip_mask] = rng.integers(n_classes, size=int(flip_mask.sum()))

    # Shuffle feature columns so informative features are not contiguous.
    X = X[:, rng.permutation(n_features)]
    return X, y.astype(int)


def make_drifting_classification(
    n_samples: int = 100,
    n_features: int = 20,
    drift: float = 1.0,
    drift_rotation: float = 0.5,
    nan_cell_rate: float = 0.0,
    random_state: Optional[int] = None,
    **kwargs,
) -> Tuple[np.ndarray, np.ndarray]:
    """A non-stationary classification problem: the distribution moves.

    Rows are ordered by "arrival time" and the class structure drifts
    along that axis — centroids translate by up to ``drift`` standard
    deviations and the informative subspace rotates by up to
    ``drift_rotation`` radians from the first row to the last.  Subset-CV
    evaluators that subsample rows therefore see genuinely different
    distributions at different budgets, which is the hostile regime the
    guard layer and the engine's degradation path must survive together.
    ``nan_cell_rate`` additionally knocks out feature cells (sensor
    dropout while drifting), giving the guard's repair policy real work.

    Remaining keyword arguments forward to :func:`make_classification`;
    everything is a pure function of ``random_state``.
    """
    if drift < 0 or drift_rotation < 0:
        raise ValueError(
            f"drift terms must be >= 0, got drift={drift}, drift_rotation={drift_rotation}"
        )
    if not 0.0 <= nan_cell_rate <= 1.0:
        raise ValueError(f"nan_cell_rate must be in [0, 1], got {nan_cell_rate}")
    X, y = make_classification(
        n_samples=n_samples, n_features=n_features, random_state=random_state, **kwargs
    )
    rng = np.random.default_rng(None if random_state is None else random_state + 1)
    progress = np.linspace(0.0, 1.0, n_samples)[:, None]
    if drift > 0:
        direction = rng.standard_normal(n_features)
        direction /= max(np.linalg.norm(direction), 1e-12)
        X = X + drift * progress * direction
    if drift_rotation > 0 and n_features >= 2:
        i, j = rng.choice(n_features, size=2, replace=False)
        theta = drift_rotation * progress[:, 0]
        cos, sin = np.cos(theta), np.sin(theta)
        xi, xj = X[:, i].copy(), X[:, j].copy()
        X[:, i] = cos * xi - sin * xj
        X[:, j] = sin * xi + cos * xj
    if nan_cell_rate > 0:
        X[rng.random(X.shape) < nan_cell_rate] = np.nan
    return X, y


def make_regression(
    n_samples: int = 100,
    n_features: int = 20,
    n_informative: Optional[int] = None,
    noise: float = 0.1,
    nonlinearity: float = 0.5,
    random_state: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a random regression problem.

    The target mixes a linear map of the informative features with a smooth
    ``tanh`` interaction term weighted by ``nonlinearity``, so networks with
    hidden capacity genuinely outperform linear fits.

    Returns
    -------
    tuple
        ``(X, y)`` with standardized ``y``.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if noise < 0:
        raise ValueError(f"noise must be non-negative, got {noise}")
    rng = np.random.default_rng(random_state)
    if n_informative is None:
        n_informative = max(1, min(n_features, n_features // 2))
    if n_informative > n_features:
        raise ValueError(
            f"n_informative={n_informative} cannot exceed n_features={n_features}"
        )

    X = rng.standard_normal((n_samples, n_features))
    informative = X[:, :n_informative]
    linear_weights = rng.standard_normal(n_informative)
    y = informative @ linear_weights
    if nonlinearity > 0 and n_informative >= 2:
        hidden = np.tanh(informative @ rng.standard_normal((n_informative, 4)))
        y = y + nonlinearity * (hidden @ rng.standard_normal(4))
    y = y + noise * rng.standard_normal(n_samples)

    spread = y.std()
    if spread > 0:
        y = (y - y.mean()) / spread
    # Shuffle columns so informative features are not contiguous.
    X = X[:, rng.permutation(n_features)]
    return X, y
