"""Synthetic datasets and the registry of paper-dataset analogues."""

from .io import load_csv, load_svmlight_file
from .registry import (
    DATASET_SPECS,
    Dataset,
    DatasetSpec,
    dataset_info_table,
    list_datasets,
    load_dataset,
)
from .synthetic import make_classification, make_drifting_classification, make_regression

__all__ = [
    "DATASET_SPECS",
    "Dataset",
    "DatasetSpec",
    "dataset_info_table",
    "list_datasets",
    "load_csv",
    "load_dataset",
    "load_svmlight_file",
    "make_classification",
    "make_drifting_classification",
    "make_regression",
]
