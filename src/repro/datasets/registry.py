"""Registry of synthetic analogues for the paper's 12 public datasets.

The paper evaluates on LibSVM / UCI / Kaggle datasets (Table II) that are
not shippable offline; each entry here is a synthetic stand-in matching the
original's *shape*: task type, class count, class balance, feature
dimensionality (scaled down for laptop runtimes along with the row count),
and difficulty.  The substitution is documented in DESIGN.md.

The loader applies a deterministic 80/20 split for datasets whose original
has no test partition (the paper's rule) and standardizes features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..learners.preprocessing import StandardScaler
from ..model_selection.splitters import train_test_split
from .synthetic import make_classification, make_regression

__all__ = ["Dataset", "DatasetSpec", "DATASET_SPECS", "load_dataset", "list_datasets", "dataset_info_table"]


@dataclass
class Dataset:
    """A loaded train/test dataset ready for HPO experiments.

    Attributes
    ----------
    name:
        Registry key (paper dataset name).
    X_train, y_train, X_test, y_test:
        Standardized features and raw targets.
    task:
        ``"binary"``, ``"multiclass"`` or ``"regression"``.
    metric:
        Score the paper reports for this dataset: ``"accuracy"``, ``"f1"``
        or ``"r2"``.
    """

    name: str
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    task: str
    metric: str

    @property
    def n_train(self) -> int:
        """Number of training instances."""
        return self.X_train.shape[0]

    @property
    def n_features(self) -> int:
        """Feature dimensionality."""
        return self.X_train.shape[1]

    @property
    def n_classes(self) -> int:
        """Class count (0 for regression)."""
        if self.task == "regression":
            return 0
        return int(len(np.unique(self.y_train)))


@dataclass
class DatasetSpec:
    """Generation recipe for one paper-dataset analogue."""

    name: str
    task: str  # "binary" | "multiclass" | "regression"
    metric: str  # "accuracy" | "f1" | "r2"
    n_samples: int
    n_features: int
    n_classes: int = 2
    n_informative: Optional[int] = None
    weights: Optional[Sequence[float]] = None
    class_sep: float = 1.0
    flip_y: float = 0.02
    n_clusters_per_class: int = 2
    noise: float = 0.15
    nonlinearity: float = 0.6
    paper_train: int = 0  # original #train rows from Table II
    paper_features: int = 0  # original #features from Table II
    notes: str = ""
    extra: Dict = field(default_factory=dict)


# Scaled-down analogues of Table II.  Row/feature counts are reduced from the
# originals (recorded in paper_train / paper_features) to keep full benches
# laptop-fast; class balance and difficulty knobs mirror the real datasets.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="australian",
            task="binary",
            metric="accuracy",
            n_samples=690,
            n_features=14,
            class_sep=0.9,
            flip_y=0.08,
            paper_train=690,
            paper_features=14,
            notes="credit approval; kept at original size",
        ),
        DatasetSpec(
            name="splice",
            task="binary",
            metric="accuracy",
            n_samples=1000,
            n_features=60,
            n_informative=10,
            class_sep=1.05,
            flip_y=0.05,
            n_clusters_per_class=3,
            paper_train=1000,
            paper_features=60,
            notes="DNA splice junctions; kept at original size",
        ),
        DatasetSpec(
            name="gisette",
            task="binary",
            metric="accuracy",
            n_samples=1500,
            n_features=400,
            n_informative=18,
            class_sep=1.6,
            flip_y=0.01,
            paper_train=6000,
            paper_features=5000,
            notes="high-dimensional digits 4-vs-9; scaled 6000x5000 -> 1500x400",
        ),
        DatasetSpec(
            name="machine",
            task="binary",
            metric="f1",
            n_samples=4000,
            n_features=9,
            weights=[0.955, 0.045],
            class_sep=2.6,
            flip_y=0.003,
            paper_train=10000,
            paper_features=9,
            notes="predictive maintenance; imbalanced; scaled 10000 -> 4000 rows",
        ),
        DatasetSpec(
            name="NTICUSdroid",
            task="binary",
            metric="accuracy",
            n_samples=6000,
            n_features=86,
            n_informative=15,
            class_sep=1.55,
            flip_y=0.02,
            n_clusters_per_class=3,
            paper_train=29332,
            paper_features=86,
            notes="android permissions; scaled 29332 -> 6000 rows",
        ),
        DatasetSpec(
            name="a9a",
            task="binary",
            metric="f1",
            n_samples=6000,
            n_features=123,
            weights=[0.76, 0.24],
            n_informative=12,
            class_sep=1.7,
            flip_y=0.035,
            n_clusters_per_class=3,
            paper_train=32561,
            paper_features=123,
            notes="adult census income; imbalanced; scaled 32561 -> 6000 rows",
        ),
        DatasetSpec(
            name="fraud",
            task="binary",
            metric="f1",
            n_samples=10000,
            n_features=30,
            weights=[0.985, 0.015],
            class_sep=3.2,
            flip_y=0.0005,
            paper_train=284807,
            paper_features=86,
            notes=(
                "credit-card fraud; extreme imbalance softened from 0.17% to "
                "1.5% positives so the scaled-down row count retains enough "
                "positive instances per fold; scaled 284807 -> 10000 rows"
            ),
        ),
        DatasetSpec(
            name="credit2023",
            task="binary",
            metric="accuracy",
            n_samples=10000,
            n_features=29,
            class_sep=1.3,
            flip_y=0.02,
            paper_train=568630,
            paper_features=29,
            notes="balanced 2023 fraud release; scaled 568630 -> 10000 rows",
        ),
        DatasetSpec(
            name="satimage",
            task="multiclass",
            metric="f1",
            n_samples=3000,
            n_features=36,
            n_classes=6,
            n_informative=12,
            weights=[0.24, 0.11, 0.22, 0.10, 0.11, 0.22],
            class_sep=1.35,
            flip_y=0.04,
            paper_train=4435,
            paper_features=36,
            notes="satellite image pixels; mild imbalance; scaled 4435 -> 3000 rows",
        ),
        DatasetSpec(
            name="usps",
            task="multiclass",
            metric="accuracy",
            n_samples=3000,
            n_features=64,
            n_classes=10,
            n_informative=16,
            class_sep=1.6,
            flip_y=0.025,
            paper_train=7291,
            paper_features=256,
            notes="handwritten digits; scaled 7291x256 -> 3000x64",
        ),
        DatasetSpec(
            name="molecules",
            task="regression",
            metric="r2",
            n_samples=4000,
            n_features=120,
            noise=0.1,
            nonlinearity=0.8,
            paper_train=16242,
            paper_features=1275,
            notes="ground-state energies; scaled 16242x1275 -> 4000x120",
        ),
        DatasetSpec(
            name="kc-house",
            task="regression",
            metric="r2",
            n_samples=5000,
            n_features=18,
            noise=0.8,
            nonlinearity=0.6,
            paper_train=21613,
            paper_features=18,
            notes="house prices; scaled 21613 -> 5000 rows",
        ),
    ]
}


def list_datasets(task: Optional[str] = None) -> list:
    """Registered dataset names, optionally filtered by task type."""
    names = sorted(DATASET_SPECS)
    if task is None:
        return names
    return [name for name in names if DATASET_SPECS[name].task == task]


def load_dataset(
    name: str,
    scale: float = 1.0,
    random_state: int = 0,
    test_size: float = 0.2,
) -> Dataset:
    """Generate and split a paper-dataset analogue.

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    scale:
        Multiplier on the registry row count (``0 < scale <= 1`` shrinks for
        quick tests; values above 1 grow toward paper scale).
    random_state:
        Seed controlling both generation and the 80/20 split.
    test_size:
        Held-out fraction (the paper's 80/20 rule).

    Returns
    -------
    Dataset
        Standardized features and split targets.
    """
    if name not in DATASET_SPECS:
        known = ", ".join(sorted(DATASET_SPECS))
        raise KeyError(f"Unknown dataset {name!r}; available: {known}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    spec = DATASET_SPECS[name]
    n_samples = max(60, int(round(spec.n_samples * scale)))
    X, y = _generate(spec, n_samples, random_state)

    stratify = y if spec.task != "regression" else None
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=test_size, stratify=stratify, random_state=random_state
    )
    scaler = StandardScaler().fit(X_train)
    return Dataset(
        name=name,
        X_train=scaler.transform(X_train),
        y_train=y_train,
        X_test=scaler.transform(X_test),
        y_test=y_test,
        task=spec.task,
        metric=spec.metric,
    )


def _generate(spec: DatasetSpec, n_samples: int, random_state: int) -> Tuple[np.ndarray, np.ndarray]:
    if spec.task == "regression":
        return make_regression(
            n_samples=n_samples,
            n_features=spec.n_features,
            noise=spec.noise,
            nonlinearity=spec.nonlinearity,
            random_state=random_state,
        )
    X, y = make_classification(
        n_samples=n_samples,
        n_features=spec.n_features,
        n_informative=spec.n_informative,
        n_classes=spec.n_classes,
        n_clusters_per_class=spec.n_clusters_per_class,
        weights=spec.weights,
        class_sep=spec.class_sep,
        flip_y=spec.flip_y,
        random_state=random_state,
    )
    # Guarantee every class appears at least twice so stratified splitting
    # works even at tiny scales: recycle instances of the majority class.
    classes, counts = np.unique(y, return_counts=True)
    rng = np.random.default_rng(random_state + 1)
    for cls in range(spec.n_classes):
        present = int(counts[classes == cls].sum()) if cls in classes else 0
        deficit = 2 - present
        if deficit > 0:
            replace_idx = rng.choice(np.flatnonzero(y == classes[counts.argmax()]), size=deficit, replace=False)
            y[replace_idx] = cls
    return X, y


def dataset_info_table(scale: float = 1.0) -> str:
    """Render the Table II analogue (name, task, classes, sizes, features)."""
    header = f"{'dataset':<14}{'task':<12}{'#classes':>9}{'#train':>9}{'#test':>8}{'#features':>11}  paper(train x feat)"
    lines = [header, "-" * len(header)]
    for name in list_datasets():
        spec = DATASET_SPECS[name]
        dataset = load_dataset(name, scale=scale)
        n_classes = spec.n_classes if spec.task != "regression" else 0
        lines.append(
            f"{name:<14}{spec.task:<12}{n_classes or '-':>9}{dataset.n_train:>9}"
            f"{len(dataset.y_test):>8}{dataset.n_features:>11}  {spec.paper_train} x {spec.paper_features}"
        )
    return "\n".join(lines)
