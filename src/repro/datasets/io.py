"""File-format loaders: LibSVM sparse text and numeric CSV.

The paper's datasets come from LibSVM / UCI / Kaggle; in an online
environment a user of this package can load the *real* files with these
parsers and run every experiment unchanged (the runners only need
``(X, y)`` arrays).  Implemented with the standard library + numpy only.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

__all__ = ["load_svmlight_file", "load_csv"]


def load_svmlight_file(
    path: Union[str, Path],
    n_features: Optional[int] = None,
    zero_based: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Parse a LibSVM/svmlight text file into dense arrays.

    Each line is ``<label> <index>:<value> <index>:<value> ...``; comments
    start with ``#``.  Feature indices are 1-based by default (the LibSVM
    convention).

    Parameters
    ----------
    path:
        File to read.
    n_features:
        Force the feature-matrix width; inferred from the largest index
        when omitted.
    zero_based:
        Set when the file uses 0-based indices.

    Returns
    -------
    tuple
        ``(X, y)`` with ``X`` dense of shape ``(n_samples, n_features)``.
    """
    path = Path(path)
    labels = []
    rows = []  # list of (indices, values)
    max_index = -1
    with path.open() as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            try:
                labels.append(float(parts[0]))
            except ValueError:
                raise ValueError(f"{path}:{line_number}: malformed label {parts[0]!r}") from None
            indices, values = [], []
            for token in parts[1:]:
                try:
                    index_text, value_text = token.split(":", 1)
                    index = int(index_text)
                    value = float(value_text)
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}: malformed feature token {token!r}"
                    ) from None
                if not zero_based:
                    index -= 1
                if index < 0:
                    raise ValueError(f"{path}:{line_number}: negative feature index")
                indices.append(index)
                values.append(value)
                max_index = max(max_index, index)
            rows.append((indices, values))

    if not rows:
        raise ValueError(f"{path} contains no samples")
    width = n_features if n_features is not None else max_index + 1
    if width <= 0:
        raise ValueError("Could not infer a positive feature count")
    X = np.zeros((len(rows), width), dtype=float)
    for row_index, (indices, values) in enumerate(rows):
        for index, value in zip(indices, values):
            if index >= width:
                raise ValueError(
                    f"feature index {index} exceeds n_features={width}"
                )
            X[row_index, index] = value
    y = np.array(labels)
    # Integer-valued labels (the common classification case) come back as ints.
    if np.all(y == np.round(y)):
        y = y.astype(int)
    return X, y


def load_csv(
    path: Union[str, Path],
    target_column: Union[int, str] = -1,
    has_header: bool = True,
    delimiter: str = ",",
) -> Tuple[np.ndarray, np.ndarray]:
    """Load a numeric CSV into ``(X, y)``.

    Parameters
    ----------
    path:
        File to read.
    target_column:
        Column holding the target — an integer position (negative allowed)
        or, when the file has a header, a column name.
    has_header:
        Whether the first row is a header.
    delimiter:
        Field separator.

    Returns
    -------
    tuple
        ``(X, y)``; non-numeric target values are label-encoded to ints.
    """
    path = Path(path)
    with path.open() as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty")

    header = None
    if has_header:
        header = [cell.strip() for cell in lines[0].split(delimiter)]
        lines = lines[1:]
        if not lines:
            raise ValueError(f"{path} has a header but no data rows")

    table = [ [cell.strip() for cell in line.split(delimiter)] for line in lines ]
    widths = {len(row) for row in table}
    if header is not None:
        widths.add(len(header))
    if len(widths) != 1:
        raise ValueError(f"{path} has ragged rows (widths {sorted(widths)})")
    n_columns = widths.pop()

    if isinstance(target_column, str):
        if header is None:
            raise ValueError("A named target_column requires has_header=True")
        try:
            target_index = header.index(target_column)
        except ValueError:
            raise ValueError(f"No column named {target_column!r}; have {header}") from None
    else:
        target_index = target_column % n_columns

    target_raw = [row[target_index] for row in table]
    feature_rows = [
        [cell for i, cell in enumerate(row) if i != target_index] for row in table
    ]
    try:
        X = np.array(feature_rows, dtype=float)
    except ValueError:
        raise ValueError(f"{path}: non-numeric feature values") from None

    try:
        y = np.array(target_raw, dtype=float)
        if np.all(y == np.round(y)):
            y = y.astype(int)
    except ValueError:
        # Categorical string target: encode to 0..k-1 by sorted name.
        classes = sorted(set(target_raw))
        mapping = {name: code for code, name in enumerate(classes)}
        y = np.array([mapping[value] for value in target_raw], dtype=int)
    return X, y
