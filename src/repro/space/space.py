"""Search-space container used by every HPO method.

A :class:`SearchSpace` holds named :class:`~repro.space.params.Parameter`
objects and provides random sampling, exhaustive grid enumeration (the paper
evaluates full grids, e.g. the 162-configuration space of Table III's first
four rows), unit-hypercube encoding for model-based samplers, and stable
configuration keys for deduplication.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .params import Parameter

__all__ = ["SearchSpace", "config_key"]


def config_key(config: Dict[str, Any]) -> Tuple:
    """Hashable, order-independent identity of a configuration dict."""

    def _freeze(value: Any):
        if isinstance(value, (list, tuple)):
            return tuple(_freeze(v) for v in value)
        if isinstance(value, np.generic):
            return value.item()
        return value

    return tuple(sorted((name, _freeze(value)) for name, value in config.items()))


class SearchSpace:
    """Ordered collection of hyperparameters.

    Parameters
    ----------
    parameters:
        The parameter objects; their ``name`` attributes must be unique.

    Examples
    --------
    >>> from repro.space import SearchSpace, Categorical
    >>> space = SearchSpace([
    ...     Categorical("activation", ["relu", "tanh"]),
    ...     Categorical("solver", ["sgd", "adam"]),
    ... ])
    >>> space.n_configurations
    4
    >>> len(space.grid())
    4
    """

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        parameters = list(parameters)
        if not parameters:
            raise ValueError("SearchSpace requires at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"Duplicate parameter names: {duplicates}")
        self.parameters: List[Parameter] = parameters
        self._by_name: Dict[str, Parameter] = {p.name: p for p in parameters}

    # -- introspection ------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """Parameter names in definition order."""
        return [p.name for p in self.parameters]

    def __len__(self) -> int:
        return len(self.parameters)

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"No parameter named {name!r}; have {self.names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self.parameters)

    @property
    def is_finite(self) -> bool:
        """Whether the full grid can be enumerated."""
        return all(p.is_finite for p in self.parameters)

    @property
    def n_configurations(self) -> float:
        """Grid size for finite spaces, ``inf`` otherwise."""
        if not self.is_finite:
            return float("inf")
        total = 1
        for p in self.parameters:
            total *= len(p.grid_values())
        return total

    # -- sampling and enumeration -------------------------------------------

    def sample(self, rng: Optional[np.random.Generator] = None, random_state: Optional[int] = None) -> Dict[str, Any]:
        """Draw one configuration uniformly at random."""
        if rng is None:
            rng = np.random.default_rng(random_state)
        return {p.name: p.sample(rng) for p in self.parameters}

    def sample_batch(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        random_state: Optional[int] = None,
        unique: bool = True,
        max_tries_factor: int = 20,
    ) -> List[Dict[str, Any]]:
        """Draw ``n`` configurations, deduplicated when ``unique``.

        For finite spaces smaller than ``n`` the full grid is returned
        (shuffled) rather than looping forever.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if rng is None:
            rng = np.random.default_rng(random_state)
        if unique and self.is_finite and self.n_configurations <= n:
            grid = self.grid()
            rng.shuffle(grid)
            return grid
        configs: List[Dict[str, Any]] = []
        seen = set()
        tries = 0
        while len(configs) < n and tries < n * max_tries_factor:
            tries += 1
            config = self.sample(rng)
            key = config_key(config)
            if unique and key in seen:
                continue
            seen.add(key)
            configs.append(config)
        return configs

    def grid(self) -> List[Dict[str, Any]]:
        """Every configuration of a finite space (cartesian product)."""
        if not self.is_finite:
            infinite = [p.name for p in self.parameters if not p.is_finite]
            raise ValueError(f"Cannot enumerate infinite parameters: {infinite}")
        value_lists = [p.grid_values() for p in self.parameters]
        return [
            dict(zip(self.names, combination))
            for combination in itertools.product(*value_lists)
        ]

    # -- encoding for model-based samplers -----------------------------------

    def encode(self, config: Dict[str, Any]) -> np.ndarray:
        """Map a configuration to a vector in the unit hypercube."""
        self.validate(config)
        return np.array([p.encode(config[p.name]) for p in self.parameters])

    def decode(self, vector: np.ndarray) -> Dict[str, Any]:
        """Map a unit-hypercube vector back to the nearest configuration."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (len(self.parameters),):
            raise ValueError(
                f"vector must have shape ({len(self.parameters)},), got {vector.shape}"
            )
        return {p.name: p.decode(v) for p, v in zip(self.parameters, vector)}

    def validate(self, config: Dict[str, Any]) -> None:
        """Raise ``ValueError`` if ``config`` does not match this space."""
        missing = [name for name in self.names if name not in config]
        if missing:
            raise ValueError(f"Configuration missing parameters: {missing}")
        extra = [name for name in config if name not in self._by_name]
        if extra:
            raise ValueError(f"Configuration has unknown parameters: {extra}")
        for p in self.parameters:
            if config[p.name] not in p:
                raise ValueError(
                    f"Value {config[p.name]!r} invalid for parameter {p.name!r}"
                )

    def subspace(self, names: Sequence[str]) -> "SearchSpace":
        """A new space restricted to the given parameter names (in order)."""
        return SearchSpace([self[name] for name in names])

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.parameters)
        return f"SearchSpace([{inner}])"
