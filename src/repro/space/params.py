"""Hyperparameter types for search-space definitions.

Three parameter kinds cover the paper's needs: :class:`Categorical` (the
entire Table III space is categorical), plus :class:`Integer` and
:class:`Float` for continuous extensions.  Every parameter supports random
sampling, unit-interval encoding (used by BOHB's KDE model) and — where
finite — grid enumeration.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence

import numpy as np

__all__ = ["Parameter", "Categorical", "Integer", "Float"]


class Parameter:
    """Abstract hyperparameter: a named domain with sampling and encoding."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("Parameter name must be non-empty")
        self.name = name

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value uniformly from the domain."""
        raise NotImplementedError

    def encode(self, value: Any) -> float:
        """Map a domain value to the unit interval ``[0, 1]``."""
        raise NotImplementedError

    def decode(self, unit: float) -> Any:
        """Inverse of :meth:`encode` (rounded for discrete domains)."""
        raise NotImplementedError

    def grid_values(self) -> List[Any]:
        """All values for exhaustive enumeration, if the domain is finite."""
        raise NotImplementedError

    @property
    def is_finite(self) -> bool:
        """Whether :meth:`grid_values` is available."""
        return False

    def __contains__(self, value: Any) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Categorical(Parameter):
    """Finite unordered set of choices.

    Values may be any hashable-or-list Python objects (strings, tuples,
    booleans, numbers); tuples such as ``(50, 50)`` for hidden layer sizes
    work directly.
    """

    def __init__(self, name: str, choices: Sequence[Any]) -> None:
        super().__init__(name)
        choices = list(choices)
        if not choices:
            raise ValueError(f"Categorical {name!r} needs at least one choice")
        self.choices = choices

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one choice uniformly."""
        return self.choices[int(rng.integers(len(self.choices)))]

    def encode(self, value: Any) -> float:
        """Map a choice to its evenly spaced position in [0, 1]."""
        index = self._index(value)
        if len(self.choices) == 1:
            return 0.5
        return index / (len(self.choices) - 1)

    def decode(self, unit: float) -> Any:
        """Nearest choice for a unit-interval coordinate."""
        unit = min(max(float(unit), 0.0), 1.0)
        index = int(round(unit * (len(self.choices) - 1)))
        return self.choices[index]

    def grid_values(self) -> List[Any]:
        """All choices, in definition order."""
        return list(self.choices)

    @property
    def is_finite(self) -> bool:
        return True

    def _index(self, value: Any) -> int:
        for i, choice in enumerate(self.choices):
            if choice == value:
                return i
        raise ValueError(f"{value!r} is not a choice of parameter {self.name!r}")

    def __contains__(self, value: Any) -> bool:
        return any(choice == value for choice in self.choices)

    def __len__(self) -> int:
        return len(self.choices)

    def __repr__(self) -> str:
        return f"Categorical({self.name!r}, {self.choices!r})"


class Float(Parameter):
    """Bounded continuous parameter, optionally log-uniform."""

    def __init__(self, name: str, low: float, high: float, log: bool = False) -> None:
        super().__init__(name)
        if not low < high:
            raise ValueError(f"Float {name!r} requires low < high, got [{low}, {high}]")
        if log and low <= 0:
            raise ValueError(f"Float {name!r} with log scale requires low > 0")
        self.low = float(low)
        self.high = float(high)
        self.log = log

    def sample(self, rng: np.random.Generator) -> float:
        """Draw uniformly (log-uniformly when ``log``) from the range."""
        return self.decode(float(rng.random()))

    def encode(self, value: Any) -> float:
        """Map a value to [0, 1] (log-scaled when ``log``)."""
        value = float(value)
        if value not in self:
            raise ValueError(f"{value} outside bounds [{self.low}, {self.high}] of {self.name!r}")
        if self.log:
            return (math.log(value) - math.log(self.low)) / (math.log(self.high) - math.log(self.low))
        return (value - self.low) / (self.high - self.low)

    def decode(self, unit: float) -> float:
        """Inverse of :meth:`encode`, clipping to the bounds."""
        unit = min(max(float(unit), 0.0), 1.0)
        if self.log:
            return float(math.exp(math.log(self.low) + unit * (math.log(self.high) - math.log(self.low))))
        return self.low + unit * (self.high - self.low)

    def grid_values(self, n_points: Optional[int] = None) -> List[float]:
        """Evenly spaced grid of ``n_points`` values (default 5)."""
        n_points = n_points or 5
        return [self.decode(u) for u in np.linspace(0.0, 1.0, n_points)]

    def __contains__(self, value: Any) -> bool:
        try:
            value = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= value <= self.high

    def __repr__(self) -> str:
        return f"Float({self.name!r}, {self.low}, {self.high}, log={self.log})"


class Integer(Parameter):
    """Bounded integer parameter (inclusive on both ends)."""

    def __init__(self, name: str, low: int, high: int, log: bool = False) -> None:
        super().__init__(name)
        if not low < high:
            raise ValueError(f"Integer {name!r} requires low < high, got [{low}, {high}]")
        if log and low <= 0:
            raise ValueError(f"Integer {name!r} with log scale requires low > 0")
        self.low = int(low)
        self.high = int(high)
        self.log = log

    def sample(self, rng: np.random.Generator) -> int:
        """Draw an integer uniformly (log-uniformly when ``log``)."""
        if self.log:
            return self.decode(float(rng.random()))
        return int(rng.integers(self.low, self.high + 1))

    def encode(self, value: Any) -> float:
        """Map an integer to [0, 1] (log-scaled when ``log``)."""
        value = int(value)
        if value not in self:
            raise ValueError(f"{value} outside bounds [{self.low}, {self.high}] of {self.name!r}")
        if self.log:
            return (math.log(value) - math.log(self.low)) / (math.log(self.high) - math.log(self.low))
        return (value - self.low) / (self.high - self.low)

    def decode(self, unit: float) -> int:
        """Nearest in-range integer for a unit-interval coordinate."""
        unit = min(max(float(unit), 0.0), 1.0)
        if self.log:
            raw = math.exp(math.log(self.low) + unit * (math.log(self.high) - math.log(self.low)))
        else:
            raw = self.low + unit * (self.high - self.low)
        return int(min(max(round(raw), self.low), self.high))

    def grid_values(self) -> List[int]:
        """Every integer in the inclusive range."""
        return list(range(self.low, self.high + 1))

    @property
    def is_finite(self) -> bool:
        return True

    def __contains__(self, value: Any) -> bool:
        try:
            as_int = int(value)
        except (TypeError, ValueError):
            return False
        return as_int == value and self.low <= as_int <= self.high

    def __repr__(self) -> str:
        return f"Integer({self.name!r}, {self.low}, {self.high}, log={self.log})"
