"""Hyperparameter search-space definitions."""

from .params import Categorical, Float, Integer, Parameter
from .space import SearchSpace, config_key

__all__ = ["Categorical", "Float", "Integer", "Parameter", "SearchSpace", "config_key"]
