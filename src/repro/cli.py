"""Command-line interface.

Subcommands::

    python -m repro datasets                 # list dataset analogues
    python -m repro tune --dataset NAME      # run HPO on one dataset
    python -m repro report --out report.md   # regenerate all experiments
    python -m repro serve --root DIR         # run the HPO service daemon
    python -m repro submit --url U ...       # submit a job to the daemon
    python -m repro jobs --url U [...]       # list/inspect/cancel jobs
    python -m repro obs snapshot [...]       # Prometheus-text metrics snapshot

``tune`` runs any registered method (``sha+``, ``bohb``, ...) on a registry
dataset, prints the chosen configuration with its train/test scores and can
persist the full search record as JSON.  The execution-engine flags
``--n-workers``, ``--cache/--no-cache`` and ``--max-retries`` route
evaluations through :class:`repro.engine.TrialEngine` (a process pool when
``--n-workers > 1``), and the run summary then reports the cache hit rate.

Robustness flags: ``--journal PATH`` write-ahead-logs every evaluation so
a crashed run can be continued with ``--resume`` (replaying the durable
trials and reproducing the uninterrupted result bit for bit), and
``--trial-timeout SECONDS`` arms the parallel executor's watchdog so a
hung evaluation is killed, retried with backoff, and eventually degraded
instead of stalling the search forever.  ``--guard POLICY`` switches on
the data-integrity guard layer (:mod:`repro.guard`): dirty datasets are
rejected (``strict``), repaired in a copy (``repair``) or recorded
(``warn``), degenerate grouping/fold cases degrade gracefully, and the
run summary reports every guard event.  The guard policy is part of a
journal's identity, so a ``--resume`` under a different policy refuses
rather than silently mixing scores.

Observability flags (:mod:`repro.telemetry`): ``--trace PATH`` streams a
structured span trace (run > bracket > rung > trial > fold > fit) as
JSONL, convertible to Chrome-trace JSON with ``tools/trace_view.py``;
``--metrics`` prints the merged metric counters/histograms after the
run; ``--profile`` additionally records ``@profiled`` hot-path timings
(MLP fit, k-means, fold construction).  With a tty on stderr any of the
three also shows a live one-line progress ticker.  Telemetry is
observational only — the chosen configuration and all scores are bitwise
identical with and without it.

Service verbs (:mod:`repro.serve`): ``serve`` runs the multi-tenant HPO
daemon in the foreground (graceful drain on SIGTERM), ``submit`` posts
one job spec to a running daemon (``--wait`` blocks for the terminal
state and prints the incumbent), and ``jobs`` lists jobs, prints one
record (``--job ID``), cancels cooperatively (``--cancel ID``) or dumps
daemon stats (``--stats``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import METHODS, MLPModelFactory, make_scorer, optimize
from .datasets import dataset_info_table, list_datasets, load_dataset
from .experiments import paper_search_space
from .results import save_result
from .telemetry.formatting import format_percent

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bandit-based HPO reproduction (ICDE 2024)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser("datasets", help="list dataset analogues")
    datasets_parser.add_argument("--scale", type=float, default=1.0)

    tune_parser = subparsers.add_parser("tune", help="run HPO on one dataset")
    tune_parser.add_argument("--dataset", required=True, choices=list_datasets())
    tune_parser.add_argument("--method", default="sha+", choices=sorted(METHODS))
    tune_parser.add_argument("--hps", type=int, default=2,
                             help="number of Table III hyperparameters (1-8)")
    tune_parser.add_argument("--scale", type=float, default=0.5)
    tune_parser.add_argument("--seed", type=int, default=0)
    tune_parser.add_argument("--max-iter", type=int, default=25)
    tune_parser.add_argument("--save", default=None, help="write the search record as JSON")
    tune_parser.add_argument("--n-workers", type=_positive_int, default=1,
                             help="evaluation worker processes (>1 enables the parallel executor)")
    tune_parser.add_argument("--min-workers", type=_positive_int, default=None, metavar="N",
                             help="elastic pool floor: start here, grow on demand up to "
                                  "--max-workers, shrink back at rung barriers "
                                  "(implies the parallel executor)")
    tune_parser.add_argument("--max-workers", type=_positive_int, default=None, metavar="N",
                             help="elastic pool ceiling (implies the parallel executor)")
    tune_parser.add_argument("--speculate", action="store_true",
                             help="straggler mitigation: re-run a trial that exceeds the "
                                  "running-median deadline on an idle worker and keep the "
                                  "first finite result (bit-identical either way; implies "
                                  "the parallel executor)")
    tune_parser.add_argument("--cache", action=argparse.BooleanOptionalAction, default=None,
                             help="memoize repeated (config, budget) evaluations "
                                  "(default: on whenever the engine is active)")
    tune_parser.add_argument("--max-retries", type=int, default=None,
                             help="retries per failed trial before degrading it (engine default: 1)")
    tune_parser.add_argument("--journal", default=None, metavar="PATH",
                             help="write-ahead log of every evaluation; enables crash-safe resume")
    tune_parser.add_argument("--resume", action="store_true",
                             help="continue an interrupted run from --journal "
                                  "(replays completed trials, executes only the rest)")
    tune_parser.add_argument("--trial-timeout", type=float, default=None, metavar="SECONDS",
                             help="watchdog deadline per evaluation; a hung trial is killed, "
                                  "retried with backoff and finally degraded (implies the "
                                  "parallel executor)")
    tune_parser.add_argument("--warm-start", action="store_true",
                             help="resume each promoted configuration's training from its "
                                  "lower-rung checkpoint instead of re-initialising "
                                  "(activates the engine)")
    tune_parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                             help="spill directory making warm-start checkpoints durable; "
                                  "required with --journal, implies --warm-start")
    tune_parser.add_argument("--guard", default="off",
                             choices=["strict", "repair", "warn", "off"],
                             help="data-integrity guard policy: strict rejects dirty data, "
                                  "repair fixes it in a copy, warn only records, off (default) "
                                  "skips all checks")
    tune_parser.add_argument("--trace", default=None, metavar="PATH",
                             help="stream a structured span trace of the run as JSONL "
                                  "(convert with tools/trace_view.py)")
    tune_parser.add_argument("--metrics", action="store_true",
                             help="print the merged telemetry metrics after the run")
    tune_parser.add_argument("--profile", action="store_true",
                             help="record @profiled hot-path timings in the metrics "
                                  "(implies --metrics)")

    report_parser = subparsers.add_parser("report", help="regenerate every table & figure")
    report_parser.add_argument("--scale", type=float, default=0.3)
    report_parser.add_argument("--seeds", type=int, default=3)
    report_parser.add_argument("--configs", type=int, default=36)
    report_parser.add_argument("--max-iter", type=int, default=12)
    report_parser.add_argument("--out", default=None)

    serve_parser = subparsers.add_parser(
        "serve", help="run the multi-tenant HPO service daemon"
    )
    serve_parser.add_argument("--root", required=True, metavar="DIR",
                              help="serve root: job records, journals, results and "
                                   "checkpoint spills live here (restart-safe)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="bind port (0 picks an ephemeral port, printed at start)")
    serve_parser.add_argument("--workers", type=_positive_int, default=2,
                              help="job-executor threads")
    serve_parser.add_argument("--queue-limit", type=_positive_int, default=64,
                              help="admission queue bound; submits beyond it get 429")
    serve_parser.add_argument("--default-quota", type=_positive_int, default=2,
                              help="max concurrently running jobs per tenant")
    serve_parser.add_argument("--quota", action="append", default=[], metavar="TENANT=N",
                              help="per-tenant quota override (repeatable)")
    serve_parser.add_argument("--max-connections", type=_positive_int, default=64,
                              help="concurrent keep-alive connection cap; connections "
                                   "beyond it are refused with 503 + Retry-After")
    serve_parser.add_argument("--cache-entries", type=_positive_int, default=None,
                              help="LRU bound per shared evaluation cache (default: unbounded)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="emit per-request access logs to stderr")

    submit_parser = subparsers.add_parser(
        "submit", help="submit one job to a running service daemon"
    )
    submit_parser.add_argument("--url", required=True,
                               help="daemon address, e.g. http://127.0.0.1:8123")
    submit_parser.add_argument("--tenant", required=True)
    submit_parser.add_argument("--dataset", required=True, choices=list_datasets())
    submit_parser.add_argument("--method", default="sha+", choices=sorted(METHODS))
    submit_parser.add_argument("--hps", type=int, default=2)
    submit_parser.add_argument("--scale", type=float, default=0.35)
    submit_parser.add_argument("--seed", type=int, default=0)
    submit_parser.add_argument("--max-iter", type=int, default=12)
    submit_parser.add_argument("--priority", type=_positive_int, default=1,
                               help="fair-share weight: a priority-2 tenant is dispatched "
                                    "twice as often as a priority-1 tenant")
    submit_parser.add_argument("--n-configurations", type=_positive_int, default=None)
    submit_parser.add_argument("--guard", default="off",
                               choices=["strict", "repair", "warn", "off"])
    submit_parser.add_argument("--warm-start", action="store_true",
                               help="share the context's durable checkpoint store")
    submit_parser.add_argument("--refit", action="store_true",
                               help="refit the incumbent on the full training split")
    submit_parser.add_argument("--trace", action="store_true",
                               help="stream a telemetry span trace into the job directory")
    _add_client_transport_flags(submit_parser)
    submit_parser.add_argument("--wait", action="store_true",
                               help="block until the job reaches a terminal state")
    submit_parser.add_argument("--timeout", type=float, default=600.0,
                               help="--wait deadline in seconds")

    jobs_parser = subparsers.add_parser(
        "jobs", help="inspect or cancel jobs on a running service daemon"
    )
    jobs_parser.add_argument("--url", required=True,
                             help="daemon address, e.g. http://127.0.0.1:8123")
    jobs_group = jobs_parser.add_mutually_exclusive_group()
    jobs_group.add_argument("--job", default=None, metavar="ID",
                            help="print one job's full record as JSON")
    jobs_group.add_argument("--cancel", default=None, metavar="ID",
                            help="cooperatively cancel one job")
    jobs_group.add_argument("--stats", action="store_true",
                            help="print daemon stats (queues, tenants, shared cache)")
    _add_client_transport_flags(jobs_parser)

    obs_parser = subparsers.add_parser(
        "obs", help="observability: render metrics snapshots as Prometheus text"
    )
    obs_parser.add_argument("action", choices=["snapshot"],
                            help="snapshot: print a Prometheus-text metrics scrape")
    obs_source = obs_parser.add_mutually_exclusive_group(required=True)
    obs_source.add_argument("--trace", action="append", default=None, metavar="PATH",
                            help="render the final metrics record of a run's trace "
                                 "file (repeatable; multiple files merge)")
    obs_source.add_argument("--url", default=None,
                            help="scrape GET /metrics from a running daemon instead")
    return parser


def _add_client_transport_flags(parser: argparse.ArgumentParser) -> None:
    """Shared ``ServeClient`` transport flags for the submit/jobs verbs."""
    parser.add_argument("--request-timeout", type=float, default=30.0, metavar="SECONDS",
                        help="read timeout per request to the daemon")
    parser.add_argument("--connect-timeout", type=float, default=None, metavar="SECONDS",
                        help="TCP connect timeout (defaults to --request-timeout)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="transport retry budget with seeded jittered backoff "
                             "(0 disables retries)")


def _make_client(args: argparse.Namespace):
    from .serve import ServeClient

    return ServeClient(
        args.url,
        timeout=args.request_timeout,
        connect_timeout=args.connect_timeout,
        retries=args.retries,
    )


def _positive_int(value: str) -> int:
    """Argparse type for flags that must be a strictly positive integer."""
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _command_datasets(args: argparse.Namespace) -> int:
    print(dataset_info_table(scale=args.scale))
    return 0


def _build_engine(args: argparse.Namespace):
    """Engine from the CLI flags, or ``None`` when none were requested.

    The engine only activates when a flag deviates from the no-engine
    default, so a plain ``repro tune`` keeps the historical inline
    (shared-random-stream) execution bit for bit.  ``--trial-timeout``
    needs a preemptable evaluation, so it selects the (watchdog-equipped)
    parallel executor even at one worker.
    """
    warm_start = args.warm_start or args.checkpoint_dir is not None
    elastic = args.min_workers is not None or args.max_workers is not None
    engine_flags = (
        args.n_workers > 1 or args.cache is not None or args.max_retries is not None
        or args.journal is not None or args.trial_timeout is not None or warm_start
        or elastic or args.speculate
    )
    if args.resume and args.journal is None:
        raise SystemExit("--resume requires --journal")
    if warm_start and args.journal is not None and args.checkpoint_dir is None:
        raise SystemExit("--warm-start with --journal requires --checkpoint-dir "
                         "(journal replay can only re-warm from durable checkpoints)")
    if not engine_flags:
        return None
    from pathlib import Path

    from .engine import ParallelExecutor, SerialExecutor, TrialEngine

    if args.journal is not None:
        journal_path = Path(args.journal)
        if journal_path.exists() and journal_path.stat().st_size > 0 and not args.resume:
            raise SystemExit(
                f"journal {journal_path} already exists; pass --resume to continue "
                "that run, or delete the file to start fresh"
            )
        if args.resume and not journal_path.exists():
            raise SystemExit(f"--resume: journal {journal_path} does not exist")
    if (args.min_workers is not None and args.max_workers is not None
            and args.max_workers < args.min_workers):
        raise SystemExit("--max-workers must be >= --min-workers")
    if args.n_workers > 1 or args.trial_timeout is not None or elastic or args.speculate:
        executor = ParallelExecutor(
            n_workers=args.n_workers,
            trial_timeout=args.trial_timeout,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            speculate=args.speculate,
        )
    else:
        executor = SerialExecutor()
    if not warm_start:
        checkpoints = None
    elif args.checkpoint_dir is not None:
        checkpoints = args.checkpoint_dir
    else:
        checkpoints = True
    return TrialEngine(
        executor=executor,
        cache=True if args.cache is None else args.cache,
        max_retries=1 if args.max_retries is None else args.max_retries,
        journal=args.journal,
        checkpoints=checkpoints,
    )


def _progress_line(telemetry, attrs) -> None:
    """Live one-line ticker on stderr (installed only when it is a tty)."""
    score = attrs.get("score")
    shown = f"{score:.4f}" if isinstance(score, float) else "-"
    sys.stderr.write(f"\r  trial {telemetry.trials_seen:>4}  last score {shown}  ")
    sys.stderr.flush()


def _build_telemetry(args: argparse.Namespace):
    """Telemetry from the CLI flags, or ``None`` when none were requested."""
    if args.trace is None and not args.metrics and not args.profile:
        return None
    from .telemetry import Telemetry

    on_trial = _progress_line if sys.stderr.isatty() else None
    return Telemetry(trace=args.trace, profile=args.profile, on_trial=on_trial)


def _command_tune(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, random_state=args.seed)
    task = "regression" if dataset.task == "regression" else "classification"
    space = paper_search_space(args.hps)
    factory = MLPModelFactory(task=task, max_iter=args.max_iter)
    engine = _build_engine(args)
    telemetry = _build_telemetry(args)
    if engine is not None:
        extras = []
        if args.trial_timeout is not None:
            extras.append(f"trial_timeout {args.trial_timeout}s")
        if args.min_workers is not None or args.max_workers is not None:
            extras.append(f"elastic {args.min_workers or 1}-{args.max_workers or 'auto'}")
        if args.speculate:
            extras.append("speculation on")
        if args.journal is not None:
            extras.append(f"journal {args.journal}" + (" (resuming)" if args.resume else ""))
        if engine.checkpoints is not None:
            extras.append(
                "warm-start "
                + (f"spill {args.checkpoint_dir}" if args.checkpoint_dir else "in-memory")
            )
        print(f"engine: {type(engine.executor).__name__} x{args.n_workers} workers, "
              f"cache {'on' if engine.cache is not None else 'off'}, "
              f"max_retries {engine.max_retries}"
              + ("".join(f", {extra}" for extra in extras)))
    print(f"tuning {dataset.name} ({dataset.n_train} rows) with {args.method} "
          f"over {space.n_configurations} configurations ...")
    outcome = optimize(
        dataset.X_train,
        dataset.y_train,
        space,
        method=args.method,
        metric=dataset.metric,
        task=task,
        model_factory=factory,
        random_state=args.seed,
        configurations=space.grid() if space.is_finite and not args.method.startswith(("bohb", "dehb", "tpe", "smac")) else None,
        n_configurations=None,
        engine=engine,
        guard=args.guard,
        telemetry=telemetry,
    )
    if telemetry is not None and telemetry.on_trial is not None:
        sys.stderr.write("\r" + " " * 40 + "\r")  # clear the progress ticker
        sys.stderr.flush()
    test_score = make_scorer(dataset.metric)(outcome.model, dataset.X_test, dataset.y_test)
    print(f"best configuration : {outcome.best_config}")
    print(f"train {dataset.metric}      : {outcome.train_score:.4f}")
    print(f"test {dataset.metric}       : {test_score:.4f}")
    print(f"search wall time   : {outcome.result.wall_time:.1f}s over {outcome.result.n_trials} trials")
    if engine is not None:
        stats = engine.stats
        print(f"cache hit rate     : {format_percent(stats.hit_rate)} "
              f"({stats.cache_hits}/{stats.cache_hits + stats.cache_misses} lookups, "
              f"{stats.executed} evaluations run, {stats.retries} retries, "
              f"{stats.failures} degraded)")
        print(f"robustness         : {stats.resumed} resumed from journal, "
              f"{stats.timeouts} watchdog timeouts, {stats.non_finite} non-finite results, "
              f"{stats.guard_events} guard events")
        if engine.checkpoints is not None:
            total = stats.warm_hits + stats.warm_misses
            print(f"warm start         : {stats.warm_hits}/{total} trials warm-started, "
                  f"{stats.checkpoints_stored} checkpoints stored"
                  + (f", spilled to {args.checkpoint_dir}" if args.checkpoint_dir else ""))
        engine.shutdown()
    if telemetry is not None:
        telemetry.close()
        if args.trace:
            print(f"trace              : {telemetry.sink.spans_written} spans -> {args.trace}")
        if args.metrics or args.profile:
            print("telemetry metrics  :")
            for line in telemetry.registry.render_lines():
                print(f"  {line}")
    if args.guard != "off":
        from collections import Counter

        if outcome.data_report is not None:
            print(f"data report        : {outcome.data_report.summary()}")
        counts = Counter(
            event.get("kind", "unknown")
            for trial in outcome.result.trials
            for event in trial.result.guard_events
        )
        detail = ", ".join(f"{kind} x{n}" for kind, n in sorted(counts.items())) or "none"
        print(f"guard [{args.guard:>6}]    : {sum(counts.values())} trial event(s): {detail}")
    if args.save:
        save_result(outcome.result, args.save)
        print(f"search record saved to {args.save}")
    return 0


def _parse_quotas(pairs: List[str]):
    """Parse repeated ``--quota TENANT=N`` flags into a dict (or ``None``)."""
    if not pairs:
        return None
    quotas = {}
    for pair in pairs:
        tenant, sep, value = pair.partition("=")
        if not sep or not tenant:
            raise SystemExit(f"--quota expects TENANT=N, got {pair!r}")
        try:
            quotas[tenant] = int(value)
        except ValueError:
            raise SystemExit(f"--quota {pair!r}: quota must be an integer")
        if quotas[tenant] < 1:
            raise SystemExit(f"--quota {pair!r}: quota must be >= 1")
    return quotas


def _command_serve(args: argparse.Namespace) -> int:
    """Run the service daemon in the foreground until SIGTERM/SIGINT."""
    from .serve import ServeDaemon

    daemon = ServeDaemon(
        root=args.root,
        host=args.host,
        port=args.port,
        n_workers=args.workers,
        max_queued=args.queue_limit,
        default_quota=args.default_quota,
        quotas=_parse_quotas(args.quota),
        cache_entries=args.cache_entries,
        max_connections=args.max_connections,
        verbose=args.verbose,
    )
    print(f"serving on {daemon.address} (root {args.root}, "
          f"{args.workers} workers, queue limit {args.queue_limit})", flush=True)
    daemon.run_forever()
    print("daemon drained and stopped")
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    """Submit one job; optionally block for its terminal state."""
    import json as _json

    from .serve import ServeError

    spec = {
        "tenant": args.tenant,
        "dataset": args.dataset,
        "method": args.method,
        "hps": args.hps,
        "scale": args.scale,
        "seed": args.seed,
        "max_iter": args.max_iter,
        "priority": args.priority,
        "n_configurations": args.n_configurations,
        "guard": args.guard,
        "warm_start": args.warm_start,
        "refit": args.refit,
        "trace": args.trace,
    }
    with _make_client(args) as client:
        try:
            accepted = client.submit(spec)
        except ServeError as exc:
            hint = " (queue full — retry later)" if exc.status == 429 else ""
            hint = " (daemon draining)" if exc.status == 503 else hint
            print(f"submit rejected: {exc}{hint}", file=sys.stderr)
            return 1
        job_id = accepted["job_id"]
        print(f"job {job_id} {accepted['state']} (tenant {args.tenant})")
        if not args.wait:
            return 0
        record = client.wait(job_id, timeout=args.timeout)
    print(f"job {job_id} {record['state']}" +
          (f": {record['error']}" if record.get("error") else ""))
    if record.get("incumbent"):
        print(_json.dumps(record["incumbent"], indent=2))
    return 0 if record["state"] == "done" else 1


def _command_jobs(args: argparse.Namespace) -> int:
    """List, inspect, cancel jobs or print daemon stats."""
    import json as _json

    from .serve import ServeError

    with _make_client(args) as client:
        try:
            if args.stats:
                print(_json.dumps(client.stats(), indent=2))
            elif args.job:
                print(_json.dumps(client.job(args.job), indent=2))
            elif args.cancel:
                outcome = client.cancel(args.cancel)
                print(f"job {args.cancel}: {outcome.get('detail', outcome.get('state'))}")
            else:
                summaries = client.jobs()
                if not summaries:
                    print("no jobs")
                for summary in summaries:
                    score = summary.get("best_score")
                    shown = f"{score:.4f}" if isinstance(score, float) else "-"
                    print(f"{summary['job_id']}  {summary['state']:<9} "
                          f"{summary['tenant']:<12} {summary['dataset']:<12} "
                          f"{summary['method']:<6} trials {summary['trials_done']:>4}  "
                          f"best {shown}")
        except ServeError as exc:
            print(f"request failed: {exc}", file=sys.stderr)
            return 1
    return 0


def _command_obs(args: argparse.Namespace) -> int:
    """``repro obs snapshot`` — Prometheus text from a daemon or trace files.

    ``--url`` scrapes a live daemon's ``/metrics``; ``--trace`` re-renders
    the final metrics snapshot a finished run left in its trace file(s),
    so non-daemon runs get the same diffable scrape format.
    """
    if args.url:
        import urllib.request

        url = args.url.rstrip("/") + "/metrics"
        with urllib.request.urlopen(url, timeout=30.0) as response:
            sys.stdout.write(response.read().decode("utf-8"))
        return 0

    from .obs.prom import render_registry
    from .telemetry import MetricsRegistry, TraceSink

    merged = MetricsRegistry()
    missing = 0
    for path in args.trace:
        try:
            _, records, _ = TraceSink.read(path)
        except (OSError, ValueError) as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
            missing += 1
            continue
        snapshot = next((r for r in records if r.get("type") == "metrics"), None)
        if snapshot is None:
            print(f"skipping {path}: no metrics record", file=sys.stderr)
            missing += 1
            continue
        merged.merge(MetricsRegistry.from_dict(snapshot))
    sys.stdout.write(render_registry(merged))
    return 0 if missing < len(args.trace) else 1


def _command_report(args: argparse.Namespace) -> int:
    from .experiments.run_all import main as run_all_main

    forwarded = ["--scale", str(args.scale), "--seeds", str(args.seeds),
                 "--configs", str(args.configs), "--max-iter", str(args.max_iter)]
    if args.out:
        forwarded += ["--out", args.out]
    run_all_main(forwarded)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _command_datasets,
        "tune": _command_tune,
        "report": _command_report,
        "serve": _command_serve,
        "submit": _command_submit,
        "jobs": _command_jobs,
        "obs": _command_obs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
