"""Persistence of search results.

A production HPO library must make runs inspectable after the process
exits; this module serialises :class:`~repro.bandit.SearchResult` objects
(with every trial) to plain JSON and back.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .bandit.base import EvaluationResult, SearchResult, Trial

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "config_to_jsonable",
    "config_from_jsonable",
]


def _jsonable(value: Any) -> Any:
    """Coerce config values (tuples, numpy scalars) to JSON-safe types."""
    if isinstance(value, tuple):
        return {"__tuple__": [_jsonable(v) for v in value]}
    if isinstance(value, (list,)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_from_jsonable(v) for v in value["__tuple__"])
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    return value


def config_to_jsonable(config: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe copy of a configuration (tuples and numpy scalars coerced).

    The engine's run journal and the result files share this encoding, so
    a configuration round-trips identically through either.
    """
    return {key: _jsonable(value) for key, value in config.items()}


def config_from_jsonable(data: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`config_to_jsonable`."""
    return {key: _from_jsonable(value) for key, value in data.items()}


# Backwards-compatible private aliases (pre-journal internal names).
_config_to_dict = config_to_jsonable
_config_from_dict = config_from_jsonable


def result_to_dict(result: SearchResult) -> Dict[str, Any]:
    """Serialise a search result (including all trials) to a plain dict."""
    return {
        "method": result.method,
        "best_config": _config_to_dict(result.best_config),
        "best_score": result.best_score,
        "wall_time": result.wall_time,
        "trials": [
            {
                "config": _config_to_dict(trial.config),
                "budget_fraction": trial.budget_fraction,
                "iteration": trial.iteration,
                "bracket": trial.bracket,
                "result": {
                    "mean": trial.result.mean,
                    "std": trial.result.std,
                    "score": trial.result.score,
                    "gamma": trial.result.gamma,
                    "fold_scores": list(trial.result.fold_scores),
                    "n_instances": trial.result.n_instances,
                    "cost": trial.result.cost,
                    "guard_events": list(getattr(trial.result, "guard_events", []) or []),
                },
            }
            for trial in result.trials
        ],
    }


def result_from_dict(data: Dict[str, Any]) -> SearchResult:
    """Inverse of :func:`result_to_dict`."""
    try:
        trials = [
            Trial(
                config=_config_from_dict(raw["config"]),
                budget_fraction=raw["budget_fraction"],
                iteration=raw.get("iteration", 0),
                bracket=raw.get("bracket", 0),
                result=EvaluationResult(**raw["result"]),
            )
            for raw in data.get("trials", [])
        ]
        return SearchResult(
            best_config=_config_from_dict(data["best_config"]),
            best_score=data["best_score"],
            trials=trials,
            wall_time=data.get("wall_time", 0.0),
            method=data.get("method", ""),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"Malformed search-result payload: {exc}") from exc


def save_result(result: SearchResult, path: Union[str, Path]) -> None:
    """Write a search result to ``path`` as JSON."""
    path = Path(path)
    with path.open("w") as handle:
        json.dump(result_to_dict(result), handle, indent=2)


def load_result(path: Union[str, Path]) -> SearchResult:
    """Read a search result previously written by :func:`save_result`."""
    path = Path(path)
    with path.open() as handle:
        return result_from_dict(json.load(handle))
