"""Decision-tree learners (CART).

A second model family for hyperparameter optimization: trees have cheap,
strongly hyperparameter-sensitive fits (``max_depth``,
``min_samples_split``, ``min_samples_leaf``), which makes them good
subjects for HPO examples and fast tests.  Classification uses Gini or
entropy impurity; regression uses variance reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import BaseEstimator, check_X_y
from .preprocessing import LabelEncoder

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]


@dataclass
class _Node:
    """A tree node; leaves carry a prediction, splits carry a test."""

    prediction: np.ndarray  # class distribution or mean target
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return 1.0 - float((proportions**2).sum())


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts[counts > 0] / total
    return float(-(proportions * np.log2(proportions)).sum())


class _BaseTree(BaseEstimator):
    """Shared CART machinery."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # subclass hooks -------------------------------------------------------

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    # construction -----------------------------------------------------------

    def _validate(self) -> None:
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {self.min_samples_split}")
        if self.min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}")

    def _fit_tree(self, X: np.ndarray, y: np.ndarray) -> None:
        self._rng = np.random.default_rng(self.random_state)
        self.n_features_ = X.shape[1]
        self.tree_ = self._grow(X, y, depth=0)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=self._leaf_value(y))
        n_samples = len(y)
        if (
            n_samples < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or self._impurity(y) == 0.0
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None or self.max_features >= self.n_features_:
            return np.arange(self.n_features_)
        return self._rng.choice(self.n_features_, size=self.max_features, replace=False)

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        n_samples = len(y)
        parent_impurity = self._impurity(y)
        # Zero-gain splits are allowed (matching CART): problems like XOR
        # have no positive-gain first split yet need one to proceed.
        best_gain = -1e-12
        best = None
        for feature in self._candidate_features():
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            # Candidate cut positions: between distinct neighbours, honouring
            # the leaf-size floor.
            valid = values[1:] > values[:-1]
            cuts = np.flatnonzero(valid) + 1
            cuts = cuts[(cuts >= self.min_samples_leaf) & (n_samples - cuts >= self.min_samples_leaf)]
            if len(cuts) == 0:
                continue
            left_imp, right_imp = self._cut_impurities(y[order])
            weighted = (cuts * left_imp[cuts - 1] + (n_samples - cuts) * right_imp[cuts - 1]) / n_samples
            gains = parent_impurity - weighted
            local_best = int(gains.argmax())
            if gains[local_best] > best_gain:
                best_gain = float(gains[local_best])
                cut = int(cuts[local_best])
                best = (int(feature), float((values[cut - 1] + values[cut]) / 2.0))
        return best

    def _cut_impurities(self, sorted_targets: np.ndarray):
        """Impurities of every prefix/suffix split, via prefix sums.

        Returns ``(left, right)`` arrays of length ``n - 1`` where entry
        ``k - 1`` holds the impurity of the first ``k`` / last ``n - k``
        targets respectively.
        """
        raise NotImplementedError

    def _predict_row(self, row: np.ndarray) -> np.ndarray:
        node = self.tree_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def _depth(self, node: Optional[_Node] = None) -> int:
        node = node or self.tree_
        if node.is_leaf:
            return 0
        return 1 + max(self._depth(node.left), self._depth(node.right))

    @property
    def depth_(self) -> int:
        """Actual depth of the fitted tree."""
        if not hasattr(self, "tree_"):
            raise RuntimeError("Tree must be fitted first")
        return self._depth()


class DecisionTreeClassifier(_BaseTree):
    """CART classifier with Gini or entropy impurity.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.learners.tree import DecisionTreeClassifier
    >>> X = np.array([[0.0], [1.0], [2.0], [3.0]])
    >>> y = np.array([0, 0, 1, 1])
    >>> DecisionTreeClassifier().fit(X, y).score(X, y)
    1.0
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        super().__init__(
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            random_state=random_state,
        )
        self.criterion = criterion

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree on ``(X, y)``."""
        if self.criterion not in ("gini", "entropy"):
            raise ValueError(f"criterion must be 'gini' or 'entropy', got {self.criterion!r}")
        self._validate()
        X, y = check_X_y(X, y)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        self._codes = self._encoder.transform(y)
        self._fit_tree(X, self._codes)
        return self

    def _impurity(self, y: np.ndarray) -> float:
        counts = np.bincount(y, minlength=len(self.classes_))
        return _gini(counts) if self.criterion == "gini" else _entropy(counts)

    def _cut_impurities(self, sorted_targets: np.ndarray):
        """Vectorised Gini/entropy of every prefix and suffix."""
        n = len(sorted_targets)
        one_hot = np.zeros((n, len(self.classes_)))
        one_hot[np.arange(n), sorted_targets] = 1.0
        prefix = one_hot.cumsum(axis=0)[:-1]  # counts of first k, k=1..n-1
        suffix = prefix[-1] + one_hot[-1] - prefix  # counts of last n-k
        k = np.arange(1, n, dtype=float)
        left_p = prefix / k[:, None]
        right_p = suffix / (n - k)[:, None]
        if self.criterion == "gini":
            left = 1.0 - (left_p**2).sum(axis=1)
            right = 1.0 - (right_p**2).sum(axis=1)
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                left = -np.where(left_p > 0, left_p * np.log2(left_p), 0.0).sum(axis=1)
                right = -np.where(right_p > 0, right_p * np.log2(right_p), 0.0).sum(axis=1)
        return left, right

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=len(self.classes_)).astype(float)
        return counts / max(counts.sum(), 1.0)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Leaf class distributions per row."""
        if not hasattr(self, "tree_"):
            raise RuntimeError("DecisionTreeClassifier must be fitted before prediction")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return np.vstack([self._predict_row(row) for row in X])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        if not hasattr(self, "tree_"):
            raise RuntimeError("DecisionTreeClassifier must be fitted before prediction")
        return self._encoder.inverse_transform(self.predict_proba(X).argmax(axis=1))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(X) == np.asarray(y).ravel()).mean())


class DecisionTreeRegressor(_BaseTree):
    """CART regressor with variance-reduction splits."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on ``(X, y)``."""
        self._validate()
        X, y = check_X_y(X, y)
        self._fit_tree(X, y.astype(float))
        return self

    def _impurity(self, y: np.ndarray) -> float:
        return float(y.var()) if len(y) else 0.0

    def _cut_impurities(self, sorted_targets: np.ndarray):
        """Vectorised variance of every prefix and suffix."""
        n = len(sorted_targets)
        totals = sorted_targets.cumsum()[:-1]
        squares = (sorted_targets**2).cumsum()[:-1]
        grand_total = sorted_targets.sum()
        grand_square = float((sorted_targets**2).sum())
        k = np.arange(1, n, dtype=float)
        left = squares / k - (totals / k) ** 2
        right = (grand_square - squares) / (n - k) - ((grand_total - totals) / (n - k)) ** 2
        return np.maximum(left, 0.0), np.maximum(right, 0.0)

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([float(y.mean()) if len(y) else 0.0])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf means per row."""
        if not hasattr(self, "tree_"):
            raise RuntimeError("DecisionTreeRegressor must be fitted before prediction")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return np.array([self._predict_row(row)[0] for row in X])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R² of the prediction."""
        y = np.asarray(y, dtype=float).ravel()
        prediction = self.predict(X)
        ss_res = float(((y - prediction) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot
