"""Multi-layer perceptron classifier and regressor.

A from-scratch numpy reimplementation of the scikit-learn
``MLPClassifier`` / ``MLPRegressor`` pair, covering exactly the
hyperparameter surface of the paper's Table III search space:

- ``hidden_layer_sizes`` — any tuple of layer widths;
- ``activation`` — ``logistic`` / ``tanh`` / ``relu`` (plus ``identity``);
- ``solver`` — ``lbfgs`` (full batch, via scipy), ``sgd`` (with momentum
  and the three learning-rate schedules) and ``adam``;
- ``learning_rate_init``, ``batch_size``, ``learning_rate`` schedule,
  ``momentum`` and ``early_stopping``.

The implementation purposely follows scikit-learn's structure (coefficient
lists per layer, loss curves, early stopping on a held-out fraction) so that
behaviours the paper's experiments depend on — e.g. large slow
configurations versus small fast ones — carry over.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.optimize

from ..telemetry.profiling import profiled
from .activations import get_activation, softmax
from .base import BaseEstimator, check_X_y
from .losses import binary_log_loss, log_loss, squared_loss
from .preprocessing import LabelEncoder, one_hot
from .solvers import make_optimizer

__all__ = [
    "DIVERGENCE_LOSS_CAP",
    "MLPClassifier",
    "MLPRegressor",
    "resolve_initial_parameters",
    "warm_start_matches",
]

#: Epoch losses beyond this (or non-finite ones) mark the fit as diverged:
#: training aborts, parameters roll back to the last finite state and
#: ``diverged_`` is set so guarded evaluators can record the event.
DIVERGENCE_LOSS_CAP = 1e12

#: Pre-activation clamp in :meth:`_BaseMLP._forward`; keeps exploded
#: weights from pushing ``inf`` through identity/relu heads while being
#: far beyond any numerically healthy pre-activation.  Chosen so a clamped
#: identity output still overshoots :data:`DIVERGENCE_LOSS_CAP` when
#: squared (``(1e8)^2 / 2 >> 1e12``), keeping regressor divergence
#: detectable.
_Z_CLIP = 1e8


def _init_coefficients(
    layer_units: Sequence[int], activation: str, rng: np.random.Generator
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Glorot-style initialisation matching scikit-learn's bounds."""
    coefs, intercepts = [], []
    for fan_in, fan_out in zip(layer_units[:-1], layer_units[1:]):
        # scikit-learn uses a larger gain for sigmoid-shaped activations.
        factor = 2.0 if activation == "logistic" else 6.0
        bound = np.sqrt(factor / (fan_in + fan_out))
        coefs.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
        intercepts.append(rng.uniform(-bound, bound, size=fan_out))
    return coefs, intercepts


def warm_start_matches(
    layer_units: Sequence[int],
    coefs_init: Optional[Sequence[np.ndarray]],
    intercepts_init: Optional[Sequence[np.ndarray]],
) -> bool:
    """Whether a donated parameter set fits this network's architecture.

    Warm starts are only usable when every layer's shape agrees; a
    mismatch (e.g. a fold with a different class count) silently falls
    back to cold Glorot initialisation rather than erroring, because the
    donor was trained on *different data* and shape is the only contract.
    """
    if coefs_init is None or intercepts_init is None:
        return False
    expected = list(zip(layer_units[:-1], layer_units[1:]))
    if len(coefs_init) != len(expected) or len(intercepts_init) != len(expected):
        return False
    for (fan_in, fan_out), coef, intercept in zip(expected, coefs_init, intercepts_init):
        if tuple(np.shape(coef)) != (fan_in, fan_out):
            return False
        if tuple(np.shape(intercept)) != (fan_out,):
            return False
    return True


def resolve_initial_parameters(
    layer_units: Sequence[int],
    activation: str,
    rng: np.random.Generator,
    coefs_init: Optional[Sequence[np.ndarray]] = None,
    intercepts_init: Optional[Sequence[np.ndarray]] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Warm parameters (copied) when shapes match, else fresh Glorot draws.

    A matching warm start consumes **no** random draws — the training
    trajectory then depends only on the donated weights and the
    post-initialisation stream (validation split, shuffles), which is
    what makes warm-started runs reproducible in their own right.
    """
    if warm_start_matches(layer_units, coefs_init, intercepts_init):
        coefs = [np.array(c, dtype=float) for c in coefs_init]
        intercepts = [np.array(b, dtype=float).ravel() for b in intercepts_init]
        return coefs, intercepts
    return _init_coefficients(layer_units, activation, rng)


class _BaseMLP(BaseEstimator):
    """Shared training machinery for the classifier and regressor."""

    def __init__(
        self,
        hidden_layer_sizes: Union[int, Sequence[int]] = (100,),
        activation: str = "relu",
        solver: str = "adam",
        alpha: float = 1e-4,
        batch_size: Union[int, str] = "auto",
        learning_rate: str = "constant",
        learning_rate_init: float = 0.001,
        power_t: float = 0.5,
        max_iter: int = 200,
        shuffle: bool = True,
        random_state: Optional[int] = None,
        tol: float = 1e-4,
        momentum: float = 0.9,
        nesterovs_momentum: bool = True,
        early_stopping: bool = False,
        validation_fraction: float = 0.1,
        n_iter_no_change: int = 10,
        max_fun: int = 15000,
    ) -> None:
        self.hidden_layer_sizes = hidden_layer_sizes
        self.activation = activation
        self.solver = solver
        self.alpha = alpha
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.learning_rate_init = learning_rate_init
        self.power_t = power_t
        self.max_iter = max_iter
        self.shuffle = shuffle
        self.random_state = random_state
        self.tol = tol
        self.momentum = momentum
        self.nesterovs_momentum = nesterovs_momentum
        self.early_stopping = early_stopping
        self.validation_fraction = validation_fraction
        self.n_iter_no_change = n_iter_no_change
        self.max_fun = max_fun

    # -- subclass hooks ---------------------------------------------------

    def _output_activation(self) -> str:
        raise NotImplementedError

    def _loss(self, y_true: np.ndarray, y_out: np.ndarray) -> float:
        raise NotImplementedError

    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _n_outputs(self, y_encoded: np.ndarray) -> int:
        return y_encoded.shape[1]

    # -- validation -------------------------------------------------------

    def _validate_hyperparameters(self) -> None:
        if self.solver not in ("lbfgs", "sgd", "adam"):
            raise ValueError(f"solver must be 'lbfgs', 'sgd' or 'adam', got {self.solver!r}")
        if self.activation not in ("identity", "logistic", "tanh", "relu"):
            raise ValueError(f"Unknown activation {self.activation!r}")
        if self.max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {self.max_iter}")
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if not 0.0 < self.validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in (0, 1), got {self.validation_fraction}"
            )

    def _hidden_layers(self) -> Tuple[int, ...]:
        sizes = self.hidden_layer_sizes
        if np.isscalar(sizes):
            sizes = (int(sizes),)
        sizes = tuple(int(s) for s in sizes)
        if any(s <= 0 for s in sizes):
            raise ValueError(f"hidden_layer_sizes must be positive, got {sizes}")
        return sizes

    def _resolve_batch_size(self, n_samples: int) -> int:
        if self.batch_size == "auto":
            return min(200, n_samples)
        batch_size = int(self.batch_size)
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return min(batch_size, n_samples)

    # -- forward / backward -----------------------------------------------

    def _forward(self, X: np.ndarray) -> List[np.ndarray]:
        """Return the list of layer activations, input included."""
        hidden_fn, _ = get_activation(self.activation)
        activations = [X]
        n_layers = len(self.coefs_)
        for i, (coef, intercept) in enumerate(zip(self.coefs_, self.intercepts_)):
            z = activations[-1] @ coef + intercept
            # Exploded weights push inf through identity/relu heads; the
            # clamp keeps the forward pass bounded without affecting healthy
            # magnitudes.  NaN deliberately passes through: it reaches the
            # loss, where divergence detection rolls the fit back.
            z = np.clip(z, -_Z_CLIP, _Z_CLIP)
            if i < n_layers - 1:
                activations.append(hidden_fn(z))
            elif self._output_activation() == "softmax":
                activations.append(softmax(z))
            else:
                out_fn, _ = get_activation(self._output_activation())
                activations.append(out_fn(z))
        return activations

    def _backprop(
        self, X: np.ndarray, y: np.ndarray
    ) -> Tuple[float, List[np.ndarray], List[np.ndarray]]:
        """Loss plus gradients w.r.t. every coefficient and intercept.

        For all three output heads (softmax + CE, logistic + BCE, identity +
        half-MSE) the output delta collapses to ``(prediction - target) / n``.
        """
        n_samples = X.shape[0]
        activations = self._forward(X)
        _, hidden_derivative = get_activation(self.activation)

        loss = self._loss(y, activations[-1])
        # L2 penalty on weights only (biases excluded), as in scikit-learn.
        loss += (self.alpha / (2.0 * n_samples)) * sum(
            float((coef**2).sum()) for coef in self.coefs_
        )

        coef_grads = [np.empty_like(coef) for coef in self.coefs_]
        intercept_grads = [np.empty_like(b) for b in self.intercepts_]

        delta = (activations[-1] - y) / n_samples
        for layer in range(len(self.coefs_) - 1, -1, -1):
            coef_grads[layer] = activations[layer].T @ delta
            coef_grads[layer] += (self.alpha / n_samples) * self.coefs_[layer]
            intercept_grads[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.coefs_[layer].T) * hidden_derivative(activations[layer])
        return loss, coef_grads, intercept_grads

    # -- fitting ----------------------------------------------------------

    @profiled("mlp.fit")
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        coefs_init: Optional[Sequence[np.ndarray]] = None,
        intercepts_init: Optional[Sequence[np.ndarray]] = None,
    ) -> "_BaseMLP":
        """Train the network on ``(X, y)``.

        ``coefs_init`` / ``intercepts_init`` optionally warm-start the
        network from previously trained parameters (e.g. a lower-budget
        checkpoint): when their shapes match the architecture implied by
        the data they replace the Glorot initialisation and training
        continues from them; otherwise they are ignored and the fit is
        cold.  Optimizer state (momentum/Adam moments) always starts
        fresh.
        """
        self._validate_hyperparameters()
        X, y = check_X_y(X, y)
        y_encoded = self._encode_targets(y)

        layer_units = [X.shape[1], *self._hidden_layers(), self._n_outputs(y_encoded)]
        rng = np.random.default_rng(self.random_state)
        self.coefs_, self.intercepts_ = resolve_initial_parameters(
            layer_units, self.activation, rng, coefs_init, intercepts_init
        )
        self.n_layers_ = len(layer_units)
        self.loss_curve_: List[float] = []
        self.validation_scores_: List[float] = []
        self.diverged_ = False

        if self.solver == "lbfgs":
            self._fit_lbfgs(X, y_encoded)
        else:
            self._fit_stochastic(X, y_encoded, rng)
        return self

    def _fit_lbfgs(self, X: np.ndarray, y: np.ndarray) -> None:
        shapes = [coef.shape for coef in self.coefs_] + [b.shape for b in self.intercepts_]
        sizes = [int(np.prod(shape)) for shape in shapes]
        offsets = np.cumsum([0, *sizes])
        n_coefs = len(self.coefs_)

        def unpack(flat: np.ndarray) -> None:
            for i in range(n_coefs):
                self.coefs_[i] = flat[offsets[i] : offsets[i + 1]].reshape(shapes[i])
            for i in range(n_coefs):
                j = n_coefs + i
                self.intercepts_[i] = flat[offsets[j] : offsets[j + 1]].reshape(shapes[j])

        def objective(flat: np.ndarray) -> Tuple[float, np.ndarray]:
            unpack(flat)
            loss, coef_grads, intercept_grads = self._backprop(X, y)
            grad = np.concatenate([g.ravel() for g in (*coef_grads, *intercept_grads)])
            self.loss_curve_.append(loss)
            return loss, grad

        x0 = np.concatenate([a.ravel() for a in (*self.coefs_, *self.intercepts_)])
        result = scipy.optimize.minimize(
            objective,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "maxfun": self.max_fun, "gtol": self.tol},
        )
        final = np.asarray(result.x, dtype=float)
        loss = float(result.fun)
        if not np.isfinite(final).all() or not np.isfinite(loss) or loss > DIVERGENCE_LOSS_CAP:
            # Roll back to the (finite) initial parameters rather than keep
            # a non-finite optimum; the caller can see it via ``diverged_``.
            self.diverged_ = True
            final, loss = x0, np.inf
        unpack(final)
        self.loss_ = loss
        self.n_iter_ = int(result.nit)

    def _validation_split(
        self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n_samples = X.shape[0]
        n_val = max(1, int(np.floor(self.validation_fraction * n_samples)))
        if n_val >= n_samples:
            n_val = n_samples - 1
        order = rng.permutation(n_samples)
        val_idx, train_idx = order[:n_val], order[n_val:]
        return X[train_idx], y[train_idx], X[val_idx], y[val_idx]

    def _fit_stochastic(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> None:
        if self.early_stopping and X.shape[0] > 1:
            X_train, y_train, X_val, y_val = self._validation_split(X, y, rng)
        else:
            X_train, y_train, X_val, y_val = X, y, None, None

        params = [*self.coefs_, *self.intercepts_]
        optimizer = make_optimizer(
            self.solver,
            params,
            learning_rate_init=self.learning_rate_init,
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            nesterov=self.nesterovs_momentum,
            power_t=self.power_t,
        )

        n_samples = X_train.shape[0]
        batch_size = self._resolve_batch_size(n_samples)
        n_coefs = len(self.coefs_)

        best_loss = np.inf
        best_val_score = -np.inf
        best_params: Optional[List[np.ndarray]] = None
        no_improvement_count = 0
        self.n_iter_ = 0

        for _ in range(self.max_iter):
            # Snapshot the epoch's entry state: it produced a finite loss
            # (previous epoch passed the divergence check, and the Glorot
            # initialisation is finite), so it is the rollback target.
            epoch_start_params = [p.copy() for p in optimizer.params]
            order = rng.permutation(n_samples) if self.shuffle else np.arange(n_samples)
            accumulated_loss = 0.0
            for start in range(0, n_samples, batch_size):
                batch = order[start : start + batch_size]
                loss, coef_grads, intercept_grads = self._backprop(X_train[batch], y_train[batch])
                accumulated_loss += loss * len(batch)
                grads = [*coef_grads, *intercept_grads]
                optimizer.update(grads)
                # The optimizer may have rebound arrays; re-sync references.
                self.coefs_ = optimizer.params[:n_coefs]
                self.intercepts_ = optimizer.params[n_coefs:]
            epoch_loss = accumulated_loss / n_samples
            self.loss_curve_.append(epoch_loss)
            self.n_iter_ += 1

            if not np.isfinite(epoch_loss) or epoch_loss > DIVERGENCE_LOSS_CAP:
                # The learning rate (or data) blew the optimisation up.
                # Abort instead of burning the remaining epochs on garbage,
                # and restore the last parameters known to behave.
                self.diverged_ = True
                self.coefs_ = epoch_start_params[:n_coefs]
                self.intercepts_ = epoch_start_params[n_coefs:]
                self.loss_ = float("inf")
                return

            if self.early_stopping and X_val is not None:
                val_score = self._validation_score(X_val, y_val)
                self.validation_scores_.append(val_score)
                if val_score > best_val_score + self.tol:
                    best_val_score = val_score
                    best_params = [p.copy() for p in optimizer.params]
                    no_improvement_count = 0
                else:
                    no_improvement_count += 1
            else:
                if epoch_loss < best_loss - self.tol:
                    best_loss = epoch_loss
                    no_improvement_count = 0
                else:
                    no_improvement_count += 1

            if no_improvement_count >= self.n_iter_no_change:
                optimizer.notify_no_improvement()
                no_improvement_count = 0
                if optimizer.should_stop() or self.early_stopping or self.learning_rate != "adaptive":
                    break

        if best_params is not None:
            self.coefs_ = best_params[:n_coefs]
            self.intercepts_ = best_params[n_coefs:]
        self.loss_ = self.loss_curve_[-1] if self.loss_curve_ else np.inf

    def _validation_score(self, X_val: np.ndarray, y_val: np.ndarray) -> float:
        raise NotImplementedError

    def _check_fitted(self) -> None:
        if not hasattr(self, "coefs_"):
            raise RuntimeError(f"{type(self).__name__} must be fitted before prediction")


class MLPClassifier(_BaseMLP):
    """Feed-forward neural-network classifier.

    Binary problems use a single logistic output unit; multi-class problems
    use a softmax output layer, both trained with cross-entropy.

    Examples
    --------
    >>> from repro.learners import MLPClassifier
    >>> import numpy as np
    >>> X = np.vstack([np.zeros((20, 2)), np.ones((20, 2))])
    >>> y = np.array([0] * 20 + [1] * 20)
    >>> clf = MLPClassifier(hidden_layer_sizes=(8,), max_iter=50, random_state=0)
    >>> float(clf.fit(X, y).score(X, y)) >= 0.9
    True
    """

    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        self._label_encoder = LabelEncoder().fit(y)
        self.classes_ = self._label_encoder.classes_
        codes = self._label_encoder.transform(y)
        if len(self.classes_) < 2:
            raise ValueError("MLPClassifier requires at least 2 classes in y")
        if len(self.classes_) == 2:
            return codes.reshape(-1, 1).astype(float)
        return one_hot(codes, n_classes=len(self.classes_))

    def _n_outputs(self, y_encoded: np.ndarray) -> int:
        return y_encoded.shape[1]

    def _output_activation(self) -> str:
        return "logistic" if len(self.classes_) == 2 else "softmax"

    def _loss(self, y_true: np.ndarray, y_out: np.ndarray) -> float:
        if len(self.classes_) == 2:
            return binary_log_loss(y_true, y_out)
        return log_loss(y_true, y_out)

    def _validation_score(self, X_val: np.ndarray, y_val: np.ndarray) -> float:
        proba = self._forward(X_val)[-1]
        if len(self.classes_) == 2:
            predicted = (proba[:, 0] >= 0.5).astype(float)
            return float((predicted == y_val[:, 0]).mean())
        return float((proba.argmax(axis=1) == y_val.argmax(axis=1)).mean())

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class membership probabilities, shape ``(n_samples, n_classes)``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        out = self._forward(X)[-1]
        if len(self.classes_) == 2:
            return np.column_stack([1.0 - out[:, 0], out[:, 0]])
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        proba = self.predict_proba(X)
        return self._label_encoder.inverse_transform(proba.argmax(axis=1))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy of ``predict(X)`` against ``y``."""
        y = np.asarray(y).ravel()
        return float((self.predict(X) == y).mean())


class MLPRegressor(_BaseMLP):
    """Feed-forward neural-network regressor with identity output.

    Trained on half mean-squared-error; :meth:`score` reports R².
    """

    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(y, dtype=float).reshape(-1, 1)

    def _output_activation(self) -> str:
        return "identity"

    def _loss(self, y_true: np.ndarray, y_out: np.ndarray) -> float:
        return squared_loss(y_true, y_out)

    def _validation_score(self, X_val: np.ndarray, y_val: np.ndarray) -> float:
        prediction = self._forward(X_val)[-1]
        return -squared_loss(y_val, prediction)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted target values, shape ``(n_samples,)``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return self._forward(X)[-1].ravel()

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R² of the prediction."""
        y = np.asarray(y, dtype=float).ravel()
        prediction = self.predict(X)
        ss_res = float(((y - prediction) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot == 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot
