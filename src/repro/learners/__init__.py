"""From-scratch learner substrate (scikit-learn equivalents).

Provides the estimators the paper's experiments train: a numpy MLP
classifier / regressor covering the full Table III hyperparameter space,
plus the preprocessing helpers they depend on.
"""

from .activations import ACTIVATIONS, get_activation, logistic, relu, softmax, tanh
from .base import BaseEstimator, check_array, check_X_y, clone
from .batched import (
    BatchedFitStats,
    MegaBatchStats,
    batchable_model,
    fit_mlp_folds,
    fit_mlp_trials,
)
from .boosting import GradientBoostingClassifier, GradientBoostingRegressor
from .forest import RandomForestClassifier, RandomForestRegressor
from .linear import LogisticRegression, Ridge
from .losses import binary_log_loss, log_loss, squared_loss
from .mlp import MLPClassifier, MLPRegressor, resolve_initial_parameters, warm_start_matches
from .naive_bayes import GaussianNB
from .preprocessing import LabelEncoder, StandardScaler, one_hot
from .solvers import AdamOptimizer, SGDOptimizer, make_optimizer
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "ACTIVATIONS",
    "AdamOptimizer",
    "BaseEstimator",
    "BatchedFitStats",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GaussianNB",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "LabelEncoder",
    "LogisticRegression",
    "MLPClassifier",
    "MLPRegressor",
    "MegaBatchStats",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "Ridge",
    "SGDOptimizer",
    "StandardScaler",
    "batchable_model",
    "binary_log_loss",
    "check_X_y",
    "check_array",
    "clone",
    "fit_mlp_folds",
    "fit_mlp_trials",
    "get_activation",
    "log_loss",
    "logistic",
    "make_optimizer",
    "one_hot",
    "relu",
    "resolve_initial_parameters",
    "softmax",
    "squared_loss",
    "tanh",
    "warm_start_matches",
]
