"""Activation functions for the neural-network learners.

Each activation is exposed as a pair of functions: the forward transform and
the derivative *expressed in terms of the activated output*.  Working from the
output (rather than the pre-activation) lets the backward pass avoid storing
pre-activation values, matching the classic MLP implementation trick.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "ACTIVATIONS",
    "identity",
    "logistic",
    "relu",
    "softmax",
    "tanh",
    "get_activation",
]


def identity(z: np.ndarray) -> np.ndarray:
    """Return the input unchanged (used for regression output layers)."""
    return z


def _identity_derivative(activated: np.ndarray) -> np.ndarray:
    return np.ones_like(activated)


def logistic(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid ``1 / (1 + exp(-z))``."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def _logistic_derivative(activated: np.ndarray) -> np.ndarray:
    return activated * (1.0 - activated)


def tanh(z: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent activation."""
    return np.tanh(z)


def _tanh_derivative(activated: np.ndarray) -> np.ndarray:
    return 1.0 - activated**2


def relu(z: np.ndarray) -> np.ndarray:
    """Rectified linear unit ``max(0, z)``."""
    return np.maximum(z, 0.0)


def _relu_derivative(activated: np.ndarray) -> np.ndarray:
    return (activated > 0).astype(float)


def softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for numerical stability."""
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


#: name -> (forward, derivative-from-output)
ACTIVATIONS: Dict[str, Tuple[Callable[[np.ndarray], np.ndarray], Callable[[np.ndarray], np.ndarray]]] = {
    "identity": (identity, _identity_derivative),
    "logistic": (logistic, _logistic_derivative),
    "tanh": (tanh, _tanh_derivative),
    "relu": (relu, _relu_derivative),
}


def get_activation(name: str) -> Tuple[Callable[[np.ndarray], np.ndarray], Callable[[np.ndarray], np.ndarray]]:
    """Look up an activation pair by name.

    Parameters
    ----------
    name:
        One of ``"identity"``, ``"logistic"``, ``"tanh"`` or ``"relu"``.

    Returns
    -------
    tuple
        ``(forward, derivative)`` where ``derivative`` takes the *activated*
        output.

    Raises
    ------
    ValueError
        If ``name`` is not a known activation.
    """
    try:
        return ACTIVATIONS[name]
    except KeyError:
        known = ", ".join(sorted(ACTIVATIONS))
        raise ValueError(f"Unknown activation {name!r}; expected one of: {known}") from None
