"""Gradient boosting over CART trees.

A third tunable model family: stage-wise additive trees fit to gradients —
squared error for regression, binomial deviance (log-odds) for binary
classification.  Boosting's strong sensitivity to ``learning_rate`` /
``n_estimators`` / ``max_depth`` makes it a natural HPO subject.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .activations import logistic
from .base import BaseEstimator, check_X_y
from .preprocessing import LabelEncoder
from .tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor", "GradientBoostingClassifier"]


class _BaseBoosting(BaseEstimator):
    """Shared stage-wise fitting loop."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: Optional[int] = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state

    def _validate(self) -> None:
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {self.subsample}")

    def _negative_gradient(self, y: np.ndarray, raw: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _initial_raw(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _fit_stages(self, X: np.ndarray, y: np.ndarray) -> None:
        self._validate()
        rng = np.random.default_rng(self.random_state)
        self.init_raw_ = self._initial_raw(y)
        raw = np.full(len(y), self.init_raw_)
        self.estimators_: List[DecisionTreeRegressor] = []
        self.train_losses_: List[float] = []
        n_samples = len(y)
        for _ in range(self.n_estimators):
            residual = self._negative_gradient(y, raw)
            if self.subsample < 1.0:
                pick = rng.choice(n_samples, size=max(2, int(self.subsample * n_samples)), replace=False)
            else:
                pick = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(2**31)),
            )
            tree.fit(X[pick], residual[pick])
            raw = raw + self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)
            self.train_losses_.append(self._loss(y, raw))

    def _loss(self, y: np.ndarray, raw: np.ndarray) -> float:
        raise NotImplementedError

    def _raw_predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "estimators_"):
            raise RuntimeError(f"{type(self).__name__} must be fitted before prediction")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        raw = np.full(X.shape[0], self.init_raw_)
        for tree in self.estimators_:
            raw = raw + self.learning_rate * tree.predict(X)
        return raw


class GradientBoostingRegressor(_BaseBoosting):
    """Least-squares gradient boosting."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        """Fit the additive model on ``(X, y)``."""
        X, y = check_X_y(X, y)
        self._fit_stages(X, y.astype(float))
        return self

    def _initial_raw(self, y: np.ndarray) -> float:
        return float(y.mean())

    def _negative_gradient(self, y: np.ndarray, raw: np.ndarray) -> np.ndarray:
        return y - raw

    def _loss(self, y: np.ndarray, raw: np.ndarray) -> float:
        return float(((y - raw) ** 2).mean())

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted targets."""
        return self._raw_predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R² of the prediction."""
        y = np.asarray(y, dtype=float).ravel()
        prediction = self.predict(X)
        ss_res = float(((y - prediction) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot


class GradientBoostingClassifier(_BaseBoosting):
    """Binary classification with binomial deviance (log-odds boosting)."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        """Fit the additive log-odds model on binary ``(X, y)``."""
        X, y = check_X_y(X, y)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        if len(self.classes_) != 2:
            raise ValueError(
                f"GradientBoostingClassifier supports binary problems; got {len(self.classes_)} classes"
            )
        codes = self._encoder.transform(y).astype(float)
        self._fit_stages(X, codes)
        return self

    def _initial_raw(self, y: np.ndarray) -> float:
        positive = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        return float(np.log(positive / (1.0 - positive)))

    def _negative_gradient(self, y: np.ndarray, raw: np.ndarray) -> np.ndarray:
        return y - logistic(raw)

    def _loss(self, y: np.ndarray, raw: np.ndarray) -> float:
        probability = np.clip(logistic(raw), 1e-12, 1 - 1e-12)
        return float(-(y * np.log(probability) + (1 - y) * np.log(1 - probability)).mean())

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities ``(n_samples, 2)``."""
        positive = logistic(self._raw_predict(X))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class labels."""
        positive = self.predict_proba(X)[:, 1]
        return self._encoder.inverse_transform((positive >= 0.5).astype(int))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(X) == np.asarray(y).ravel()).mean())
