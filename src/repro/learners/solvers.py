"""First-order parameter optimizers for the MLP learners.

Implements the two stochastic solvers from the paper's search space
(Table III): plain/momentum SGD with the three scikit-learn learning-rate
schedules (``constant``, ``invscaling``, ``adaptive``) and Adam.  The L-BFGS
solver is a full-batch method and is handled directly inside
:mod:`repro.learners.mlp` via :func:`scipy.optimize.minimize`.

The optimizers operate on flat lists of numpy arrays (the layer weight and
bias matrices) and update them in place.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["SGDOptimizer", "AdamOptimizer", "make_optimizer"]


class SGDOptimizer:
    """Stochastic gradient descent with momentum and learning-rate schedules.

    Parameters
    ----------
    params:
        Parameter arrays that will be updated in place.
    learning_rate_init:
        Initial step size.
    schedule:
        ``"constant"`` keeps the step fixed; ``"invscaling"`` decays it as
        ``eta0 / t**power_t``; ``"adaptive"`` divides it by 5 whenever the
        caller reports two consecutive epochs without loss improvement
        (mirroring scikit-learn's heuristic).
    momentum:
        Classical momentum coefficient in ``[0, 1)``.
    nesterov:
        Use Nesterov lookahead momentum.
    power_t:
        Exponent of the inverse-scaling schedule.
    """

    def __init__(
        self,
        params: Sequence[np.ndarray],
        learning_rate_init: float = 0.1,
        schedule: str = "constant",
        momentum: float = 0.9,
        nesterov: bool = True,
        power_t: float = 0.5,
    ) -> None:
        if schedule not in ("constant", "invscaling", "adaptive"):
            raise ValueError(f"Unknown learning-rate schedule {schedule!r}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if learning_rate_init <= 0.0:
            raise ValueError(f"learning_rate_init must be positive, got {learning_rate_init}")
        self.params = list(params)
        self.learning_rate_init = learning_rate_init
        self.learning_rate = learning_rate_init
        self.schedule = schedule
        self.momentum = momentum
        self.nesterov = nesterov
        self.power_t = power_t
        self._velocities: List[np.ndarray] = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def update(self, grads: Sequence[np.ndarray]) -> None:
        """Apply one gradient step (in place) to every parameter array."""
        self._t += 1
        if self.schedule == "invscaling":
            self.learning_rate = self.learning_rate_init / (self._t**self.power_t)
        for param, grad, velocity in zip(self.params, grads, self._velocities):
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            if self.nesterov:
                param += self.momentum * velocity - self.learning_rate * grad
            else:
                param += velocity

    def notify_no_improvement(self) -> None:
        """React to a stall signal: the adaptive schedule shrinks the step."""
        if self.schedule == "adaptive":
            self.learning_rate = max(self.learning_rate / 5.0, 1e-6)

    def should_stop(self, tol: float = 1e-6) -> bool:
        """Whether the step size has collapsed below a useful magnitude."""
        return self.schedule == "adaptive" and self.learning_rate <= tol


class AdamOptimizer:
    """Adam optimizer (Kingma & Ba, 2015) with bias correction.

    Parameters
    ----------
    params:
        Parameter arrays updated in place.
    learning_rate_init:
        Base step size.
    beta_1, beta_2:
        Exponential decay rates for the first and second moment estimates.
    epsilon:
        Denominator fuzz factor preventing division by zero.
    """

    def __init__(
        self,
        params: Sequence[np.ndarray],
        learning_rate_init: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate_init <= 0.0:
            raise ValueError(f"learning_rate_init must be positive, got {learning_rate_init}")
        if not 0.0 <= beta_1 < 1.0 or not 0.0 <= beta_2 < 1.0:
            raise ValueError("beta_1 and beta_2 must be in [0, 1)")
        self.params = list(params)
        self.learning_rate_init = learning_rate_init
        self.learning_rate = learning_rate_init
        self.beta_1 = beta_1
        self.beta_2 = beta_2
        self.epsilon = epsilon
        self._t = 0
        self._ms: List[np.ndarray] = [np.zeros_like(p) for p in self.params]
        self._vs: List[np.ndarray] = [np.zeros_like(p) for p in self.params]

    def update(self, grads: Sequence[np.ndarray]) -> None:
        """Apply one Adam step (in place) to every parameter array."""
        self._t += 1
        # Fold both bias corrections into a single effective step size.
        step = (
            self.learning_rate_init
            * np.sqrt(1.0 - self.beta_2**self._t)
            / (1.0 - self.beta_1**self._t)
        )
        self.learning_rate = step
        for param, grad, m, v in zip(self.params, grads, self._ms, self._vs):
            m *= self.beta_1
            m += (1.0 - self.beta_1) * grad
            v *= self.beta_2
            v += (1.0 - self.beta_2) * grad**2
            param -= step * m / (np.sqrt(v) + self.epsilon)

    def notify_no_improvement(self) -> None:
        """Adam has no schedule reaction; kept for interface symmetry."""

    def should_stop(self, tol: float = 1e-6) -> bool:
        """Adam never requests an early schedule-based stop."""
        return False


def make_optimizer(
    solver: str,
    params: Sequence[np.ndarray],
    learning_rate_init: float,
    learning_rate: str = "constant",
    momentum: float = 0.9,
    nesterov: bool = True,
    power_t: float = 0.5,
):
    """Construct the optimizer matching a Table III ``solver`` value.

    ``solver`` must be ``"sgd"`` or ``"adam"``; ``"lbfgs"`` is full-batch and
    handled by the estimator itself.
    """
    if solver == "sgd":
        return SGDOptimizer(
            params,
            learning_rate_init=learning_rate_init,
            schedule=learning_rate,
            momentum=momentum,
            nesterov=nesterov,
            power_t=power_t,
        )
    if solver == "adam":
        return AdamOptimizer(params, learning_rate_init=learning_rate_init)
    raise ValueError(f"Unknown first-order solver {solver!r}; expected 'sgd' or 'adam'")
