"""Gaussian naive Bayes.

The fastest classifier in the substrate — useful as a cheap baseline model
in HPO experiments and as the "quick scorer" in tests where training cost
must be negligible.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_X_y
from .preprocessing import LabelEncoder

__all__ = ["GaussianNB"]


class GaussianNB(BaseEstimator):
    """Naive Bayes with per-class Gaussian feature likelihoods.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to all variances
        for numerical stability (scikit-learn's knob).
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        """Estimate per-class means, variances and priors."""
        if self.var_smoothing < 0:
            raise ValueError(f"var_smoothing must be non-negative, got {self.var_smoothing}")
        X, y = check_X_y(X, y)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        codes = self._encoder.transform(y)
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)
        for code in range(n_classes):
            members = X[codes == code]
            if len(members) == 0:
                raise ValueError(f"class {self.classes_[code]!r} has no training instances")
            self.theta_[code] = members.mean(axis=0)
            self.var_[code] = members.var(axis=0)
            self.class_prior_[code] = len(members) / len(y)
        epsilon = self.var_smoothing * max(float(X.var(axis=0).max()), 1e-12)
        self.var_ += epsilon
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "theta_"):
            raise RuntimeError("GaussianNB must be fitted before prediction")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        log_likelihoods = []
        for code in range(len(self.classes_)):
            log_prior = np.log(self.class_prior_[code])
            gaussian = -0.5 * (
                np.log(2.0 * np.pi * self.var_[code])
                + (X - self.theta_[code]) ** 2 / self.var_[code]
            ).sum(axis=1)
            log_likelihoods.append(log_prior + gaussian)
        return np.column_stack(log_likelihoods)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Posterior class probabilities."""
        joint = self._joint_log_likelihood(X)
        joint -= joint.max(axis=1, keepdims=True)
        likelihood = np.exp(joint)
        return likelihood / likelihood.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        joint = self._joint_log_likelihood(X)
        return self._encoder.inverse_transform(joint.argmax(axis=1))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(X) == np.asarray(y).ravel()).mean())
