"""Loss functions used by the MLP learners.

All losses return the *mean* loss over the batch so gradients are directly
comparable across batch sizes, mirroring scikit-learn's conventions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["log_loss", "binary_log_loss", "squared_loss", "LOSSES"]

# Clipping bound keeping log() finite without visibly distorting gradients.
_EPS = 1e-10

# Residual clamp keeping diff**2 below the float64 overflow threshold
# (1e150 squared is 1e300 < 1.8e308); only astronomically diverged
# predictions are affected, and NaN residuals still propagate so
# divergence detection keeps seeing them.
_MAX_RESIDUAL = 1e150


def log_loss(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Multinomial cross-entropy.

    Parameters
    ----------
    y_true:
        One-hot encoded labels of shape ``(n_samples, n_classes)``.
    y_prob:
        Predicted class probabilities of the same shape.
    """
    y_prob = np.clip(y_prob, _EPS, 1.0 - _EPS)
    return float(-(y_true * np.log(y_prob)).sum() / y_true.shape[0])


def binary_log_loss(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Binary cross-entropy for a single sigmoid output column."""
    y_prob = np.clip(y_prob, _EPS, 1.0 - _EPS)
    per_sample = y_true * np.log(y_prob) + (1.0 - y_true) * np.log(1.0 - y_prob)
    return float(-per_sample.sum() / y_true.shape[0])


def squared_loss(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error halved, so its gradient is ``(pred - true) / n``."""
    diff = np.clip(y_pred - y_true, -_MAX_RESIDUAL, _MAX_RESIDUAL)
    return float((diff**2).sum() / (2.0 * y_true.shape[0]))


LOSSES = {
    "log_loss": log_loss,
    "binary_log_loss": binary_log_loss,
    "squared_loss": squared_loss,
}
