"""Batched fold kernels: train every CV fold of a trial simultaneously.

The evaluator's hot path trains ``k_gen + k_spe`` MLPs per trial, one per
fold, in a Python loop.  For the paper's small networks the sequential
loop is dominated by per-call numpy overhead, not by FLOPs — so this
module advances **all folds at once**: fold data is stacked into
``(F, N, D)`` tensors, per-fold parameters into ``(F, d_in, d_out)``
tensors per layer, and one ``np.matmul`` per layer moves every fold one
step forward.

Bitwise equivalence with the sequential reference
-------------------------------------------------
The batched path is required to produce *bitwise identical* per-fold
models to ``model.fit`` run fold by fold (that is what keeps cold-start
incumbents, caches and journals exactly compatible).  Two facts about
the BLAS/numpy substrate shape the design:

- A stacked 3-D ``matmul`` over equal-shape slices is bitwise identical
  to the per-slice 2-D ``matmul`` (numpy dispatches the same GEMM per
  slice), and elementwise ufuncs plus same-length reductions are
  position-independent.
- Zero-padding the *row* dimension of a GEMM is **not** bitwise safe:
  OpenBLAS picks row-remainder micro-kernels based on ``M``, and padding
  ``M`` perturbs edge rows of the true output by 1 ulp for some shapes
  (measured here: 69 of 200 random shapes).

Padded tensors with validity masks therefore cannot meet the bitwise
contract.  Instead folds are grouped into **lanes** of identical shape —
same ``layer_units``, same training-set size, hence the same batch
size and step schedule — and every stacked array in a lane is exactly
shaped, never padded.  k-fold training splits differ by at most one row,
so a trial typically yields one or two lanes; mismatched folds (e.g. a
fold missing a class) fall into their own lane and degenerate to the
sequential reference.  Per-fold *control flow* (loss curves, early
stopping, the adaptive learning-rate schedule, divergence rollback)
stays in Python with per-fold scalars, exactly mirroring
``_BaseMLP._fit_stochastic``; a fold that stops is compacted out of the
lane and the survivors keep training.

Rung-level mega-batches
-----------------------
:func:`fit_mlp_trials` extends the same lanes **across every trial in a
rung**: the lane key captures everything *structural* about a fold's
training loop (architecture, row count, solver family, activations,
schedule shape, batch size, epoch budget), while the purely *numeric*
per-fold hyperparameters — ``alpha``, ``learning_rate_init``,
``momentum``, ``tol``, ``n_iter_no_change`` — are carried per fold
inside the lane.  A per-fold scalar applied through an ``(A, 1, 1)``
broadcast column performs the identical elementwise arithmetic on each
slice as the scalar it replaces, so two trials that differ only in
those knobs train in one stack and still produce bitwise-identical
models.  Fold results never depend on lane grouping, which is what
keeps cache keys, journal records and incumbent fingerprints untouched.

Only the stochastic solvers (``sgd`` / ``adam``) are batchable; L-BFGS
is full-batch scipy and keeps the per-fold loop.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry.profiling import profiled
from .activations import get_activation, softmax
from .base import check_X_y
from .losses import _EPS, _MAX_RESIDUAL
from .mlp import (
    DIVERGENCE_LOSS_CAP,
    _BaseMLP,
    _Z_CLIP,
    resolve_initial_parameters,
    warm_start_matches,
)
from .solvers import AdamOptimizer

__all__ = [
    "BatchedFitStats",
    "MegaBatchStats",
    "batchable_model",
    "fit_mlp_folds",
    "fit_mlp_trials",
]


def batchable_model(model: Any) -> bool:
    """Whether ``model`` can be trained by the batched fold kernels.

    True for the repo's MLPs with a stochastic solver; L-BFGS and
    non-MLP estimators take the sequential per-fold path.
    """
    return isinstance(model, _BaseMLP) and getattr(model, "solver", None) in ("sgd", "adam")


class BatchedFitStats:
    """Counters describing how one trial's folds were dispatched."""

    __slots__ = ("folds", "lanes", "batched_folds", "sequential_folds", "warm_folds")

    def __init__(self) -> None:
        self.folds = 0
        self.lanes = 0
        self.batched_folds = 0
        self.sequential_folds = 0
        self.warm_folds = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot for telemetry counters."""
        return {
            "folds": self.folds,
            "lanes": self.lanes,
            "batched_folds": self.batched_folds,
            "sequential_folds": self.sequential_folds,
            "warm_folds": self.warm_folds,
        }


class MegaBatchStats:
    """Counters describing how one rung's trials were fused into lanes.

    ``lane occupancy`` is ``batched_folds / folds``: every fold is one
    lane slot, and a slot counts as *filled* when its fold trained
    inside a stacked lane rather than falling back to the sequential
    loop.  ``fused_lanes`` / ``fused_folds`` count lanes (and their
    folds) that mixed folds from two or more distinct trials — the
    cross-trial work that per-trial batching could not reach.
    """

    __slots__ = (
        "trials",
        "folds",
        "lanes",
        "fused_lanes",
        "fused_folds",
        "batched_folds",
        "sequential_folds",
        "warm_folds",
        "max_lane_width",
    )

    def __init__(self) -> None:
        self.trials = 0
        self.folds = 0
        self.lanes = 0
        self.fused_lanes = 0
        self.fused_folds = 0
        self.batched_folds = 0
        self.sequential_folds = 0
        self.warm_folds = 0
        self.max_lane_width = 0

    @property
    def occupancy(self) -> float:
        """Filled lane slots over total slots, in ``[0, 1]``."""
        return self.batched_folds / self.folds if self.folds else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict snapshot for telemetry span attributes."""
        return {
            "trials": self.trials,
            "folds": self.folds,
            "lanes": self.lanes,
            "fused_lanes": self.fused_lanes,
            "fused_folds": self.fused_folds,
            "batched_folds": self.batched_folds,
            "sequential_folds": self.sequential_folds,
            "warm_folds": self.warm_folds,
            "max_lane_width": self.max_lane_width,
            "occupancy": self.occupancy,
        }


class _FoldPlan:
    """One fold's prepared state between the fit preamble and training."""

    __slots__ = ("model", "X", "y_encoded", "rng", "layer_units", "lane_key")

    def __init__(self, model, X, y_encoded, rng, layer_units, lane_key) -> None:
        self.model = model
        self.X = X
        self.y_encoded = y_encoded
        self.rng = rng
        self.layer_units = layer_units
        self.lane_key = lane_key


@profiled("mlp.fit_batched")
def fit_mlp_folds(
    jobs: Sequence[Tuple[Any, np.ndarray, np.ndarray]],
    warm: Optional[Dict[int, Tuple[Sequence[np.ndarray], Sequence[np.ndarray]]]] = None,
) -> BatchedFitStats:
    """Fit one MLP per fold, batching folds of identical shape.

    Parameters
    ----------
    jobs:
        ``(model, X_train, y_train)`` per fold, in fold order.  Every
        model must satisfy :func:`batchable_model` and share one
        hyperparameter configuration (they are the per-fold clones of a
        single trial); each is fitted in place exactly as ``model.fit``
        would have.
    warm:
        Optional ``fold_index -> (coefs, intercepts)`` warm starts; a
        fold whose donated shapes mismatch its architecture falls back
        to cold initialisation, like :meth:`_BaseMLP.fit`.

    Returns
    -------
    BatchedFitStats
        Dispatch counters (lanes formed, folds batched vs sequential).
    """
    stats = BatchedFitStats()
    stats.folds = len(jobs)
    plans: List[_FoldPlan] = []
    for index, (model, X, y) in enumerate(jobs):
        coefs_init = intercepts_init = None
        if warm is not None and index in warm:
            coefs_init, intercepts_init = warm[index]
        plan = _prepare_fold(model, X, y, coefs_init, intercepts_init)
        if warm_start_matches(plan.layer_units, coefs_init, intercepts_init):
            stats.warm_folds += 1
        plans.append(plan)

    lanes: Dict[Tuple, List[_FoldPlan]] = {}
    for plan in plans:
        lanes.setdefault(plan.lane_key, []).append(plan)
    stats.lanes = len(lanes)
    for members in lanes.values():
        if _run_lane(members):
            stats.batched_folds += len(members)
        else:
            stats.sequential_folds += len(members)
    return stats


@profiled("mlp.fit_megabatch")
def fit_mlp_trials(
    trial_jobs: Sequence[Sequence[Tuple[Any, np.ndarray, np.ndarray]]],
    warms: Optional[Sequence[Optional[Dict[int, Tuple[Sequence[np.ndarray], Sequence[np.ndarray]]]]]] = None,
) -> Tuple[List[BatchedFitStats], MegaBatchStats]:
    """Fit every fold of every trial in one rung-level mega-batch.

    Parameters
    ----------
    trial_jobs:
        One entry per trial, each a sequence of ``(model, X_train,
        y_train)`` fold jobs exactly as :func:`fit_mlp_folds` takes
        them.  Models from *different* trials may carry different
        hyperparameter configurations.
    warms:
        Optional per-trial warm-start dicts, aligned with
        ``trial_jobs`` (``None`` entries for cold trials).

    Returns
    -------
    (per_trial_stats, mega_stats)
        One :class:`BatchedFitStats` per trial (identical semantics to
        the per-trial entry point) plus an aggregate
        :class:`MegaBatchStats` describing the fusion.

    Every fold is trained bitwise-identically to ``model.fit`` run on
    its own, regardless of which trials ended up sharing its lane.
    """
    per_trial = [BatchedFitStats() for _ in trial_jobs]
    mega = MegaBatchStats()
    mega.trials = len(trial_jobs)
    plans: List[_FoldPlan] = []
    owner: List[int] = []
    for t, jobs in enumerate(trial_jobs):
        warm = warms[t] if warms is not None else None
        stats = per_trial[t]
        stats.folds = len(jobs)
        for index, (model, X, y) in enumerate(jobs):
            coefs_init = intercepts_init = None
            if warm is not None and index in warm:
                coefs_init, intercepts_init = warm[index]
            plan = _prepare_fold(model, X, y, coefs_init, intercepts_init)
            if warm_start_matches(plan.layer_units, coefs_init, intercepts_init):
                stats.warm_folds += 1
            plans.append(plan)
            owner.append(t)

    lanes: Dict[Tuple, List[int]] = {}
    for position, plan in enumerate(plans):
        lanes.setdefault(plan.lane_key, []).append(position)
    mega.lanes = len(lanes)
    mega.folds = len(plans)
    for positions in lanes.values():
        members = [plans[i] for i in positions]
        lane_trials = {owner[i] for i in positions}
        if len(lane_trials) > 1:
            mega.fused_lanes += 1
            mega.fused_folds += len(members)
        mega.max_lane_width = max(mega.max_lane_width, len(members))
        batched = _run_lane(members)
        for i in positions:
            if batched:
                per_trial[owner[i]].batched_folds += 1
            else:
                per_trial[owner[i]].sequential_folds += 1
        for t in lane_trials:
            per_trial[t].lanes += 1
    mega.batched_folds = sum(s.batched_folds for s in per_trial)
    mega.sequential_folds = sum(s.sequential_folds for s in per_trial)
    mega.warm_folds = sum(s.warm_folds for s in per_trial)
    return per_trial, mega


def _run_lane(members: List[_FoldPlan]) -> bool:
    """Train one lane; True iff it ran stacked (not member-by-member)."""
    if len(members) == 1 or members[0].model.solver == "lbfgs":
        for plan in members:
            _fit_sequential(plan)
        return False
    _fit_lane(members)
    return True


def _prepare_fold(model, X, y, coefs_init, intercepts_init) -> _FoldPlan:
    """Replicate the ``fit()`` preamble: validate, encode, initialise.

    Consumes the model's random stream exactly as ``fit`` does (Glorot
    draws unless a matching warm start suppresses them), so the batched
    and sequential paths see identical generator states at the start of
    stochastic training.
    """
    model._validate_hyperparameters()
    X, y = check_X_y(X, y)
    y_encoded = model._encode_targets(y)
    layer_units = [X.shape[1], *model._hidden_layers(), model._n_outputs(y_encoded)]
    rng = np.random.default_rng(model.random_state)
    model.coefs_, model.intercepts_ = resolve_initial_parameters(
        layer_units, model.activation, rng, coefs_init, intercepts_init
    )
    model.n_layers_ = len(layer_units)
    model.loss_curve_ = []
    model.validation_scores_ = []
    model.diverged_ = False
    lane_key = _lane_key(model, layer_units, int(X.shape[0]), y_encoded)
    return _FoldPlan(model, X, y_encoded, rng, layer_units, lane_key)


def _lane_key(model, layer_units, n_rows, y_encoded) -> Tuple:
    """Everything *structural* about a fold's training loop.

    Two folds with equal keys run the same tensor shapes, the same batch
    schedule and the same branch structure for every epoch, so they can
    share a lane.  The purely numeric knobs — ``alpha``,
    ``learning_rate_init``, ``momentum``, ``tol``, ``n_iter_no_change``
    — are deliberately *absent*: the lane carries them per fold (scalar
    or broadcast column, bitwise-equal either way), which is what lets
    trials that differ only in those values fuse into one stack.
    """
    if model.solver == "sgd":
        # The lookahead branch and the decay exponent shape the update;
        # adam never reads either.
        solver_key = (
            "sgd",
            model.learning_rate,
            bool(model.nesterovs_momentum),
            float(model.power_t),
        )
    else:
        # ``learning_rate`` still gates the stall-break branch in
        # ``_fit_stochastic`` ("adaptive" keeps training), even though
        # adam ignores the schedule itself.
        solver_key = (model.solver, model.learning_rate)
    early_stopping = bool(model.early_stopping)
    return (
        type(model).__name__,
        tuple(layer_units),
        n_rows,
        solver_key,
        model.activation,
        model._output_activation(),
        early_stopping,
        float(model.validation_fraction) if early_stopping else None,
        bool(model.shuffle),
        int(model.max_iter),
        model.batch_size,
    )


def _fit_sequential(plan: _FoldPlan) -> None:
    """Finish one fold via the model's own (reference) solver loop."""
    model = plan.model
    if model.solver == "lbfgs":
        model._fit_lbfgs(plan.X, plan.y_encoded)
    else:
        model._fit_stochastic(plan.X, plan.y_encoded, plan.rng)


# -- lane optimisers ----------------------------------------------------------


def _per_fold_factor(values: List, ndim: int):
    """A scalar while every fold agrees, else an ``(A, 1, ...)`` column.

    Broadcasting the column applies each fold's scalar to its slice with
    the same elementwise arithmetic as the scalar it replaces, keeping
    heterogeneous lanes bitwise-equal to the per-fold reference loop.
    """
    first = values[0]
    if all(value == first for value in values):
        return first
    return np.asarray(values, dtype=float).reshape((len(values),) + (1,) * (ndim - 1))


class _LaneSGD:
    """Stacked-tensor mirror of :class:`~repro.learners.solvers.SGDOptimizer`.

    Parameters are ``(A, ...)`` stacks; the update applies the exact
    arithmetic of the per-fold optimizer to every lane slice.  The
    learning rate and momentum come from each member's own model, so
    folds from different trials may carry different values: factors stay
    scalar while all folds agree and become per-fold broadcast columns
    otherwise.
    """

    def __init__(self, params: List[np.ndarray], members: List[_FoldPlan]) -> None:
        reference = members[0].model
        self.params = params
        self.schedule = reference.learning_rate
        self.nesterov = reference.nesterovs_momentum
        self.power_t = reference.power_t
        self.rate_inits = [plan.model.learning_rate_init for plan in members]
        self.rates = list(self.rate_inits)
        self.momenta = [plan.model.momentum for plan in members]
        self._velocities = [np.zeros_like(p) for p in params]
        self._t = 0

    def compact(self, keep: List[int]) -> None:
        self._velocities = [v[keep] for v in self._velocities]
        self.rates = [self.rates[i] for i in keep]
        self.rate_inits = [self.rate_inits[i] for i in keep]
        self.momenta = [self.momenta[i] for i in keep]

    def _rate_factor(self, ndim: int):
        if self.schedule == "invscaling":
            self.rates = [init / (self._t**self.power_t) for init in self.rate_inits]
        return _per_fold_factor(self.rates, ndim)

    def update(self, grads: List[np.ndarray]) -> None:
        self._t += 1
        for param, grad, velocity in zip(self.params, grads, self._velocities):
            lr = self._rate_factor(param.ndim)
            momentum = _per_fold_factor(self.momenta, param.ndim)
            velocity *= momentum
            velocity -= lr * grad
            if self.nesterov:
                param += momentum * velocity - lr * grad
            else:
                param += velocity

    def notify_no_improvement(self, position: int) -> None:
        if self.schedule == "adaptive":
            self.rates[position] = max(self.rates[position] / 5.0, 1e-6)

    def should_stop(self, position: int, tol: float = 1e-6) -> bool:
        return self.schedule == "adaptive" and self.rates[position] <= tol


class _LaneAdam:
    """Stacked-tensor mirror of :class:`~repro.learners.solvers.AdamOptimizer`.

    Every active fold in a lane has taken the same number of steps, so
    the bias-correction terms are shared; the per-fold step size is the
    exact python-float chain of the per-fold optimizer (``init * sqrt /
    denom``), one scalar while all folds share a ``learning_rate_init``
    and a broadcast column otherwise.
    """

    def __init__(self, params: List[np.ndarray], members: List[_FoldPlan]) -> None:
        template = AdamOptimizer([], learning_rate_init=members[0].model.learning_rate_init)
        self.params = params
        self.rate_inits = [plan.model.learning_rate_init for plan in members]
        self.beta_1 = template.beta_1
        self.beta_2 = template.beta_2
        self.epsilon = template.epsilon
        self._t = 0
        self._ms = [np.zeros_like(p) for p in params]
        self._vs = [np.zeros_like(p) for p in params]

    def compact(self, keep: List[int]) -> None:
        self._ms = [m[keep] for m in self._ms]
        self._vs = [v[keep] for v in self._vs]
        self.rate_inits = [self.rate_inits[i] for i in keep]

    def update(self, grads: List[np.ndarray]) -> None:
        self._t += 1
        scale = np.sqrt(1.0 - self.beta_2**self._t)
        denom = 1.0 - self.beta_1**self._t
        steps = [init * scale / denom for init in self.rate_inits]
        for param, grad, m, v in zip(self.params, grads, self._ms, self._vs):
            step = _per_fold_factor(steps, param.ndim)
            m *= self.beta_1
            m += (1.0 - self.beta_1) * grad
            v *= self.beta_2
            v += (1.0 - self.beta_2) * grad**2
            param -= step * m / (np.sqrt(v) + self.epsilon)

    def notify_no_improvement(self, position: int) -> None:
        """Adam has no schedule reaction; kept for interface symmetry."""

    def should_stop(self, position: int, tol: float = 1e-6) -> bool:
        return False


class _FoldState:
    """Per-fold bookkeeping that must stay scalar (and Python-exact).

    Carries the fold's own stopping hyperparameters (``tol``,
    ``n_iter_no_change``): they feed pure-Python comparisons, so folds
    from trials with different values share a lane without ever mixing.
    """

    __slots__ = (
        "plan",
        "tol",
        "n_iter_no_change",
        "best_loss",
        "best_val_score",
        "best_params",
        "no_improvement",
    )

    def __init__(self, plan: _FoldPlan) -> None:
        self.plan = plan
        self.tol = plan.model.tol
        self.n_iter_no_change = plan.model.n_iter_no_change
        self.best_loss = np.inf
        self.best_val_score = -np.inf
        self.best_params: Optional[Tuple[List[np.ndarray], List[np.ndarray]]] = None
        self.no_improvement = 0


# -- the lane trainer ---------------------------------------------------------


def _fit_lane(members: List[_FoldPlan]) -> None:
    """Train one lane of identically-shaped folds in lockstep.

    Mirrors ``_BaseMLP._fit_stochastic`` per fold while running every
    tensor operation on ``(A, ...)`` stacks.  Folds that finish (early
    stop, divergence, schedule collapse) are finalised and compacted out;
    the loop ends when the lane is empty or ``max_iter`` is reached.
    """
    reference = members[0].model
    early_stopping = reference.early_stopping
    shuffle = reference.shuffle

    # Validation split per fold, consuming each fold's rng exactly as the
    # sequential path does.  Lane membership guarantees equal sizes.
    train_X: List[np.ndarray] = []
    train_y: List[np.ndarray] = []
    val_X: List[np.ndarray] = []
    val_y: List[np.ndarray] = []
    for plan in members:
        if early_stopping and plan.X.shape[0] > 1:
            X_train, y_train, X_val, y_val = plan.model._validation_split(
                plan.X, plan.y_encoded, plan.rng
            )
        else:
            X_train, y_train, X_val, y_val = plan.X, plan.y_encoded, None, None
        train_X.append(X_train)
        train_y.append(y_train)
        val_X.append(X_val)
        val_y.append(y_val)
    has_val = val_X[0] is not None

    Xs = np.stack(train_X)  # (A, n, D)
    ys = np.stack(train_y)  # (A, n, k)
    Xv = np.stack(val_X) if has_val else None
    yv = np.stack(val_y) if has_val else None

    n_layers = len(reference.coefs_)
    coefs = [np.stack([p.model.coefs_[l] for p in members]) for l in range(n_layers)]
    intercepts = [np.stack([p.model.intercepts_[l] for p in members]) for l in range(n_layers)]
    params = [*coefs, *intercepts]
    width = len(members)
    if reference.solver == "sgd":
        optimizer = _LaneSGD(params, members)
    else:
        optimizer = _LaneAdam(params, members)

    n_samples = Xs.shape[1]
    batch_size = reference._resolve_batch_size(n_samples)
    states = [_FoldState(plan) for plan in members]
    for state in states:
        state.plan.model.n_iter_ = 0

    hidden_fn, hidden_derivative = get_activation(reference.activation)
    output_activation = reference._output_activation()
    alphas = [plan.model.alpha for plan in members]
    adaptive = reference.learning_rate == "adaptive"

    def _forward_stack(batch: np.ndarray) -> List[np.ndarray]:
        activations = [batch]
        for layer in range(n_layers):
            z = np.matmul(activations[-1], coefs[layer]) + intercepts[layer][:, None, :]
            z = np.clip(z, -_Z_CLIP, _Z_CLIP)
            if layer < n_layers - 1:
                activations.append(hidden_fn(z))
            elif output_activation == "softmax":
                flat = z.reshape(-1, z.shape[-1])
                activations.append(softmax(flat).reshape(z.shape))
            else:
                out_fn, _ = get_activation(output_activation)
                activations.append(out_fn(z))
        return activations

    lane_rows = np.arange(width)[:, None]

    for _ in range(reference.max_iter):
        if not states:
            break
        width = len(states)
        epoch_start = [p.copy() for p in params]
        if shuffle:
            orders = np.stack([state.plan.rng.permutation(n_samples) for state in states])
        else:
            orders = np.broadcast_to(np.arange(n_samples), (width, n_samples))
        accumulated = [0.0] * width

        for start in range(0, n_samples, batch_size):
            idx = orders[:, start : start + batch_size]
            batch_n = idx.shape[1]
            Xb = Xs[lane_rows, idx]
            yb = ys[lane_rows, idx]

            activations = _forward_stack(Xb)
            out = activations[-1]
            losses = _lane_losses(output_activation, yb, out, coefs, alphas, batch_n)
            for i in range(width):
                accumulated[i] += losses[i] * batch_n

            delta = (out - yb) / batch_n
            ridge = _per_fold_factor([a / batch_n for a in alphas], 3)
            coef_grads: List[Optional[np.ndarray]] = [None] * n_layers
            intercept_grads: List[Optional[np.ndarray]] = [None] * n_layers
            for layer in range(n_layers - 1, -1, -1):
                grad = np.matmul(activations[layer].transpose(0, 2, 1), delta)
                grad += ridge * coefs[layer]
                coef_grads[layer] = grad
                intercept_grads[layer] = delta.sum(axis=1)
                if layer > 0:
                    delta = np.matmul(delta, coefs[layer].transpose(0, 2, 1))
                    delta *= hidden_derivative(activations[layer])
            optimizer.update([*coef_grads, *intercept_grads])

        val_out = _forward_stack(Xv)[-1] if has_val else None

        finished: List[int] = []
        for i, state in enumerate(states):
            model = state.plan.model
            epoch_loss = accumulated[i] / n_samples
            model.loss_curve_.append(epoch_loss)
            model.n_iter_ += 1

            if not np.isfinite(epoch_loss) or epoch_loss > DIVERGENCE_LOSS_CAP:
                model.diverged_ = True
                model.coefs_ = [epoch_start[l][i].copy() for l in range(n_layers)]
                model.intercepts_ = [
                    epoch_start[n_layers + l][i].copy() for l in range(n_layers)
                ]
                model.loss_ = float("inf")
                finished.append(i)
                continue

            if early_stopping and has_val:
                val_score = _validation_score_slice(model, val_out[i], yv[i])
                model.validation_scores_.append(val_score)
                if val_score > state.best_val_score + state.tol:
                    state.best_val_score = val_score
                    state.best_params = (
                        [coefs[l][i].copy() for l in range(n_layers)],
                        [intercepts[l][i].copy() for l in range(n_layers)],
                    )
                    state.no_improvement = 0
                else:
                    state.no_improvement += 1
            else:
                if epoch_loss < state.best_loss - state.tol:
                    state.best_loss = epoch_loss
                    state.no_improvement = 0
                else:
                    state.no_improvement += 1

            if state.no_improvement >= state.n_iter_no_change:
                optimizer.notify_no_improvement(i)
                state.no_improvement = 0
                if optimizer.should_stop(i) or early_stopping or not adaptive:
                    finished.append(i)

        if finished:
            finished_set = set(finished)
            for i in finished:
                if not states[i].plan.model.diverged_:
                    _finalize_fold(states[i], coefs, intercepts, i, n_layers)
            keep = [i for i in range(len(states)) if i not in finished_set]
            if not keep:
                return
            states = [states[i] for i in keep]
            alphas = [alphas[i] for i in keep]
            Xs = Xs[keep]
            ys = ys[keep]
            if has_val:
                Xv = Xv[keep]
                yv = yv[keep]
            coefs = [c[keep] for c in coefs]
            intercepts = [b[keep] for b in intercepts]
            params = [*coefs, *intercepts]
            optimizer.params = params
            optimizer.compact(keep)
            lane_rows = np.arange(len(states))[:, None]

    for i, state in enumerate(states):
        _finalize_fold(state, coefs, intercepts, i, n_layers)


def _lane_losses(
    output_activation: str,
    yb: np.ndarray,
    out: np.ndarray,
    coefs: List[np.ndarray],
    alphas: Sequence[float],
    batch_n: int,
) -> List[float]:
    """Per-fold regularised batch losses from one stacked forward pass.

    Replicates ``_BaseMLP._backprop``'s loss arithmetic — the head loss
    from :mod:`.losses` plus the L2 penalty (scaled by each fold's own
    ``alpha``) — with the elementwise work and the per-slice reductions
    done once on the ``(A, B, k)`` stack.  A same-shape slice reduction
    (``sum(axis=(1, 2))``) is bitwise identical to the per-fold 2-D
    ``.sum()``, so each returned float equals the sequential path's
    exactly.
    """
    width = yb.shape[0]
    if output_activation == "softmax":
        sums = (yb * np.log(np.clip(out, _EPS, 1.0 - _EPS))).sum(axis=(1, 2))
        data = [float(-sums[i] / batch_n) for i in range(width)]
    elif output_activation == "logistic":
        prob = np.clip(out, _EPS, 1.0 - _EPS)
        per_sample = yb * np.log(prob) + (1.0 - yb) * np.log(1.0 - prob)
        sums = per_sample.sum(axis=(1, 2))
        data = [float(-sums[i] / batch_n) for i in range(width)]
    else:
        diff = np.clip(out - yb, -_MAX_RESIDUAL, _MAX_RESIDUAL)
        sums = (diff**2).sum(axis=(1, 2))
        data = [float(sums[i] / (2.0 * batch_n)) for i in range(width)]
    layer_sums = [(W**2).sum(axis=(1, 2)) for W in coefs]
    return [
        data[i] + (alphas[i] / (2.0 * batch_n)) * sum(float(s[i]) for s in layer_sums)
        for i in range(width)
    ]


def _finalize_fold(
    state: _FoldState,
    coefs: List[np.ndarray],
    intercepts: List[np.ndarray],
    position: int,
    n_layers: int,
) -> None:
    """Write the trained lane slice back onto the fold's estimator."""
    model = state.plan.model
    if state.best_params is not None:
        model.coefs_, model.intercepts_ = state.best_params
    else:
        model.coefs_ = [coefs[l][position].copy() for l in range(n_layers)]
        model.intercepts_ = [intercepts[l][position].copy() for l in range(n_layers)]
    model.loss_ = model.loss_curve_[-1] if model.loss_curve_ else np.inf


def _validation_score_slice(model, proba: np.ndarray, y_val: np.ndarray) -> float:
    """Per-fold early-stopping score from an already-computed forward pass.

    Mirrors ``MLPClassifier._validation_score`` / ``MLPRegressor._validation_score``
    without re-running the forward pass per fold.
    """
    from .losses import squared_loss

    if hasattr(model, "classes_"):
        if len(model.classes_) == 2:
            predicted = (proba[:, 0] >= 0.5).astype(float)
            return float((predicted == y_val[:, 0]).mean())
        return float((proba.argmax(axis=1) == y_val.argmax(axis=1)).mean())
    return -squared_loss(y_val, proba)
