"""Linear models: logistic regression and ridge regression.

Fast, convex learners complementing the MLP: the paper's method is
model-agnostic (any estimator with ``fit`` / ``score`` works through the
evaluator seam), and linear models make tests and examples cheap.  Both are
trained with closed-form / L-BFGS full-batch optimization.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.optimize

from .activations import logistic, softmax
from .base import BaseEstimator, check_X_y
from .preprocessing import LabelEncoder, one_hot

__all__ = ["LogisticRegression", "Ridge"]


class LogisticRegression(BaseEstimator):
    """L2-regularized (multinomial) logistic regression via L-BFGS.

    Parameters
    ----------
    C:
        Inverse regularization strength (scikit-learn convention: larger is
        less regularized).
    max_iter:
        L-BFGS iteration cap.
    tol:
        Gradient tolerance.
    fit_intercept:
        Learn a bias term.
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 100,
        tol: float = 1e-6,
        fit_intercept: bool = True,
    ) -> None:
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit the model by minimizing regularized cross-entropy."""
        if self.C <= 0:
            raise ValueError(f"C must be positive, got {self.C}")
        X, y = check_X_y(X, y)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("LogisticRegression requires at least 2 classes")
        codes = self._encoder.transform(y)
        targets = one_hot(codes, n_classes) if n_classes > 2 else codes.reshape(-1, 1).astype(float)

        n_features = X.shape[1]
        n_outputs = targets.shape[1]
        n_samples = X.shape[0]
        bias_cols = 1 if self.fit_intercept else 0

        def objective(flat: np.ndarray):
            W = flat.reshape(n_features + bias_cols, n_outputs)
            weights, bias = (W[:-1], W[-1]) if self.fit_intercept else (W, 0.0)
            z = X @ weights + bias
            if n_outputs == 1:
                probabilities = logistic(z)
            else:
                probabilities = softmax(z)
            clipped = np.clip(probabilities, 1e-12, 1 - 1e-12)
            if n_outputs == 1:
                loss = -(targets * np.log(clipped) + (1 - targets) * np.log(1 - clipped)).sum() / n_samples
            else:
                loss = -(targets * np.log(clipped)).sum() / n_samples
            loss += (weights**2).sum() / (2.0 * self.C * n_samples)
            delta = (probabilities - targets) / n_samples
            grad_w = X.T @ delta + weights / (self.C * n_samples)
            if self.fit_intercept:
                grad = np.vstack([grad_w, delta.sum(axis=0)])
            else:
                grad = grad_w
            return loss, grad.ravel()

        x0 = np.zeros((n_features + bias_cols) * n_outputs)
        result = scipy.optimize.minimize(
            objective, x0, jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        W = result.x.reshape(n_features + bias_cols, n_outputs)
        if self.fit_intercept:
            self.coef_, self.intercept_ = W[:-1], W[-1]
        else:
            self.coef_, self.intercept_ = W, np.zeros(n_outputs)
        self.n_iter_ = int(result.nit)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw scores ``X @ coef + intercept``."""
        if not hasattr(self, "coef_"):
            raise RuntimeError("LogisticRegression must be fitted before prediction")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities of shape ``(n_samples, n_classes)``."""
        scores = self.decision_function(X)
        if scores.shape[1] == 1:
            positive = logistic(scores[:, 0])
            return np.column_stack([1 - positive, positive])
        return softmax(scores)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class label per row."""
        if not hasattr(self, "coef_"):
            raise RuntimeError("LogisticRegression must be fitted before prediction")
        return self._encoder.inverse_transform(self.predict_proba(X).argmax(axis=1))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(X) == np.asarray(y).ravel()).mean())


class Ridge(BaseEstimator):
    """Ridge regression with a closed-form solution.

    Parameters
    ----------
    alpha:
        L2 penalty strength (0 gives ordinary least squares).
    fit_intercept:
        Centre the data and learn a bias.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Ridge":
        """Solve ``(X'X + alpha I) w = X'y``."""
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        X, y = check_X_y(X, y)
        y = y.astype(float)
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), y.mean()
            X_centred, y_centred = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            X_centred, y_centred = X, y
        gram = X_centred.T @ X_centred + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, X_centred.T @ y_centred)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted targets."""
        if not hasattr(self, "coef_"):
            raise RuntimeError("Ridge must be fitted before prediction")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return X @ self.coef_ + self.intercept_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R² of the prediction."""
        y = np.asarray(y, dtype=float).ravel()
        prediction = self.predict(X)
        ss_res = float(((y - prediction) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot
