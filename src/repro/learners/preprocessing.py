"""Feature and label preprocessing utilities.

Implements the pieces of scikit-learn's preprocessing module the
reproduction relies on: standard scaling, label encoding and one-hot
encoding of integer class labels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BaseEstimator, check_array

__all__ = ["StandardScaler", "LabelEncoder", "one_hot"]


class StandardScaler(BaseEstimator):
    """Standardize features to zero mean and unit variance.

    Constant features (zero variance) are left centred but unscaled, the
    same guard scikit-learn applies.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn per-feature mean and scale from ``X``."""
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned standardization."""
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler must be fitted before transform")
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features but scaler was fitted with {self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit to ``X`` and return the transformed array."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Map standardized values back to the original feature space."""
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler must be fitted before inverse_transform")
        X = check_array(X)
        return X * self.scale_ + self.mean_


class LabelEncoder(BaseEstimator):
    """Encode arbitrary hashable labels as integers ``0..n_classes-1``."""

    def fit(self, y) -> "LabelEncoder":
        """Record the sorted unique labels of ``y``."""
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y) -> np.ndarray:
        """Map labels to their integer codes, raising on unseen labels."""
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder must be fitted before transform")
        y = np.asarray(y)
        codes = np.searchsorted(self.classes_, y)
        codes = np.clip(codes, 0, len(self.classes_) - 1)
        if not np.array_equal(self.classes_[codes], y):
            unseen = sorted(set(y.tolist()) - set(self.classes_.tolist()))
            raise ValueError(f"y contains labels unseen during fit: {unseen}")
        return codes

    def fit_transform(self, y) -> np.ndarray:
        """Fit to ``y`` and return the integer codes."""
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> np.ndarray:
        """Map integer codes back to original labels."""
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder must be fitted before inverse_transform")
        codes = np.asarray(codes, dtype=int)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes_)):
            raise ValueError("codes contain values outside the fitted range")
        return self.classes_[codes]


def one_hot(y: np.ndarray, n_classes: Optional[int] = None) -> np.ndarray:
    """One-hot encode integer labels.

    Parameters
    ----------
    y:
        Integer labels in ``0..n_classes-1``.
    n_classes:
        Number of columns; inferred as ``y.max() + 1`` when omitted.
    """
    y = np.asarray(y, dtype=int)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-dimensional, got shape {y.shape}")
    if n_classes is None:
        n_classes = int(y.max()) + 1 if y.size else 0
    if y.size and (y.min() < 0 or y.max() >= n_classes):
        raise ValueError(f"labels must lie in [0, {n_classes}), got range [{y.min()}, {y.max()}]")
    encoded = np.zeros((y.shape[0], n_classes), dtype=float)
    encoded[np.arange(y.shape[0]), y] = 1.0
    return encoded
