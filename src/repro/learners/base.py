"""Minimal estimator protocol shared by all learners.

Provides a tiny subset of the scikit-learn estimator contract that the rest
of the library relies on: constructor-args-as-hyperparameters,
``get_params`` / ``set_params``, and :func:`clone` to create an unfitted copy
with identical hyperparameters.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Dict

import numpy as np

__all__ = ["BaseEstimator", "clone", "check_X_y", "check_array"]


class BaseEstimator:
    """Base class giving hyperparameter introspection to learners.

    Subclasses must accept all hyperparameters as keyword arguments in
    ``__init__`` and store them under the same attribute names, which is what
    makes :func:`clone` and :meth:`get_params` work without per-class code.
    Fitted state must use attribute names ending in ``_``.
    """

    @classmethod
    def _param_names(cls) -> list:
        init_signature = inspect.signature(cls.__init__)
        return [
            name
            for name, parameter in init_signature.parameters.items()
            if name != "self"
            and parameter.kind not in (parameter.VAR_KEYWORD, parameter.VAR_POSITIONAL)
        ]

    def get_params(self) -> Dict[str, Any]:
        """Return hyperparameters as a ``name -> value`` dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyperparameters, raising on names unknown to ``__init__``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for {type(self).__name__}; valid parameters: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({args})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return a new unfitted estimator with the same hyperparameters."""
    params = {key: copy.deepcopy(value) for key, value in estimator.get_params().items()}
    return type(estimator)(**params)


def check_array(X: Any, *, name: str = "X") -> np.ndarray:
    """Coerce ``X`` to a 2-D float array, rejecting NaN / inf values."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one sample")
    if not np.isfinite(X).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return X


def check_X_y(X: Any, y: Any) -> tuple:
    """Validate a feature matrix / target vector pair of matching length."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        y = y.ravel()
    if y.shape[0] != X.shape[0]:
        raise ValueError(f"X and y have inconsistent lengths: {X.shape[0]} != {y.shape[0]}")
    return X, y
