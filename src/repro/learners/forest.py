"""Random forests: bagged CART ensembles.

Used in two roles: as another model family to tune, and as the surrogate
model of the SMAC-style Bayesian optimizer in
:mod:`repro.bandit.smac` (SMAC3 — compared textually in the paper's
Section IV-B — uses a random-forest surrogate, whose per-tree spread
provides the uncertainty estimate the acquisition function needs).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import BaseEstimator, check_X_y
from .preprocessing import LabelEncoder
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class _BaseForest(BaseEstimator):
    """Bootstrap-aggregated trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = "sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(self.max_features, (int, np.integer)):
            return int(min(self.max_features, n_features))
        raise ValueError(
            f"max_features must be None, 'sqrt', 'log2' or an int, got {self.max_features!r}"
        )

    def _make_tree(self, random_state: int, max_features: Optional[int]):
        raise NotImplementedError

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        rng = np.random.default_rng(self.random_state)
        max_features = self._resolve_max_features(X.shape[1])
        n_samples = X.shape[0]
        self.estimators_: List = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample = rng.integers(n_samples, size=n_samples)
            else:
                sample = np.arange(n_samples)
            tree = self._make_tree(int(rng.integers(2**31)), max_features)
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)

    def _check_fitted(self) -> None:
        if not hasattr(self, "estimators_"):
            raise RuntimeError(f"{type(self).__name__} must be fitted before prediction")


class RandomForestClassifier(_BaseForest):
    """Majority-vote forest of CART classifiers."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit ``n_estimators`` bootstrapped trees."""
        X, y = check_X_y(X, y)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        codes = self._encoder.transform(y)
        self._n_classes = len(self.classes_)
        self._fit_forest(X, codes)
        return self

    def _make_tree(self, random_state: int, max_features: Optional[int]):
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=max_features,
            random_state=random_state,
        )

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of per-tree leaf distributions."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        votes = np.zeros((X.shape[0], self._n_classes))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # Trees were fitted on integer codes; class columns align only
            # when every bootstrap saw all classes — pad when they did not.
            if proba.shape[1] == self._n_classes:
                votes += proba
            else:
                seen = tree._encoder.classes_.astype(int)
                votes[:, seen] += proba
        return votes / len(self.estimators_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote class labels."""
        self._check_fitted()
        return self._encoder.inverse_transform(self.predict_proba(X).argmax(axis=1))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(X) == np.asarray(y).ravel()).mean())


class RandomForestRegressor(_BaseForest):
    """Mean-aggregated forest of CART regressors.

    :meth:`predict_with_std` exposes the per-tree spread used as the
    surrogate uncertainty in SMAC-style Bayesian optimization.
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit ``n_estimators`` bootstrapped trees."""
        X, y = check_X_y(X, y)
        self._fit_forest(X, y.astype(float))
        return self

    def _make_tree(self, random_state: int, max_features: Optional[int]):
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=max_features,
            random_state=random_state,
        )

    def _tree_matrix(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return np.vstack([tree.predict(X) for tree in self.estimators_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean of per-tree predictions."""
        return self._tree_matrix(X).mean(axis=0)

    def predict_with_std(self, X: np.ndarray) -> tuple:
        """``(mean, std)`` across trees — the surrogate's uncertainty."""
        matrix = self._tree_matrix(X)
        return matrix.mean(axis=0), matrix.std(axis=0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R² of the mean prediction."""
        y = np.asarray(y, dtype=float).ravel()
        prediction = self.predict(X)
        ss_res = float(((y - prediction) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot
