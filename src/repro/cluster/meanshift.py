"""Mean-shift clustering.

The paper (Section III-A) notes the grouping step "can employ various
clustering algorithms such as k-means, mean-shift, and affinity
propagation"; k-means is its default for efficiency.  This flat-kernel
mean-shift implementation makes that claim testable: pass
``clusterer="meanshift"`` to :func:`repro.core.grouping.generate_groups`.

Mean-shift discovers the number of clusters itself, so when the grouping
step requires exactly ``v`` clusters the labels are consolidated to the
``v`` largest modes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..learners.base import BaseEstimator, check_array

__all__ = ["MeanShift", "estimate_bandwidth"]


def estimate_bandwidth(X: np.ndarray, quantile: float = 0.3, max_samples: int = 200,
                       random_state: Optional[int] = None) -> float:
    """Median-heuristic bandwidth: the ``quantile`` of pairwise distances.

    Subsamples ``max_samples`` rows to keep the O(n²) distance computation
    bounded.
    """
    X = check_array(X)
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    rng = np.random.default_rng(random_state)
    if X.shape[0] > max_samples:
        X = X[rng.choice(X.shape[0], size=max_samples, replace=False)]
    diffs = X[:, None, :] - X[None, :, :]
    distances = np.sqrt((diffs**2).sum(axis=2))
    upper = distances[np.triu_indices_from(distances, k=1)]
    if upper.size == 0:
        return 1.0
    bandwidth = float(np.quantile(upper, quantile))
    return bandwidth if bandwidth > 0 else 1.0


class MeanShift(BaseEstimator):
    """Flat-kernel mean-shift with seed binning and mode merging.

    Parameters
    ----------
    bandwidth:
        Kernel radius; estimated with the median heuristic when ``None``.
    max_iter:
        Shift iterations per seed.
    tol:
        Convergence threshold on the shift length, relative to bandwidth.
    max_seeds:
        Seeds are subsampled to this many points for tractability.
    random_state:
        Seed for subsampling.
    """

    def __init__(
        self,
        bandwidth: Optional[float] = None,
        max_iter: int = 50,
        tol: float = 1e-3,
        max_seeds: int = 100,
        random_state: Optional[int] = None,
    ) -> None:
        self.bandwidth = bandwidth
        self.max_iter = max_iter
        self.tol = tol
        self.max_seeds = max_seeds
        self.random_state = random_state

    def fit(self, X: np.ndarray) -> "MeanShift":
        """Find modes and assign every instance to its nearest mode."""
        X = check_array(X)
        rng = np.random.default_rng(self.random_state)
        bandwidth = self.bandwidth or estimate_bandwidth(X, random_state=self.random_state)
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")

        if X.shape[0] > self.max_seeds:
            seeds = X[rng.choice(X.shape[0], size=self.max_seeds, replace=False)]
        else:
            seeds = X.copy()

        modes = []
        for seed in seeds:
            point = seed.copy()
            for _ in range(self.max_iter):
                distances_sq = ((X - point) ** 2).sum(axis=1)
                within = X[distances_sq <= bandwidth**2]
                if len(within) == 0:
                    break
                new_point = within.mean(axis=0)
                shift = np.linalg.norm(new_point - point)
                point = new_point
                if shift < self.tol * bandwidth:
                    break
            modes.append(point)
        modes = np.vstack(modes)

        # Merge modes closer than the bandwidth, biggest basin first.
        counts = np.array([
            int((((X - mode) ** 2).sum(axis=1) <= bandwidth**2).sum()) for mode in modes
        ])
        order = np.argsort(-counts, kind="stable")
        kept = []
        for i in order:
            if all(np.linalg.norm(modes[i] - modes[j]) > bandwidth for j in kept):
                kept.append(i)
        self.cluster_centers_ = modes[kept]
        self.bandwidth_ = bandwidth

        distances = ((X[:, None, :] - self.cluster_centers_[None, :, :]) ** 2).sum(axis=2)
        self.labels_ = distances.argmin(axis=1)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign rows to the nearest discovered mode."""
        if not hasattr(self, "cluster_centers_"):
            raise RuntimeError("MeanShift must be fitted before predict")
        X = check_array(X)
        distances = ((X[:, None, :] - self.cluster_centers_[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Fit to ``X`` and return the training labels."""
        return self.fit(X).labels_

    @property
    def n_clusters_(self) -> int:
        """Number of modes discovered."""
        if not hasattr(self, "cluster_centers_"):
            raise RuntimeError("MeanShift must be fitted first")
        return len(self.cluster_centers_)


def meanshift_labels_consolidated(
    X: np.ndarray,
    n_clusters: int,
    random_state: Optional[int] = None,
) -> np.ndarray:
    """Mean-shift labels consolidated to exactly ``n_clusters`` clusters.

    Mean-shift picks its own mode count; the grouping step needs exactly
    ``v`` clusters, so smaller modes are merged into the nearest of the
    ``v`` largest.
    """
    X = check_array(X)
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    model = MeanShift(random_state=random_state).fit(X)
    labels = model.labels_
    counts = np.bincount(labels, minlength=model.n_clusters_)
    if model.n_clusters_ <= n_clusters:
        return labels
    keep = np.argsort(-counts, kind="stable")[:n_clusters]
    keep_set = set(keep.tolist())
    remap = {int(old): new for new, old in enumerate(keep.tolist())}
    kept_centers = model.cluster_centers_[keep]
    out = np.empty_like(labels)
    for i, label in enumerate(labels):
        if label in keep_set:
            out[i] = remap[int(label)]
        else:
            distances = ((kept_centers - X[i]) ** 2).sum(axis=1)
            out[i] = int(distances.argmin())
    return out
