"""Clustering substrate used by the instance-grouping step."""

from .kmeans import KMeans, balanced_kmeans_labels
from .meanshift import MeanShift, estimate_bandwidth, meanshift_labels_consolidated

__all__ = [
    "KMeans",
    "MeanShift",
    "balanced_kmeans_labels",
    "estimate_bandwidth",
    "meanshift_labels_consolidated",
]
