"""K-means clustering with k-means++ initialisation.

The paper's grouping step (Section III-A) runs k-means on the feature
matrix, then *iteratively re-clusters*: any cluster holding fewer than
``r_group * n / v`` instances is dissolved, its instances set aside, and the
remainder re-clustered until every cluster reaches the threshold.  Both the
plain estimator and the balanced iteration live here.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..learners.base import BaseEstimator, check_array
from ..telemetry.profiling import profiled

__all__ = ["KMeans", "balanced_kmeans_labels"]


def _kmeans_plus_plus(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Choose initial centers with the k-means++ D²-weighting scheme."""
    n_samples = X.shape[0]
    centers = np.empty((n_clusters, X.shape[1]), dtype=float)
    first = rng.integers(n_samples)
    centers[0] = X[first]
    closest_sq = ((X - centers[0]) ** 2).sum(axis=1)
    for i in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with a center; pick randomly.
            idx = rng.integers(n_samples)
        else:
            idx = rng.choice(n_samples, p=closest_sq / total)
        centers[i] = X[idx]
        distance_sq = ((X - centers[i]) ** 2).sum(axis=1)
        np.minimum(closest_sq, distance_sq, out=closest_sq)
    return centers


def _assign(X: np.ndarray, centers: np.ndarray) -> Tuple[np.ndarray, float]:
    """Nearest-center labels and total inertia for the assignment."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 ; the ||x||^2 term is constant
    # per row so it can be dropped for the argmin but not for the inertia.
    cross = X @ centers.T
    center_sq = (centers**2).sum(axis=1)
    distances = center_sq[None, :] - 2.0 * cross
    labels = distances.argmin(axis=1)
    x_sq = (X**2).sum(axis=1)
    inertia = float((x_sq + distances[np.arange(X.shape[0]), labels]).sum())
    return labels, max(inertia, 0.0)


class KMeans(BaseEstimator):
    """Lloyd's algorithm with k-means++ seeding and restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``v``.
    n_init:
        Independent restarts; the run with the lowest inertia wins.
    max_iter:
        Lloyd iterations per restart (the paper notes a default of 10
        iterations keeps the grouping cost negligible).
    tol:
        Relative center-shift tolerance for convergence.
    random_state:
        Seed for reproducible seeding and empty-cluster repair.
    """

    def __init__(
        self,
        n_clusters: int = 3,
        n_init: int = 3,
        max_iter: int = 50,
        tol: float = 1e-4,
        random_state: Optional[int] = None,
    ) -> None:
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    @profiled("kmeans.fit")
    def fit(self, X: np.ndarray) -> "KMeans":
        """Cluster ``X``; sets ``cluster_centers_``, ``labels_``, ``inertia_``."""
        X = check_array(X)
        if self.n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"n_samples={X.shape[0]} must be >= n_clusters={self.n_clusters}"
            )
        rng = np.random.default_rng(self.random_state)
        best_inertia = np.inf
        for _ in range(max(1, self.n_init)):
            centers, labels, inertia, n_iter = self._single_run(X, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                self.cluster_centers_ = centers
                self.labels_ = labels
                self.inertia_ = inertia
                self.n_iter_ = n_iter
        return self

    def _single_run(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, float, int]:
        centers = _kmeans_plus_plus(X, self.n_clusters, rng)
        labels, inertia = _assign(X, centers)
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            new_centers = centers.copy()
            reseeded: list = []
            for j in range(self.n_clusters):
                members = X[labels == j]
                if len(members):
                    new_centers[j] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from
                    # its assigned center to keep exactly n_clusters alive.
                    # argmax is deterministic (first maximum), and points
                    # already claimed by an earlier empty cluster in this
                    # iteration are masked out so several simultaneous
                    # empties never collapse onto the same seed.
                    distances = ((X - centers[labels]) ** 2).sum(axis=1)
                    if reseeded:
                        distances = distances.copy()
                        distances[reseeded] = -1.0
                    seed_index = int(distances.argmax())
                    reseeded.append(seed_index)
                    new_centers[j] = X[seed_index]
            shift = float(((new_centers - centers) ** 2).sum())
            centers = new_centers
            labels, inertia = _assign(X, centers)
            scale = float((X.var(axis=0)).sum()) or 1.0
            if shift <= self.tol * scale:
                break
        return centers, labels, inertia, n_iter

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Index of the nearest learned center for each row of ``X``."""
        if not hasattr(self, "cluster_centers_"):
            raise RuntimeError("KMeans must be fitted before predict")
        X = check_array(X)
        labels, _ = _assign(X, self.cluster_centers_)
        return labels

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Fit to ``X`` and return the training labels."""
        return self.fit(X).labels_


def balanced_kmeans_labels(
    X: np.ndarray,
    n_clusters: int,
    r_group: float = 0.8,
    max_rounds: int = 10,
    random_state: Optional[int] = None,
    guard=None,
) -> np.ndarray:
    """Feature clustering with the paper's small-cluster re-clustering rule.

    Runs k-means; clusters with fewer than ``r_group * n_kept / n_clusters``
    members are dissolved and the remaining instances re-clustered, repeating
    until every cluster passes the threshold (or ``max_rounds`` is hit).
    Instances set aside along the way are finally assigned to their nearest
    surviving center, so every instance receives a label in
    ``0..n_clusters-1``.

    Parameters
    ----------
    X:
        Feature matrix of shape ``(n_samples, n_features)``.
    n_clusters:
        Target number of clusters ``v``.
    r_group:
        Minimum cluster size as a fraction of the even share ``n / v``
        (the paper uses 0.8).
    max_rounds:
        Safety cap on re-clustering rounds.
    random_state:
        Seed passed to every k-means run.
    guard:
        Optional :class:`~repro.guard.events.GuardLog`; records a
        ``grouping.recluster_fallback`` event when the iteration exhausts
        its points (or ``max_rounds``) and falls back to an unbalanced
        clustering.

    Returns
    -------
    numpy.ndarray
        Integer cluster labels for all ``n_samples`` instances.

    Notes
    -----
    Termination is guaranteed on arbitrary data: every continued round
    removes at least one instance from the kept set (a round that would
    remove none breaks immediately), the kept set dropping below
    ``n_clusters`` triggers the unbalanced fallback, and ``max_rounds``
    caps the iteration regardless.
    """
    X = check_array(X)
    n_samples = X.shape[0]
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if not 0.0 <= r_group <= 1.0:
        raise ValueError(f"r_group must be in [0, 1], got {r_group}")
    if n_samples < n_clusters:
        raise ValueError(f"n_samples={n_samples} must be >= n_clusters={n_clusters}")

    keep_mask = np.ones(n_samples, dtype=bool)
    model = None
    fitted_idx = np.arange(n_samples)
    rounds = 0
    for rounds in range(1, max(1, max_rounds) + 1):
        kept_idx = np.flatnonzero(keep_mask)
        if len(kept_idx) < n_clusters:
            # Too few instances survived the threshold; fall back to
            # clustering everything once without the balance rule.
            keep_mask[:] = True
            fitted_idx = np.flatnonzero(keep_mask)
            model = KMeans(n_clusters=n_clusters, random_state=random_state).fit(X[fitted_idx])
            if guard is not None:
                guard.record(
                    "grouping.recluster_fallback",
                    "balance rule exhausted its points; clustered unbalanced",
                    rounds=rounds,
                    n_clusters=n_clusters,
                )
            break
        fitted_idx = kept_idx
        model = KMeans(n_clusters=n_clusters, random_state=random_state).fit(X[fitted_idx])
        counts = np.bincount(model.labels_, minlength=n_clusters)
        threshold = r_group * len(kept_idx) / n_clusters
        small = counts < threshold
        if not small.any():
            break
        dissolve = kept_idx[np.isin(model.labels_, np.flatnonzero(small))]
        if len(dissolve) == 0:
            # Only empty clusters fell below threshold: no point to remove,
            # so a further round would make no progress.
            break
        keep_mask[dissolve] = False
    else:
        if guard is not None:
            guard.record(
                "grouping.recluster_fallback",
                "balance rule hit max_rounds without converging",
                rounds=rounds,
                n_clusters=n_clusters,
            )

    labels = np.empty(n_samples, dtype=int)
    labels[fitted_idx] = model.labels_
    dropped_mask = np.ones(n_samples, dtype=bool)
    dropped_mask[fitted_idx] = False
    dropped_idx = np.flatnonzero(dropped_mask)
    if len(dropped_idx):
        labels[dropped_idx] = model.predict(X[dropped_idx])
    return labels
