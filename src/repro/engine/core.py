"""The trial engine: batching, memoization, retries, durability, degradation.

:class:`TrialEngine` sits between a searcher ("what to evaluate") and a
:class:`~repro.engine.executors.TrialExecutor` ("how it runs").  It

1. assigns every :class:`~repro.engine.protocol.TrialRequest` a stable
   ``trial_id`` and a deterministic per-trial seed
   (:func:`~repro.engine.protocol.derive_seed`), making results
   independent of worker count and completion order;
2. memoizes results in an :class:`~repro.engine.cache.EvaluationCache`
   and deduplicates identical requests that are in flight simultaneously
   (HyperBand rungs routinely contain duplicate survivors);
3. retries failed trials up to ``max_retries`` times — each retry under a
   freshly derived seed, after a seeded exponential-backoff-with-jitter
   delay — then *degrades* a permanently-failing trial to a sentinel
   worst-score outcome instead of aborting the search;
4. treats non-finite evaluation results (NaN/inf score, mean or std) as
   failures, so a numerically-exploding learner cannot poison the
   ``mu + alpha*beta*sigma`` ranking and instead flows through the same
   retry-then-degrade path;
5. optionally write-ahead-logs every executed outcome to a
   :class:`~repro.engine.journal.RunJournal` and, on the next ``bind``,
   replays the journal so an interrupted run resumes from its last
   durable trial and reproduces the uninterrupted result bit for bit.

Two consumption styles are offered: :meth:`TrialEngine.run_batch` for
synchronous rung-at-a-time searchers (SHA / HyperBand / BOHB), returning
outcomes in request order, and :meth:`TrialEngine.submit` /
:meth:`TrialEngine.wait_one` for asynchronous schedulers (ASHA), where
completions are delivered as they land.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from collections import deque

import numpy as np

from ..bandit.base import EvaluationResult
from ..faults.points import active_controller, fault_point
from ..obs import flightrec as _flightrec
from ..telemetry import Telemetry
from ..telemetry.collect import detach_payload
from .cache import EvaluationCache
from .checkpoint import CheckpointStore, detach_checkpoints, detach_plan_cache_delta
from .executors import (
    SerialExecutor,
    TIMEOUT_ERROR_PREFIX,
    TrialExecutor,
    WORKER_HUNG_PREFIX,
)
from .journal import JournalEntry, RunJournal, replay_key
from .protocol import TrialOutcome, TrialRequest, derive_seed

__all__ = [
    "TrialEngine",
    "EngineStats",
    "FAILURE_SCORE",
    "STATS_SCHEMA_VERSION",
    "backoff_delay",
]


def backoff_delay(base: float, attempt: int, maximum: float, seed: int) -> float:
    """Seeded exponential backoff with jitter, shared across subsystems.

    Attempt ``k`` (1-based) sleeps ``min(base * 2**(k-1), maximum)``
    scaled by a deterministic jitter factor in ``[0.5, 1.0]`` drawn from
    ``seed`` — doubling spaces out repeated hits on a struggling
    resource, the jitter de-synchronises concurrent retriers, and the
    seed keeps every delay a pure function of its inputs.  Used by the
    engine's trial retries (seeded per trial attempt) and by
    :class:`~repro.serve.client.ServeClient`'s transport retries.
    ``base <= 0`` disables the delay entirely.
    """
    if base <= 0.0:
        return 0.0
    capped = min(base * 2.0 ** (max(1, attempt) - 1), maximum)
    rng = np.random.default_rng(seed)
    return capped * (0.5 + 0.5 * float(rng.random()))

#: Sentinel score assigned to permanently-failing trials: finite (so JSON
#: round-trips and argsort stay well-behaved) yet below any real metric.
FAILURE_SCORE = -1e30

#: Version of the :meth:`EngineStats.as_dict` payload; bump when counters
#: are added/renamed so BENCH_engine.json stays comparable across PRs.
STATS_SCHEMA_VERSION = 5


@dataclass
class EngineStats:
    """Counters accumulated over the engine's lifetime.

    Attributes
    ----------
    submitted:
        Requests handed to the engine (cache hits included).
    executed:
        Evaluations actually run (every retry attempt counts).
    cache_hits, cache_misses:
        Lookup outcomes, counting in-flight deduplication as hits.
    retries:
        Re-executions triggered by failures.
    failures:
        Trials degraded to the sentinel after exhausting retries.
    timeouts:
        Watchdog interventions (trial deadline exceeded or worker hung);
        each is also counted as the failure/retry it triggers.
    resumed:
        Outcomes replayed from the run journal instead of executed.
    non_finite:
        Evaluations whose result carried a NaN/inf score, mean or std and
        was therefore converted to a failure.
    guard_events:
        Data-integrity guard events carried on settled or replayed
        results (see :mod:`repro.guard.events`); 0 when no guard is
        active.
    warm_hits, warm_misses:
        With a checkpoint store configured: submissions that found a
        lower-budget donor to warm-start from vs. those that ran cold
        (both stay 0 without a store).
    checkpoints_stored:
        Evaluations whose captured fold states entered the store.
    plan_cache_hits, plan_cache_misses:
        Evaluator plan-memoization outcomes (subset + fold construction
        replayed from the LRU cache vs. recomputed), accumulated from the
        per-result deltas each evaluation carries home; both stay 0 when
        the evaluator does not memoize plans.
    megabatch_trials, megabatch_folds:
        Rung-level mega-batching activity: trials whose folds were fused
        across trial boundaries into shared lanes, and the fold count
        that ran fused.  0 under per-trial execution.
    """

    submitted: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    resumed: int = 0
    non_finite: int = 0
    guard_events: int = 0
    warm_hits: int = 0
    warm_misses: int = 0
    checkpoints_stored: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    megabatch_trials: int = 0
    megabatch_folds: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of submissions served without a new evaluation."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot (for CLI summaries and benchmark JSON)."""
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "submitted": self.submitted,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "retries": self.retries,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "resumed": self.resumed,
            "non_finite": self.non_finite,
            "guard_events": self.guard_events,
            "warm_hits": self.warm_hits,
            "warm_misses": self.warm_misses,
            "checkpoints_stored": self.checkpoints_stored,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "megabatch_trials": self.megabatch_trials,
            "megabatch_folds": self.megabatch_folds,
            "hit_rate": self.hit_rate,
        }


def _sentinel_result(budget_fraction: float, failure_score: float) -> EvaluationResult:
    """Worst-score placeholder for a trial whose every attempt raised."""
    return EvaluationResult(
        mean=failure_score,
        std=0.0,
        score=failure_score,
        gamma=100.0 * budget_fraction,
        fold_scores=[],
        n_instances=0,
        cost=0.0,
    )


def _result_is_finite(result: EvaluationResult) -> bool:
    """Whether every ranking-relevant field is a finite number."""
    try:
        return (
            math.isfinite(result.score)
            and math.isfinite(result.mean)
            and math.isfinite(result.std)
        )
    except TypeError:
        return False


class TrialEngine:
    """Caching, retrying, journaling trial dispatcher over a pluggable executor.

    Parameters
    ----------
    executor:
        A :class:`~repro.engine.executors.TrialExecutor`; defaults to a
        fresh :class:`~repro.engine.executors.SerialExecutor`, which keeps
        single-process behaviour while still enabling memoization and
        fault tolerance.
    cache:
        ``True`` (default) builds an unbounded
        :class:`~repro.engine.cache.EvaluationCache`; pass an instance to
        share or bound one, or ``False``/``None`` to disable memoization.
    max_retries:
        Failed-trial re-executions before degradation (0 disables retry).
    failure_score:
        Score of the sentinel outcome for permanently-failing trials.
    root_seed:
        Root of per-trial seed derivation; usually supplied later by the
        searcher through :meth:`bind` (its ``random_state``).
    journal:
        A :class:`~repro.engine.journal.RunJournal` (or just a path) to
        write-ahead-log every executed outcome into.  If the file already
        holds entries from an interrupted run with the same identity, they
        are replayed at :meth:`bind` time and served instantly with
        ``resumed=True`` — the deterministic per-trial seeds guarantee the
        resumed run matches the uninterrupted one bit for bit.
    retry_backoff:
        Base delay in seconds before re-executing a failed trial; retry
        ``k`` sleeps ``min(retry_backoff * 2**(k-1), retry_backoff_max)``
        scaled by a deterministic jitter in ``[0.5, 1.0]`` drawn from the
        trial's derived seed.  ``0`` restores immediate re-execution.
    retry_backoff_max:
        Upper bound on a single backoff delay.
    sleep:
        Injectable sleep function (tests pass a recorder; default
        :func:`time.sleep`).
    telemetry:
        A :class:`~repro.telemetry.Telemetry` object to record into:
        every settled outcome becomes a ``trial`` span (with any
        fold/fit spans the worker collected grafted underneath, guard
        events as annotations, and the journal sequence number when
        journaling), and the engine mirrors its counters into the
        metrics registry plus queue-wait/execute histograms.  ``None``
        (default) records nothing and adds no per-trial work.
    checkpoints:
        Opt-in cross-rung warm starting.  ``True`` builds an in-memory
        :class:`~repro.engine.checkpoint.CheckpointStore`; a path builds
        one spilling to that directory (durable across restarts); an
        instance is used as-is; ``None`` (default) disables warm starts
        entirely.  With a store configured every evaluation captures its
        per-fold trained parameters, and every submission warm-starts
        from the largest lower-budget checkpoint of its configuration.
        Combining a *non-durable* store with a journal raises at
        :meth:`bind`: replayed trials never execute, so only a spill
        directory can repopulate their checkpoints on resume.

    Examples
    --------
    >>> from repro.engine import TrialEngine, SerialExecutor
    >>> engine = TrialEngine(executor=SerialExecutor(), max_retries=2)

    Searchers accept the engine directly::

        searcher = SuccessiveHalving(space, evaluator, random_state=0,
                                     engine=engine)
    """

    def __init__(
        self,
        executor: Optional[TrialExecutor] = None,
        cache: Union[EvaluationCache, bool, None] = True,
        max_retries: int = 1,
        failure_score: float = FAILURE_SCORE,
        root_seed: Optional[int] = None,
        journal: Union[RunJournal, str, Path, None] = None,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 2.0,
        sleep: Optional[Callable[[float], None]] = None,
        telemetry: Optional[Telemetry] = None,
        checkpoints: Union[CheckpointStore, str, Path, bool, None] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.executor = executor if executor is not None else SerialExecutor()
        if cache is True:
            self.cache: Optional[EvaluationCache] = EvaluationCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.max_retries = max_retries
        self.failure_score = failure_score
        self.root_seed = root_seed
        if journal is not None and not isinstance(journal, RunJournal):
            journal = RunJournal(journal)
        self.journal = journal
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self._sleep = sleep if sleep is not None else time.sleep
        self.telemetry = telemetry
        if checkpoints is True:
            self.checkpoints: Optional[CheckpointStore] = CheckpointStore()
        elif checkpoints is False or checkpoints is None:
            self.checkpoints = None
        elif isinstance(checkpoints, CheckpointStore):
            self.checkpoints = checkpoints
        else:
            self.checkpoints = CheckpointStore(spill_dir=checkpoints)
        #: Submit timestamps by trial id (telemetry only): queue-wait
        #: tracking and trial-span start times.
        self._submit_time: Dict[int, float] = {}
        self.stats = EngineStats()
        self._evaluator = None
        self._next_trial_id = 0
        self._journal_open = False
        #: Journal entries keyed by the attempt-0 lookup key, consulted
        #: before the cache so failed (sentinel) outcomes also replay.
        self._replayed: Dict[Tuple, JournalEntry] = {}
        # Async bookkeeping: outcomes ready for pickup, in-flight requests,
        # and followers piggy-backing on an identical in-flight request.
        self._ready: Deque[TrialOutcome] = deque()
        self._in_flight: Dict[int, TrialRequest] = {}
        self._followers: Dict[Tuple, List[TrialRequest]] = {}
        self._primary_key: Dict[int, Tuple] = {}

    # -- lifecycle ------------------------------------------------------------

    def bind(self, evaluator, root_seed: Optional[int] = None, metadata=None) -> None:
        """Attach the evaluator (and optionally the seed root) before use.

        Searchers call this from ``fit()`` with their evaluator,
        ``random_state`` and identity metadata (searcher name, space
        fingerprint); the cache and counters intentionally survive
        re-binding so repeated fits share memoized work when the evaluator
        is unchanged.  When a journal is configured, binding opens it:
        a pre-existing file is identity-checked (root seed plus any
        metadata keys both sides know) and replayed, making the next
        ``fit()`` a resume of the interrupted run.
        """
        self._evaluator = evaluator
        if root_seed is not None:
            self.root_seed = root_seed
        if self.checkpoints is not None and self.journal is not None:
            if not self.checkpoints.durable:
                raise ValueError(
                    "warm-start checkpoints combined with a journal require a "
                    "durable store: journal replay never re-executes trials, so "
                    "only a CheckpointStore spill_dir can repopulate their "
                    "checkpoints on resume"
                )
            metadata = dict(metadata or {})
            metadata["warm"] = True
        if self.journal is not None:
            if not self._journal_open:
                entries = self.journal.open(self.root_seed, metadata=metadata)
                for entry in entries:
                    self._replayed[replay_key(entry, self.root_seed)] = entry
                self._journal_open = True
            else:
                self.journal.check_identity(self.root_seed, metadata)
        self.executor.bind(evaluator)

    @property
    def capacity(self) -> int:
        """Concurrency the underlying executor genuinely provides."""
        return self.executor.capacity

    def shutdown(self) -> None:
        """Release executor resources (workers, queues) and close the journal."""
        if self.telemetry is not None:
            pool_stats = getattr(self.executor, "pool_stats", None)
            if pool_stats is not None:
                # Final pool shape as gauges (idempotent on double shutdown).
                for key, value in pool_stats().items():
                    self.telemetry.registry.set_gauge(f"pool.{key}", value)
        self.executor.shutdown()
        if self.journal is not None:
            self.journal.close()
            self._journal_open = False
        if self.telemetry is not None:
            controller = active_controller()
            if controller is not None:
                # Gauges (not counters) so a double shutdown cannot
                # double-count; keyed per site for the fault catalog.
                for site, hits in sorted(controller.snapshot().items()):
                    self.telemetry.registry.set_gauge(f"faults.hits.{site}", hits)

    def __enter__(self) -> "TrialEngine":
        """Support ``with TrialEngine(...) as engine:``."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Shut down the executor on scope exit."""
        self.shutdown()

    # -- request preparation ---------------------------------------------------

    def _prepare(self, request: TrialRequest) -> TrialRequest:
        """Assign trial id, configuration key and derived seed."""
        if self._evaluator is None:
            raise RuntimeError("TrialEngine used before bind(); attach an evaluator first")
        request.trial_id = self._next_trial_id
        self._next_trial_id += 1
        key = request.resolved_key()
        if request.seed is None:
            request.seed = derive_seed(
                self.root_seed, key, request.budget_fraction, request.attempt
            )
        if self.checkpoints is not None:
            request.capture = True
            source = self.checkpoints.best_source(key, request.budget_fraction)
            if source is not None:
                request.warm_source, request.warm_states = source
                self.stats.warm_hits += 1
                self._inc("engine.warm_hits")
            else:
                self.stats.warm_misses += 1
                self._inc("engine.warm_misses")
        self.stats.submitted += 1
        if self.telemetry is not None:
            request.telemetry = self.telemetry.collection_flags
            self._submit_time[request.trial_id] = self.telemetry.clock()
            self._inc("engine.submitted")
        _flightrec.note(
            "trial.submit",
            trial=request.trial_id,
            bracket=request.bracket,
            rung=request.iteration,
            budget=request.budget_fraction,
        )
        return request

    def _cache_key(self, request: TrialRequest) -> Tuple:
        return EvaluationCache.make_key(
            request.resolved_key(),
            request.budget_fraction,
            request.seed,
            request.warm_source,
        )

    # -- telemetry -------------------------------------------------------------

    def _inc(self, name: str, value: int = 1) -> None:
        """Mirror one counter into the telemetry registry (no-op when off)."""
        if self.telemetry is not None:
            self.telemetry.registry.inc(name, value)

    def _emit_trial(self, outcome: TrialOutcome, payload: Optional[Dict] = None) -> None:
        """Record one settled outcome as a trial span plus merged metrics.

        Called exactly once per outcome, at the moment it is *queued*
        (submit's replay/cache-hit branches and ``_settle`` including
        followers) — never at ``wait_one`` return, where ``run_batch``'s
        spillover re-queue would double-emit.
        """
        request = outcome.request
        _flightrec.note(
            "trial.settle",
            trial=request.trial_id,
            bracket=request.bracket,
            rung=request.iteration,
            failed=outcome.failed,
            cache_hit=outcome.cache_hit,
        )
        telemetry = self.telemetry
        if telemetry is None:
            return
        result = outcome.result
        now = telemetry.clock()
        t0 = self._submit_time.pop(request.trial_id, now)
        duration = now - t0
        attrs = {
            "trial_id": request.trial_id,
            "seed": request.seed,
            "budget_fraction": request.budget_fraction,
            "iteration": request.iteration,
            "bracket": request.bracket,
            "attempts": outcome.attempts,
            "cache_hit": outcome.cache_hit,
            "resumed": outcome.resumed,
            "failed": outcome.failed,
            "score": float(result.score),
            "gamma": float(result.gamma),
            "cost": float(result.cost),
        }
        if outcome.journal_seq is not None:
            attrs["journal_seq"] = outcome.journal_seq
        if outcome.error is not None:
            attrs["error"] = outcome.error
        if request.warm_source is not None:
            attrs["warm_source"] = request.warm_source
        # Rung occupancy: one deterministic counter per (bracket, rung), the
        # dashboard axis Hyperband's structure makes legible.  Emitted per
        # settled outcome, so serial == parallel counts hold.
        bracket = request.bracket if request.bracket is not None else 0
        rung = request.iteration if request.iteration is not None else 0
        telemetry.registry.inc(f"engine.rung_trials.b{bracket}.r{rung}")
        annotations = [
            event.as_dict() if hasattr(event, "as_dict") else dict(event)
            for event in (getattr(result, "guard_events", None) or [])
        ]
        if payload is not None and not outcome.cache_hit and not outcome.resumed:
            timings = payload.get("timings") or {}
            execute = timings.get("trial.execute_s")
            if execute is not None:
                telemetry.registry.observe("engine.execute_s", float(execute[1]))
                telemetry.registry.observe(
                    "engine.queue_wait_s", max(0.0, duration - float(execute[1]))
                )
        telemetry.emit_trial(
            t0, duration, attrs=attrs, annotations=annotations, payload=payload
        )

    # -- async protocol --------------------------------------------------------

    def submit(self, request: TrialRequest) -> TrialRequest:
        """Schedule one request; its outcome arrives via :meth:`wait_one`.

        Journal-replayed and cached outcomes complete immediately (queued
        for the next :meth:`wait_one`), an identical in-flight request is
        joined as a follower rather than re-executed, and everything else
        goes to the executor.  Returns the request with
        ``trial_id``/``seed`` filled in so callers can correlate
        completions.
        """
        request = self._prepare(request)
        cache_key = self._cache_key(request)
        if self._replayed:
            entry = self._replayed.get(cache_key)
            if entry is not None:
                fault_point("engine.replay.pre_serve")
                self.stats.resumed += 1
                self.stats.guard_events += len(getattr(entry.result, "guard_events", []) or [])
                self._inc("engine.resumed")
                outcome = TrialOutcome(
                    request=request,
                    result=entry.result,
                    attempts=entry.attempts,
                    failed=entry.failed,
                    error=entry.error,
                    resumed=True,
                    journal_seq=entry.seq or None,
                )
                self._ready.append(outcome)
                self._emit_trial(outcome)
                return request
        if self.cache is not None:
            cached = self.cache.get(*cache_key)
            if cached is not None:
                self.stats.cache_hits += 1
                self._inc("engine.cache_hits")
                self._inc(f"engine.cache_hits.rung.{request.iteration}")
                outcome = TrialOutcome(
                    request=request, result=cached, attempts=0, cache_hit=True
                )
                self._ready.append(outcome)
                self._emit_trial(outcome)
                return request
            if cache_key in self._followers:
                self.stats.cache_hits += 1
                self._inc("engine.cache_hits")
                self._inc(f"engine.cache_hits.rung.{request.iteration}")
                self._followers[cache_key].append(request)
                return request
            self.stats.cache_misses += 1
            self._inc("engine.cache_misses")
            self._followers[cache_key] = []
            self._primary_key[request.trial_id] = cache_key
        fault_point("engine.submit.pre_dispatch")
        self._in_flight[request.trial_id] = request
        self.executor.submit(request)
        self.stats.executed += 1
        self._inc("engine.executed")
        return request

    def pending(self) -> int:
        """Outcomes still owed to the caller (in flight, followers, ready)."""
        followers = sum(len(f) for f in self._followers.values())
        return len(self._in_flight) + followers + len(self._ready)

    def wait_one(self) -> TrialOutcome:
        """Block until the next outcome (replay, cache hit, success, degradation).

        Failed executions — including watchdog timeouts and non-finite
        results — are retried transparently after a backoff delay; the
        caller only ever sees terminal outcomes.
        """
        while True:
            if self._ready:
                return self._ready.popleft()
            if not self._in_flight:
                raise RuntimeError("wait_one called with no pending trials")
            trial_id, ok, result, error = self.executor.wait_one()
            request = self._in_flight.pop(trial_id)
            payload = detach_payload(result) if ok else None
            if ok:
                delta = detach_plan_cache_delta(result)
                if delta is not None:
                    self.stats.plan_cache_hits += delta[0]
                    self.stats.plan_cache_misses += delta[1]
                    if delta[0]:
                        self._inc("engine.plan_cache_hits", delta[0])
                    if delta[1]:
                        self._inc("engine.plan_cache_misses", delta[1])
                if payload is not None:
                    mega = payload.pop("megabatch", None)
                    if mega:
                        # Worker-side fusion: the first fused trial carries
                        # the rung's mega-batch summary on its sidecar.
                        self._note_megabatch(request, mega)
            if ok and not _result_is_finite(result):
                self.stats.non_finite += 1
                self._inc("engine.non_finite")
                if payload is not None and self.telemetry is not None:
                    # The result is discarded, but what happened inside it
                    # (chaos injections, profiled timings) still counts.
                    self.telemetry.registry.merge_payload(payload)
                    payload = None
                ok, result, error = False, None, (
                    f"NonFiniteScore: evaluation returned a non-finite result "
                    f"(score={result.score!r}, mean={result.mean!r}, std={result.std!r})"
                )
            if ok:
                self._settle(request, result, failed=False, error=None, payload=payload)
                continue
            if error and error.startswith((TIMEOUT_ERROR_PREFIX, WORKER_HUNG_PREFIX)):
                self.stats.timeouts += 1
                self._inc("engine.timeouts")
            if request.attempt < self.max_retries:
                self.stats.retries += 1
                self._inc("engine.retries")
                retry = TrialRequest(
                    config=request.config,
                    budget_fraction=request.budget_fraction,
                    iteration=request.iteration,
                    bracket=request.bracket,
                    trial_id=request.trial_id,
                    key=request.key,
                    attempt=request.attempt + 1,
                    telemetry=request.telemetry,
                    warm_source=request.warm_source,
                    warm_states=request.warm_states,
                    capture=request.capture,
                )
                retry.seed = derive_seed(
                    self.root_seed, retry.resolved_key(), retry.budget_fraction, retry.attempt
                )
                delay = self._retry_delay(retry)
                if delay > 0.0:
                    self._sleep(delay)
                self._in_flight[retry.trial_id] = retry
                self.executor.submit(retry)
                self.stats.executed += 1
                self._inc("engine.executed")
                continue
            self.stats.failures += 1
            self._inc("engine.failures")
            sentinel = _sentinel_result(request.budget_fraction, self.failure_score)
            self._settle(request, sentinel, failed=True, error=error)

    def _retry_delay(self, retry: TrialRequest) -> float:
        """Seeded exponential backoff with jitter for one retry attempt.

        Doubling per attempt spaces out repeated hits on a struggling
        resource; the jitter factor in ``[0.5, 1.0]`` de-synchronises
        concurrent retries.  The jitter is drawn from the retry's own
        derived seed, so delays — like everything else in the engine —
        are a pure function of ``(root_seed, config, budget, attempt)``.
        """
        return backoff_delay(
            self.retry_backoff, retry.attempt, self.retry_backoff_max, retry.seed
        )

    def _settle(
        self,
        request: TrialRequest,
        result: EvaluationResult,
        failed: bool,
        error: Optional[str],
        payload: Optional[Dict] = None,
    ) -> None:
        """Journal then queue the terminal outcome, release followers, cache it.

        The journal append happens *before* the outcome enters the ready
        queue — the write-ahead ordering that guarantees any result a
        searcher has observed is recoverable after a crash.  The
        telemetry payload (already detached from the result, so neither
        the cache nor the journal ever sees it) is recorded here, once
        per executed trial; followers get their own cache-hit spans.
        """
        attempts = request.attempt + 1
        fold_states = detach_checkpoints(result)
        if fold_states is not None and self.checkpoints is not None and not failed:
            self.checkpoints.put(request.resolved_key(), request.budget_fraction, fold_states)
            self.stats.checkpoints_stored += 1
            self._inc("engine.checkpoints_stored")
        guard_count = len(getattr(result, "guard_events", []) or [])
        self.stats.guard_events += guard_count
        if guard_count:
            self._inc("engine.guard_events", guard_count)
        outcome = TrialOutcome(
            request=request, result=result, attempts=attempts, failed=failed, error=error
        )
        if self.journal is not None and self._journal_open:
            fault_point("engine.settle.pre_journal")
            outcome.journal_seq = self.journal.append(outcome)
        fault_point("engine.settle.pre_commit")
        self._ready.append(outcome)
        self._emit_trial(outcome, payload=payload)
        cache_key = self._primary_key.pop(request.trial_id, None)
        if cache_key is None:
            return
        for follower in self._followers.pop(cache_key, []):
            follower_outcome = TrialOutcome(
                request=follower, result=result, attempts=0, cache_hit=True,
                failed=failed, error=error,
            )
            self._ready.append(follower_outcome)
            self._emit_trial(follower_outcome)
        if not failed and self.cache is not None:
            fault_point("engine.cache.pre_insert")
            self.cache.put(*cache_key[:3], result, *cache_key[3:])

    def _note_megabatch(self, request: TrialRequest, mega: Dict) -> None:
        """Account one rung-level mega-batch (serial flush or worker fusion).

        ``mega`` is a :meth:`~repro.learners.batched.MegaBatchStats.as_dict`
        payload.  Stats counters accumulate over the run; the occupancy
        gauge is keyed per (bracket, rung) — lanes filled over lane
        capacity for the rung that just fused — which is what the
        ``/metrics`` exporter surfaces as ``repro_job_rung_occupancy``.
        """
        trials = int(mega.get("trials", 0))
        fused_folds = int(mega.get("fused_folds", 0))
        self.stats.megabatch_trials += trials
        self.stats.megabatch_folds += fused_folds
        if trials:
            self._inc("engine.megabatch_trials", trials)
        if fused_folds:
            self._inc("engine.megabatch_folds", fused_folds)
        if self.telemetry is not None:
            bracket = request.bracket if request.bracket is not None else 0
            rung = request.iteration if request.iteration is not None else 0
            self.telemetry.registry.set_gauge(
                f"engine.rung_occupancy.b{bracket}.r{rung}",
                float(mega.get("occupancy", 0.0)),
            )

    # -- batch protocol --------------------------------------------------------

    def run_batch(self, requests: Sequence[TrialRequest]) -> List[TrialOutcome]:
        """Evaluate a batch and return outcomes **in request order**.

        This is the synchronous entry point used by rung-at-a-time
        searchers: submission order fixes both trial ids and the returned
        order, so a fixed-seed search is bitwise identical under serial
        and parallel executors — and, via journal replay, across an
        interruption.

        After the whole rung is submitted the executor gets one
        :meth:`~repro.engine.executors.TrialExecutor.flush_batch` call —
        its chance to fuse the queued trials into a rung-level mega-batch
        (shape-matched fold lanes stacked across trials).  Fusion changes
        scheduling only: results, cache keys and journal records are
        bitwise-identical to per-trial execution.
        """
        submitted = [self.submit(request) for request in requests]
        if submitted:
            t0 = self.telemetry.clock() if self.telemetry is not None else 0.0
            mega = self.executor.flush_batch()
            if mega is not None and getattr(mega, "trials", 0):
                attrs = mega.as_dict()
                head = submitted[0]
                self._note_megabatch(head, attrs)
                if self.telemetry is not None:
                    # rung > megabatch: one span for the fused fit, nested
                    # under the searcher's open rung span.
                    self.telemetry.tracer.emit(
                        "megabatch",
                        "megabatch",
                        t0,
                        self.telemetry.clock() - t0,
                        attrs={
                            **attrs,
                            "bracket": head.bracket,
                            "rung": head.iteration,
                        },
                    )
        outcomes: Dict[int, TrialOutcome] = {}
        wanted = {request.trial_id for request in submitted}
        spillover: List[TrialOutcome] = []
        while len(outcomes) < len(submitted):
            outcome = self.wait_one()
            if outcome.request.trial_id in wanted:
                outcomes[outcome.request.trial_id] = outcome
            else:  # outcome of an earlier async submission; keep it claimable
                spillover.append(outcome)
        self._ready.extendleft(reversed(spillover))
        return [outcomes[request.trial_id] for request in submitted]
