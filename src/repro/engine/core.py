"""The trial engine: batching, memoization, retries and fault degradation.

:class:`TrialEngine` sits between a searcher ("what to evaluate") and a
:class:`~repro.engine.executors.TrialExecutor` ("how it runs").  It

1. assigns every :class:`~repro.engine.protocol.TrialRequest` a stable
   ``trial_id`` and a deterministic per-trial seed
   (:func:`~repro.engine.protocol.derive_seed`), making results
   independent of worker count and completion order;
2. memoizes results in an :class:`~repro.engine.cache.EvaluationCache`
   and deduplicates identical requests that are in flight simultaneously
   (HyperBand rungs routinely contain duplicate survivors);
3. retries failed trials up to ``max_retries`` times, each retry under a
   freshly derived seed, then *degrades* a permanently-failing trial to a
   sentinel worst-score outcome instead of aborting the search.

Two consumption styles are offered: :meth:`TrialEngine.run_batch` for
synchronous rung-at-a-time searchers (SHA / HyperBand / BOHB), returning
outcomes in request order, and :meth:`TrialEngine.submit` /
:meth:`TrialEngine.wait_one` for asynchronous schedulers (ASHA), where
completions are delivered as they land.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from collections import deque

from ..bandit.base import EvaluationResult
from .cache import EvaluationCache
from .executors import SerialExecutor, TrialExecutor
from .protocol import TrialOutcome, TrialRequest, derive_seed

__all__ = ["TrialEngine", "EngineStats", "FAILURE_SCORE"]

#: Sentinel score assigned to permanently-failing trials: finite (so JSON
#: round-trips and argsort stay well-behaved) yet below any real metric.
FAILURE_SCORE = -1e30


@dataclass
class EngineStats:
    """Counters accumulated over the engine's lifetime.

    Attributes
    ----------
    submitted:
        Requests handed to the engine (cache hits included).
    executed:
        Evaluations actually run (every retry attempt counts).
    cache_hits, cache_misses:
        Lookup outcomes, counting in-flight deduplication as hits.
    retries:
        Re-executions triggered by failures.
    failures:
        Trials degraded to the sentinel after exhausting retries.
    """

    submitted: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    failures: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of submissions served without a new evaluation."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot (for CLI summaries and benchmark JSON)."""
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "retries": self.retries,
            "failures": self.failures,
            "hit_rate": self.hit_rate,
        }


def _sentinel_result(budget_fraction: float, failure_score: float) -> EvaluationResult:
    """Worst-score placeholder for a trial whose every attempt raised."""
    return EvaluationResult(
        mean=failure_score,
        std=0.0,
        score=failure_score,
        gamma=100.0 * budget_fraction,
        fold_scores=[],
        n_instances=0,
        cost=0.0,
    )


class TrialEngine:
    """Caching, retrying trial dispatcher over a pluggable executor.

    Parameters
    ----------
    executor:
        A :class:`~repro.engine.executors.TrialExecutor`; defaults to a
        fresh :class:`~repro.engine.executors.SerialExecutor`, which keeps
        single-process behaviour while still enabling memoization and
        fault tolerance.
    cache:
        ``True`` (default) builds an unbounded
        :class:`~repro.engine.cache.EvaluationCache`; pass an instance to
        share or bound one, or ``False``/``None`` to disable memoization.
    max_retries:
        Failed-trial re-executions before degradation (0 disables retry).
    failure_score:
        Score of the sentinel outcome for permanently-failing trials.
    root_seed:
        Root of per-trial seed derivation; usually supplied later by the
        searcher through :meth:`bind` (its ``random_state``).

    Examples
    --------
    >>> from repro.engine import TrialEngine, SerialExecutor
    >>> engine = TrialEngine(executor=SerialExecutor(), max_retries=2)

    Searchers accept the engine directly::

        searcher = SuccessiveHalving(space, evaluator, random_state=0,
                                     engine=engine)
    """

    def __init__(
        self,
        executor: Optional[TrialExecutor] = None,
        cache: Union[EvaluationCache, bool, None] = True,
        max_retries: int = 1,
        failure_score: float = FAILURE_SCORE,
        root_seed: Optional[int] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.executor = executor if executor is not None else SerialExecutor()
        if cache is True:
            self.cache: Optional[EvaluationCache] = EvaluationCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.max_retries = max_retries
        self.failure_score = failure_score
        self.root_seed = root_seed
        self.stats = EngineStats()
        self._evaluator = None
        self._next_trial_id = 0
        # Async bookkeeping: outcomes ready for pickup, in-flight requests,
        # and followers piggy-backing on an identical in-flight request.
        self._ready: Deque[TrialOutcome] = deque()
        self._in_flight: Dict[int, TrialRequest] = {}
        self._followers: Dict[Tuple, List[TrialRequest]] = {}
        self._primary_key: Dict[int, Tuple] = {}

    # -- lifecycle ------------------------------------------------------------

    def bind(self, evaluator, root_seed: Optional[int] = None) -> None:
        """Attach the evaluator (and optionally the seed root) before use.

        Searchers call this from ``fit()`` with their evaluator and
        ``random_state``; the cache and counters intentionally survive
        re-binding so repeated fits share memoized work when the evaluator
        is unchanged.
        """
        self._evaluator = evaluator
        if root_seed is not None:
            self.root_seed = root_seed
        self.executor.bind(evaluator)

    @property
    def capacity(self) -> int:
        """Concurrency the underlying executor genuinely provides."""
        return self.executor.capacity

    def shutdown(self) -> None:
        """Release executor resources (workers, queues)."""
        self.executor.shutdown()

    def __enter__(self) -> "TrialEngine":
        """Support ``with TrialEngine(...) as engine:``."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Shut down the executor on scope exit."""
        self.shutdown()

    # -- request preparation ---------------------------------------------------

    def _prepare(self, request: TrialRequest) -> TrialRequest:
        """Assign trial id, configuration key and derived seed."""
        if self._evaluator is None:
            raise RuntimeError("TrialEngine used before bind(); attach an evaluator first")
        request.trial_id = self._next_trial_id
        self._next_trial_id += 1
        key = request.resolved_key()
        if request.seed is None:
            request.seed = derive_seed(
                self.root_seed, key, request.budget_fraction, request.attempt
            )
        self.stats.submitted += 1
        return request

    def _cache_key(self, request: TrialRequest) -> Tuple:
        return EvaluationCache.make_key(
            request.resolved_key(), request.budget_fraction, request.seed
        )

    # -- async protocol --------------------------------------------------------

    def submit(self, request: TrialRequest) -> TrialRequest:
        """Schedule one request; its outcome arrives via :meth:`wait_one`.

        Cache hits complete immediately (queued for the next
        :meth:`wait_one`), an identical in-flight request is joined as a
        follower rather than re-executed, and everything else goes to the
        executor.  Returns the request with ``trial_id``/``seed`` filled
        in so callers can correlate completions.
        """
        request = self._prepare(request)
        cache_key = self._cache_key(request)
        if self.cache is not None:
            cached = self.cache.get(*cache_key)
            if cached is not None:
                self.stats.cache_hits += 1
                self._ready.append(
                    TrialOutcome(request=request, result=cached, attempts=0, cache_hit=True)
                )
                return request
            if cache_key in self._followers:
                self.stats.cache_hits += 1
                self._followers[cache_key].append(request)
                return request
            self.stats.cache_misses += 1
            self._followers[cache_key] = []
            self._primary_key[request.trial_id] = cache_key
        self._in_flight[request.trial_id] = request
        self.executor.submit(request)
        self.stats.executed += 1
        return request

    def pending(self) -> int:
        """Outcomes still owed to the caller (in flight, followers, ready)."""
        followers = sum(len(f) for f in self._followers.values())
        return len(self._in_flight) + followers + len(self._ready)

    def wait_one(self) -> TrialOutcome:
        """Block until the next outcome (cache hit, success, or degradation).

        Failed executions are retried transparently — the caller only ever
        sees terminal outcomes.
        """
        while True:
            if self._ready:
                return self._ready.popleft()
            if not self._in_flight:
                raise RuntimeError("wait_one called with no pending trials")
            trial_id, ok, result, error = self.executor.wait_one()
            request = self._in_flight.pop(trial_id)
            if ok:
                self._settle(request, result, failed=False, error=None)
                continue
            if request.attempt < self.max_retries:
                self.stats.retries += 1
                retry = TrialRequest(
                    config=request.config,
                    budget_fraction=request.budget_fraction,
                    iteration=request.iteration,
                    bracket=request.bracket,
                    trial_id=request.trial_id,
                    key=request.key,
                    attempt=request.attempt + 1,
                )
                retry.seed = derive_seed(
                    self.root_seed, retry.resolved_key(), retry.budget_fraction, retry.attempt
                )
                self._in_flight[retry.trial_id] = retry
                self.executor.submit(retry)
                self.stats.executed += 1
                continue
            self.stats.failures += 1
            sentinel = _sentinel_result(request.budget_fraction, self.failure_score)
            self._settle(request, sentinel, failed=True, error=error)

    def _settle(
        self,
        request: TrialRequest,
        result: EvaluationResult,
        failed: bool,
        error: Optional[str],
    ) -> None:
        """Queue the terminal outcome, release followers, update the cache."""
        attempts = request.attempt + 1
        self._ready.append(
            TrialOutcome(request=request, result=result, attempts=attempts, failed=failed, error=error)
        )
        cache_key = self._primary_key.pop(request.trial_id, None)
        if cache_key is None:
            return
        for follower in self._followers.pop(cache_key, []):
            self._ready.append(
                TrialOutcome(request=follower, result=result, attempts=0, cache_hit=True,
                             failed=failed, error=error)
            )
        if not failed and self.cache is not None:
            self.cache.put(*cache_key, result)

    # -- batch protocol --------------------------------------------------------

    def run_batch(self, requests: Sequence[TrialRequest]) -> List[TrialOutcome]:
        """Evaluate a batch and return outcomes **in request order**.

        This is the synchronous entry point used by rung-at-a-time
        searchers: submission order fixes both trial ids and the returned
        order, so a fixed-seed search is bitwise identical under serial
        and parallel executors.
        """
        submitted = [self.submit(request) for request in requests]
        outcomes: Dict[int, TrialOutcome] = {}
        wanted = {request.trial_id for request in submitted}
        spillover: List[TrialOutcome] = []
        while len(outcomes) < len(submitted):
            outcome = self.wait_one()
            if outcome.request.trial_id in wanted:
                outcomes[outcome.request.trial_id] = outcome
            else:  # outcome of an earlier async submission; keep it claimable
                spillover.append(outcome)
        self._ready.extendleft(reversed(spillover))
        return [outcomes[request.trial_id] for request in submitted]
