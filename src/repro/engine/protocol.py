"""Trial protocol: stable identities and deterministic per-trial seeds.

The engine decouples *what to evaluate* (a :class:`TrialRequest`) from *how
it runs* (an executor).  For the decoupling to be safe the randomness of an
evaluation must not depend on which worker runs it or in which order trials
complete.  :func:`derive_seed` therefore derives every trial's seed purely
from stable facts — the search's root seed, the configuration's
order-independent :func:`~repro.space.config_key`, the budget fraction and
the retry attempt — via a keyed BLAKE2b digest.  Two consequences:

- a batch produces bitwise-identical scores under any executor and any
  worker count (the acceptance property of the engine);
- a repeated ``(config, budget)`` pair derives the *same* seed, which is
  what makes memoization in :class:`~repro.engine.cache.EvaluationCache`
  semantically transparent rather than an approximation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..bandit.base import EvaluationResult
from ..space import config_key

__all__ = ["TrialRequest", "TrialOutcome", "derive_seed"]

#: Digest size (bytes) of the derived seed; 8 bytes -> uint64 seeds.
_SEED_BYTES = 8


def derive_seed(
    root_seed: Optional[int],
    key: Tuple,
    budget_fraction: float,
    attempt: int = 0,
) -> int:
    """Deterministic uint64 seed for one (config, budget, attempt) trial.

    Parameters
    ----------
    root_seed:
        The search's ``random_state`` (``None`` is treated as 0 so that an
        unseeded search is still internally self-consistent).
    key:
        Stable configuration identity from
        :func:`~repro.space.config_key`; because the key is sorted by
        parameter name, dict insertion order cannot leak into the seed.
    budget_fraction:
        Budget the trial runs at, rounded to 12 decimals before hashing so
        float noise below reproducibility relevance cannot split seeds.
    attempt:
        Retry counter; each retry of a failed trial draws a fresh stream.

    Returns
    -------
    int
        A seed in ``[0, 2**64)`` suitable for ``np.random.default_rng``.

    Notes
    -----
    The digest is computed over ``repr`` of the tuple, not ``hash``:
    Python's string hashing is salted per process, and seeds must agree
    across worker processes and across runs.
    """
    payload = repr(
        (int(root_seed) if root_seed is not None else 0, key, round(float(budget_fraction), 12), int(attempt))
    ).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=_SEED_BYTES).digest()
    return int.from_bytes(digest, "little")


@dataclass
class TrialRequest:
    """A unit of work submitted to the engine: evaluate ``config`` at a budget.

    Attributes
    ----------
    config:
        The hyperparameter configuration to evaluate.
    budget_fraction:
        Fraction of the instance budget, in ``(0, 1]``.
    iteration, bracket:
        Bookkeeping copied onto the resulting
        :class:`~repro.bandit.base.Trial` (rung index / bracket id).
    trial_id:
        Stable submission index assigned by the engine; outcomes are
        matched back to requests through it, so batch results can be
        returned in request order regardless of completion order.
    seed:
        Derived per-trial seed (filled in by the engine via
        :func:`derive_seed`; pre-setting it overrides derivation).
    key:
        Cached :func:`~repro.space.config_key` of ``config``.
    attempt:
        Retry attempt this request represents (0 = first try).
    telemetry:
        Collection-flag bitmask (see :mod:`repro.telemetry.collect`)
        shipped to the executor so worker processes know what to record;
        0 (the default) keeps evaluation entirely uninstrumented.
    warm_source:
        Budget fraction of the lower-rung checkpoint this trial warm-starts
        from (filled by the engine from its
        :class:`~repro.engine.checkpoint.CheckpointStore`); ``None`` for a
        cold trial.  Part of the trial's identity: cache and journal keys
        gain it as a fourth element, so warm and cold evaluations of the
        same ``(config, budget)`` never alias.
    warm_states:
        The per-fold :class:`~repro.engine.checkpoint.FoldCheckpoint` list
        backing ``warm_source``; shipped to the executor, never journaled
        (the spill directory is the durable copy).
    capture:
        Whether the evaluation should capture per-fold checkpoints for the
        store (set on every trial once a store is configured).
    """

    config: Dict[str, Any]
    budget_fraction: float
    iteration: int = 0
    bracket: int = 0
    trial_id: int = -1
    seed: Optional[int] = None
    key: Optional[Tuple] = None
    attempt: int = 0
    telemetry: int = 0
    warm_source: Optional[float] = None
    warm_states: Optional[list] = None
    capture: bool = False

    def resolved_key(self) -> Tuple:
        """The configuration identity, computing and caching it if needed."""
        if self.key is None:
            self.key = config_key(self.config)
        return self.key


@dataclass
class TrialOutcome:
    """What the engine hands back for one :class:`TrialRequest`.

    Attributes
    ----------
    request:
        The originating request (with ``trial_id`` and ``seed`` filled in).
    result:
        The evaluation result; for a permanently-failed trial this is the
        engine's sentinel worst-score result, so searchers never see an
        exception and simply rank the trial last.
    attempts:
        Number of executions performed (1 = first try succeeded,
        0 = served from cache).
    cache_hit:
        Whether the result came from the evaluation cache (including
        deduplication against an identical in-flight request).
    failed:
        True when every attempt raised and ``result`` is the sentinel.
    error:
        ``"ExcType: message"`` of the last failure, if any attempt failed.
    resumed:
        True when the outcome was replayed from a
        :class:`~repro.engine.journal.RunJournal` written by an earlier
        (possibly interrupted) run instead of being executed.
    journal_seq:
        1-based sequence number of this outcome's journal record, when
        the engine journals (or replayed) it; ``None`` otherwise.  Trace
        spans carry it so a trace links back to the write-ahead log.
    """

    request: TrialRequest
    result: EvaluationResult
    attempts: int = 1
    cache_hit: bool = False
    failed: bool = False
    error: Optional[str] = None
    resumed: bool = False
    journal_seq: Optional[int] = None
