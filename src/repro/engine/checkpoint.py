"""Cross-rung warm-start checkpoints: reuse training work across budgets.

HyperBand-family searchers re-train every promoted survivor from scratch
at the next rung's larger subset, throwing away the lower-rung fit.
Iterative-deepening variants (Brandt et al., 2023) show that resuming
from previous work preserves the bandit guarantees; this module supplies
the storage half of that idea:

- :class:`FoldCheckpoint` — the per-fold trained parameters of one
  evaluation (one entry per CV fold);
- :class:`CheckpointStore` — an LRU-bounded in-memory map, keyed by
  ``(configuration key, budget fraction)``, with an optional write-through
  **spill directory** that makes checkpoints durable (required when warm
  starting is combined with journal resume — replayed trials never
  execute, so only the spill can repopulate their checkpoints);
- :func:`attach_checkpoints` / :func:`detach_checkpoints` — transport of
  captured fold states on an
  :class:`~repro.bandit.base.EvaluationResult`, mirroring the telemetry
  payload pattern: the states ride the instance ``__dict__`` (surviving
  the worker pipe's pickle) and the engine strips them in ``_settle``
  before the result reaches the cache, the journal or the searcher.

Warm-start selection (:meth:`CheckpointStore.best_source`) is the
*largest stored budget strictly below* the requested one — deterministic
for rung-barrier searchers because the store's content at submit time is
a pure function of the completed rungs, which is what keeps the
serial == parallel bitwise invariant intact among warm-start runs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..faults.points import fault_point
from .durability import fsync_dir

__all__ = [
    "CHECKPOINT_ATTR",
    "PLAN_CACHE_ATTR",
    "CheckpointStore",
    "FoldCheckpoint",
    "attach_checkpoints",
    "detach_checkpoints",
    "attach_plan_cache_delta",
    "detach_plan_cache_delta",
]

#: Attribute name carrying captured fold states on an EvaluationResult.
CHECKPOINT_ATTR = "_checkpoints"

#: Attribute name carrying one evaluation's plan-memo ``(hits, misses)``
#: delta on an EvaluationResult.  Same sidecar pattern as checkpoints and
#: telemetry payloads: rides ``__dict__`` over the worker pipe, and the
#: engine strips it in ``_settle`` (into EngineStats counters) before the
#: result reaches the cache or the journal.
PLAN_CACHE_ATTR = "_plan_cache_delta"

#: Spill-file suffix.
_SPILL_SUFFIX = ".ckpt"


def _normalise_budget(budget_fraction: float) -> float:
    """Round the budget the same way seed derivation and the cache do."""
    return round(float(budget_fraction), 12)


def _config_digest(config_key: Tuple) -> str:
    """Stable filename-safe digest of a configuration key."""
    return hashlib.blake2b(repr(config_key).encode("utf-8"), digest_size=10).hexdigest()


class FoldCheckpoint:
    """Trained parameters of one fold's model, ready to warm-start a refit.

    Attributes
    ----------
    layer_units:
        The network's layer widths (input, hidden..., output); recorded
        for inspection — warm-start compatibility is decided purely from
        the coefficient shapes (see
        :func:`repro.learners.mlp.warm_start_matches`).
    coefs, intercepts:
        Per-layer weight matrices and bias vectors (final values, i.e.
        after any early-stopping best-parameter restore).
    """

    __slots__ = ("layer_units", "coefs", "intercepts")

    def __init__(
        self,
        coefs: Sequence[np.ndarray],
        intercepts: Sequence[np.ndarray],
        layer_units: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self.coefs = [np.asarray(c, dtype=float) for c in coefs]
        self.intercepts = [np.asarray(b, dtype=float).ravel() for b in intercepts]
        if layer_units is None and self.coefs:
            layer_units = (self.coefs[0].shape[0], *(c.shape[1] for c in self.coefs))
        self.layer_units = tuple(layer_units) if layer_units is not None else ()

    @classmethod
    def from_model(cls, model) -> Optional["FoldCheckpoint"]:
        """Capture a fitted MLP's parameters; ``None`` for non-MLP models."""
        coefs = getattr(model, "coefs_", None)
        intercepts = getattr(model, "intercepts_", None)
        if coefs is None or intercepts is None:
            return None
        return cls(coefs, intercepts)

    def __getstate__(self):
        return (self.layer_units, self.coefs, self.intercepts)

    def __setstate__(self, state):
        self.layer_units, self.coefs, self.intercepts = state


def attach_checkpoints(result, fold_states: List[Optional[FoldCheckpoint]]) -> None:
    """Hang captured fold states onto a result for transport to the engine."""
    result.__dict__[CHECKPOINT_ATTR] = fold_states


def detach_checkpoints(result) -> Optional[List[Optional[FoldCheckpoint]]]:
    """Remove and return the fold states a worker attached, if any."""
    if result is None:
        return None
    return result.__dict__.pop(CHECKPOINT_ATTR, None)


def attach_plan_cache_delta(result, hits: int, misses: int) -> None:
    """Hang one evaluation's plan-memo hit/miss delta onto its result."""
    if hits or misses:
        result.__dict__[PLAN_CACHE_ATTR] = (int(hits), int(misses))


def detach_plan_cache_delta(result) -> Optional[Tuple[int, int]]:
    """Remove and return the plan-memo delta, if the evaluator attached one."""
    if result is None or not hasattr(result, "__dict__"):
        return None
    return result.__dict__.pop(PLAN_CACHE_ATTR, None)


class CheckpointStore:
    """LRU-bounded map ``(config_key, budget) -> per-fold checkpoints``.

    Parameters
    ----------
    max_entries:
        In-memory capacity; the least-recently-used entry is dropped once
        exceeded.  With a spill directory an evicted entry remains
        loadable from disk; without one it is gone (a later
        :meth:`best_source` then falls back to the next-best budget —
        still deterministic, but a smaller reuse win; size the store to
        the rung width to avoid this).
    spill_dir:
        Optional directory receiving a write-through pickle of every
        stored entry.  Existing spill files are indexed at construction,
        so a fresh store over an old directory resumes with every
        previously persisted checkpoint available — the property journal
        resume relies on.

    Notes
    -----
    The store is thread-safe (all operations hold an internal
    :class:`threading.RLock`), and spill files are written atomically —
    pickled to a temporary file in the same directory, then
    :func:`os.replace`'d into place — so two engines concurrently storing
    the same ``(digest, budget)`` key can never leave a torn checkpoint on
    disk: readers see either the old complete file or the new complete
    file, and the last writer wins.  Both properties are load-bearing for
    the multi-tenant service daemon (:mod:`repro.serve`), which shares one
    store across concurrently-running jobs.
    """

    def __init__(
        self,
        max_entries: int = 256,
        spill_dir: Union[str, Path, None] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple, List[Optional[FoldCheckpoint]]]" = OrderedDict()
        #: ``config digest -> {budget: spill path}`` for everything on disk.
        self._spill_index: Dict[str, Dict[float, Path]] = {}
        #: ``config digest -> sorted budgets`` across memory and spill.
        self._budgets: Dict[str, List[float]] = {}
        self.stores = 0
        self.spill_loads = 0
        #: Spill writes that failed (disk full, permissions); the entry
        #: stays served from memory and the store keeps working.
        self.spill_errors = 0
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            self._scan_spill()

    @property
    def durable(self) -> bool:
        """Whether entries survive process restarts (spill directory set)."""
        return self.spill_dir is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- internals ------------------------------------------------------------

    def _scan_spill(self) -> None:
        for path in sorted(self.spill_dir.glob(f"*{_SPILL_SUFFIX}")):
            parts = path.stem.rsplit("_", 1)
            if len(parts) != 2:
                continue
            digest, raw_budget = parts
            try:
                budget = float(raw_budget)
            except ValueError:
                continue
            self._spill_index.setdefault(digest, {})[budget] = path
            self._register_budget(digest, budget)

    def _register_budget(self, digest: str, budget: float) -> None:
        budgets = self._budgets.setdefault(digest, [])
        if budget not in budgets:
            budgets.append(budget)
            budgets.sort()

    def _spill_path(self, digest: str, budget: float) -> Path:
        return self.spill_dir / f"{digest}_{budget:.12f}{_SPILL_SUFFIX}"

    def _spill_write(self, path: Path, fold_states: List[Optional[FoldCheckpoint]]) -> None:
        """Atomically persist one entry: pickle to a temp file, then rename.

        ``os.replace`` is atomic on POSIX within one filesystem, so a
        concurrent writer of the same key — or a crash mid-write — can
        never expose a torn pickle at the final path.  The parent
        directory is fsync'd after the rename so the publish also
        survives power-loss reordering.
        """
        fault_point("checkpoint.spill.pre_write", path=str(path))
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.spill_dir), prefix=path.stem + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(fold_states, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                fault_point("checkpoint.spill.pre_replace", handle=handle)
            os.replace(tmp_name, str(path))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        fault_point("checkpoint.spill.post_replace", path=str(path))
        fsync_dir(self.spill_dir)
        fault_point("checkpoint.spill.post_dirsync", path=str(path))

    # -- protocol --------------------------------------------------------------

    def put(
        self,
        config_key: Tuple,
        budget_fraction: float,
        fold_states: List[Optional[FoldCheckpoint]],
    ) -> None:
        """Store one evaluation's per-fold states (write-through to spill)."""
        if not fold_states or all(state is None for state in fold_states):
            return
        fault_point("checkpoint.put.pre")
        budget = _normalise_budget(budget_fraction)
        digest = _config_digest(config_key)
        key = (digest, budget)
        with self._lock:
            self._entries[key] = fold_states
            self._entries.move_to_end(key)
            self._register_budget(digest, budget)
            self.stores += 1
            if self.spill_dir is not None:
                path = self._spill_path(digest, budget)
                try:
                    self._spill_write(path, fold_states)
                except OSError:
                    # Disk full (ENOSPC) or similar: degrade to memory-only
                    # for this entry rather than failing the trial.  The
                    # spill index is left untouched so readers never see a
                    # phantom path; durability resumes on the next put once
                    # the disk recovers.
                    self.spill_errors += 1
                else:
                    self._spill_index.setdefault(digest, {})[budget] = path
            if len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                if self.spill_dir is None:
                    # Without a spill the budget is genuinely gone; keep the
                    # budget index honest so best_source never dangles.
                    evicted_digest, evicted_budget = evicted_key
                    budgets = self._budgets.get(evicted_digest, [])
                    if evicted_budget in budgets:
                        budgets.remove(evicted_budget)

    def get(
        self, config_key: Tuple, budget_fraction: float
    ) -> Optional[List[Optional[FoldCheckpoint]]]:
        """The stored states for an exact ``(config, budget)``, or ``None``."""
        budget = _normalise_budget(budget_fraction)
        digest = _config_digest(config_key)
        key = (digest, budget)
        with self._lock:
            states = self._entries.get(key)
            if states is not None:
                self._entries.move_to_end(key)
                return states
            path = self._spill_index.get(digest, {}).get(budget)
            if path is None:
                return None
            fault_point("checkpoint.load.pre", path=str(path))
            try:
                with path.open("rb") as handle:
                    states = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError):
                return None
            self.spill_loads += 1
            self._entries[key] = states
            self._entries.move_to_end(key)
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return states

    def best_source(
        self, config_key: Tuple, budget_fraction: float
    ) -> Optional[Tuple[float, List[Optional[FoldCheckpoint]]]]:
        """Donor for a warm start: largest stored budget strictly below.

        Returns ``(source_budget, fold_states)`` or ``None`` when the
        configuration has no lower-budget checkpoint.
        """
        budget = _normalise_budget(budget_fraction)
        digest = _config_digest(config_key)
        with self._lock:
            for candidate in reversed(list(self._budgets.get(digest, []))):
                if candidate < budget:
                    states = self.get(config_key, candidate)
                    if states is not None:
                        return candidate, states
            return None

    def clear(self) -> None:
        """Drop the in-memory entries (spill files are left untouched)."""
        with self._lock:
            self._entries.clear()
            if self.spill_dir is None:
                self._budgets.clear()
            else:
                self._budgets = {
                    digest: sorted(index) for digest, index in self._spill_index.items()
                }
