"""Execution engine: parallel, memoized, fault-tolerant, crash-safe dispatch.

This package decouples *what a searcher wants evaluated* from *how the
evaluations run*.  Searchers describe work as
:class:`~repro.engine.protocol.TrialRequest` objects; a
:class:`~repro.engine.core.TrialEngine` derives a deterministic per-trial
seed for each, memoizes repeated ``(config, budget)`` pairs, retries
worker failures with seeded backoff, and dispatches the rest through a
pluggable executor — :class:`~repro.engine.executors.SerialExecutor`
in-process, or the watchdog-supervised
:class:`~repro.engine.executors.ParallelExecutor` across worker processes
(per-trial deadlines, hung-worker detection, death recovery).

Durability comes from :class:`~repro.engine.journal.RunJournal`, a
write-ahead log of every executed outcome: an interrupted run resumes
from its last durable trial and — because seeds are derived rather than
drawn from a shared stream — reproduces the uninterrupted result bit for
bit.  :class:`~repro.engine.chaos.ChaosExecutor` injects failures, hangs,
worker deaths and corrupted scores so those guarantees stay exercised::

    from repro.engine import TrialEngine, ParallelExecutor

    engine = TrialEngine(executor=ParallelExecutor(n_workers=4, trial_timeout=60),
                         journal="run.wal")
    searcher = HyperBand(space, evaluator, random_state=0, engine=engine)
    result = searcher.fit(configurations=pool)   # == serial run, faster
    print(engine.stats.hit_rate)                 # memoization at work
"""

from .arena import (
    ArenaError,
    ArenaIntegrityError,
    ArenaRef,
    SharedArena,
    arena_available,
    list_segments,
    reap_stale,
)
from .cache import EvaluationCache
from .chaos import ChaosError, ChaosExecutor, ChaosPolicy, DataCorruption
from .checkpoint import CheckpointStore, FoldCheckpoint
from .core import FAILURE_SCORE, STATS_SCHEMA_VERSION, EngineStats, TrialEngine, backoff_delay
from .executors import (
    ParallelExecutor,
    SerialExecutor,
    TrialExecutor,
    current_worker_connection,
    current_worker_id,
)
from .journal import JOURNAL_VERSION, JournalEntry, JournalError, RunJournal, space_fingerprint
from .protocol import TrialOutcome, TrialRequest, derive_seed

__all__ = [
    "ArenaError",
    "ArenaIntegrityError",
    "ArenaRef",
    "SharedArena",
    "arena_available",
    "list_segments",
    "reap_stale",
    "ChaosError",
    "ChaosExecutor",
    "ChaosPolicy",
    "CheckpointStore",
    "DataCorruption",
    "EvaluationCache",
    "EngineStats",
    "FAILURE_SCORE",
    "FoldCheckpoint",
    "JOURNAL_VERSION",
    "JournalEntry",
    "JournalError",
    "ParallelExecutor",
    "RunJournal",
    "STATS_SCHEMA_VERSION",
    "SerialExecutor",
    "TrialEngine",
    "TrialExecutor",
    "TrialOutcome",
    "TrialRequest",
    "backoff_delay",
    "current_worker_connection",
    "current_worker_id",
    "derive_seed",
    "space_fingerprint",
]
