"""Execution engine: parallel, memoized, fault-tolerant trial dispatch.

This package decouples *what a searcher wants evaluated* from *how the
evaluations run*.  Searchers describe work as
:class:`~repro.engine.protocol.TrialRequest` objects; a
:class:`~repro.engine.core.TrialEngine` derives a deterministic per-trial
seed for each, memoizes repeated ``(config, budget)`` pairs, retries
worker failures, and dispatches the rest through a pluggable executor —
:class:`~repro.engine.executors.SerialExecutor` in-process, or
:class:`~repro.engine.executors.ParallelExecutor` across a process pool.

Because seeds are derived rather than drawn from a shared stream, a
fixed-seed search returns bitwise-identical trials, scores and winner
under any executor and any worker count::

    from repro.engine import TrialEngine, ParallelExecutor

    engine = TrialEngine(executor=ParallelExecutor(n_workers=4))
    searcher = HyperBand(space, evaluator, random_state=0, engine=engine)
    result = searcher.fit(configurations=pool)   # == serial run, faster
    print(engine.stats.hit_rate)                 # memoization at work
"""

from .cache import EvaluationCache
from .core import FAILURE_SCORE, EngineStats, TrialEngine
from .executors import ParallelExecutor, SerialExecutor, TrialExecutor
from .protocol import TrialOutcome, TrialRequest, derive_seed

__all__ = [
    "EvaluationCache",
    "EngineStats",
    "FAILURE_SCORE",
    "ParallelExecutor",
    "SerialExecutor",
    "TrialEngine",
    "TrialExecutor",
    "TrialOutcome",
    "TrialRequest",
    "derive_seed",
]
