"""Pluggable trial executors: serial reference and watchdog-supervised pool.

Both executors implement the same tiny submit/wait protocol consumed by
:class:`~repro.engine.core.TrialEngine`:

- :meth:`TrialExecutor.submit` schedules a prepared
  :class:`~repro.engine.protocol.TrialRequest`;
- :meth:`TrialExecutor.wait_one` blocks for the next completion and
  returns ``(trial_id, ok, result, error)`` — exceptions raised by the
  evaluator are *returned*, never propagated, so the engine's retry policy
  sees worker failures as data.

:class:`SerialExecutor` runs requests inline in FIFO order and is the
bitwise reference implementation.  :class:`ParallelExecutor` owns a pool
of long-lived worker processes it supervises directly (rather than hiding
them behind ``concurrent.futures``), which is what makes a real watchdog
possible:

- every worker gets the evaluator **once** at spawn (copy-on-write under
  the ``fork`` start method), so a task's payload is just
  ``(trial_id, config, budget_fraction, seed, telemetry_flags)``;
- each worker runs a heartbeat thread, letting the parent distinguish
  *alive-but-slow* from *wedged in native code*;
- a per-trial deadline (``trial_timeout``) bounds how long any single
  evaluation may run; on expiry the worker is killed, **respawned**, and
  the trial surfaced as a failed completion for the engine to retry with
  backoff or degrade — a hung trial can never stall ``wait_one`` forever;
- a worker that dies mid-trial (segfault, ``os._exit``, OOM-kill) is
  detected the same way: respawn plus a failed completion, never a
  deadlock.

Because seeds are derived per trial, none of this affects scores — only
scheduling latency.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Deque, Dict, Optional, Tuple

import numpy as np

from ..bandit.base import EvaluationResult
from ..telemetry.collect import attach_payload, trial_collection

__all__ = [
    "TrialExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "TIMEOUT_ERROR_PREFIX",
    "WORKER_DIED_PREFIX",
    "WORKER_HUNG_PREFIX",
]

#: Error-string prefixes the watchdog uses; the engine keys its
#: ``timeouts`` counter off them, and tests match on them.
TIMEOUT_ERROR_PREFIX = "TrialTimeout"
WORKER_DIED_PREFIX = "WorkerDied"
WORKER_HUNG_PREFIX = "WorkerHung"


def _safe_evaluate(
    evaluator,
    trial_id: int,
    config: Dict[str, Any],
    budget_fraction: float,
    seed: int,
    telemetry: int = 0,
    warm_states=None,
    capture: bool = False,
) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
    """Run one evaluation under a fresh seeded generator, capturing errors.

    A non-zero ``telemetry`` bitmask installs a per-trial collector for
    the evaluation (fold/fit spans, counters, profiled timings) and
    attaches its payload to the result, which carries it back over the
    executor pipe; the engine detaches it before the result is cached or
    journaled.  ``warm_states``/``capture`` forward the engine's warm-start
    protocol to the evaluator; both are passed only when set, so evaluators
    predating the warm-start keywords keep working cold.
    """
    try:
        rng = np.random.default_rng(seed)
        kwargs = {}
        if warm_states is not None:
            kwargs["warm_states"] = warm_states
        if capture:
            kwargs["capture_checkpoints"] = True
        if telemetry:
            t0 = time.monotonic()
            with trial_collection(telemetry) as collector:
                result = evaluator.evaluate(config, budget_fraction, rng, **kwargs)
                collector.observe("trial.execute_s", time.monotonic() - t0)
            attach_payload(result, collector)
        else:
            result = evaluator.evaluate(config, budget_fraction, rng, **kwargs)
        return trial_id, True, result, None
    except Exception as exc:  # noqa: BLE001 — fault tolerance is the point
        return trial_id, False, None, f"{type(exc).__name__}: {exc}"


def _watchdog_worker_main(evaluator, conn, worker_id: int, heartbeat_interval: float) -> None:
    """Worker process loop: recv task, evaluate, send result, heartbeat.

    The duplex pipe carries tasks parent→worker and ``("hb",)`` /
    ``("done", token, payload)`` messages worker→parent.  When
    ``heartbeat_interval`` is positive a background thread emits
    heartbeats even while an evaluation is running, so the parent can tell
    a long evaluation (heartbeats flowing) from a process wedged in
    non-Python code (heartbeats stopped); the parent passes 0 when it runs
    no hang detection, silencing the chatter entirely.  ``None`` is the
    shutdown sentinel; a closed pipe (parent gone) also ends the loop.
    """
    stop = threading.Event()
    send_lock = threading.Lock()

    def _beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                with send_lock:
                    conn.send(("hb",))
            except (BrokenPipeError, OSError):
                return

    if heartbeat_interval > 0:
        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
    try:
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            token, trial_id, config, budget_fraction, seed, telemetry, warm, capture = task
            payload = _safe_evaluate(
                evaluator, trial_id, config, budget_fraction, seed, telemetry, warm, capture
            )
            try:
                with send_lock:
                    conn.send(("done", token, payload))
            except (BrokenPipeError, OSError):
                break
    finally:
        stop.set()


class TrialExecutor:
    """Abstract submit/wait executor bound to one evaluator.

    Attributes
    ----------
    capacity:
        Number of trials the executor can genuinely run concurrently
        (1 for serial execution, the worker count for a process pool).
    """

    capacity: int = 1

    def bind(self, evaluator) -> None:
        """Attach the evaluator used for every subsequent submission."""
        raise NotImplementedError

    def submit(self, request) -> None:
        """Schedule a prepared request (``trial_id`` and ``seed`` set)."""
        raise NotImplementedError

    def wait_one(self) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
        """Block until one submission finishes; never raises evaluator errors."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of submitted-but-uncollected trials."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any resources (idempotent)."""

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "TrialExecutor":
        """Support ``with executor: ...`` for deterministic teardown."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Shut the executor down on scope exit."""
        self.shutdown()


class SerialExecutor(TrialExecutor):
    """In-process FIFO executor — the default and the bitwise reference.

    Submissions are queued and only executed inside :meth:`wait_one`, so
    the submit/wait protocol behaves observably like a one-worker pool
    with deterministic completion order.  Running in the caller's process
    it cannot preempt an evaluation, so watchdog timeouts do not apply —
    use :class:`ParallelExecutor` (any worker count, even 1) when hung or
    crashing evaluations must be survivable.
    """

    capacity = 1

    def __init__(self) -> None:
        self._evaluator = None
        self._queue: deque = deque()

    def bind(self, evaluator) -> None:
        """Attach the evaluator requests will run against."""
        self._evaluator = evaluator

    def submit(self, request) -> None:
        """Queue the request for lazy FIFO execution."""
        if self._evaluator is None:
            raise RuntimeError("SerialExecutor.submit called before bind()")
        self._queue.append(request)

    def wait_one(self) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
        """Execute and return the oldest queued request."""
        if not self._queue:
            raise RuntimeError("wait_one called with no pending trials")
        request = self._queue.popleft()
        return _safe_evaluate(
            self._evaluator,
            request.trial_id,
            request.config,
            request.budget_fraction,
            request.seed,
            getattr(request, "telemetry", 0),
            getattr(request, "warm_states", None),
            getattr(request, "capture", False),
        )

    def pending(self) -> int:
        """Number of queued, not-yet-executed requests."""
        return len(self._queue)


class _WorkerHandle:
    """Parent-side view of one worker process: pipe, queued tasks, deadlines."""

    __slots__ = ("worker_id", "process", "conn", "tasks", "deadline", "last_heartbeat")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        #: ``(token, trial_id)`` of dispatched-but-unfinished trials, in
        #: dispatch order.  Watchdog-supervised pools keep at most one
        #: entry; pipelined pools queue several so the worker never idles
        #: waiting for a parent round-trip between trials.
        self.tasks: Deque[Tuple[int, int]] = deque()
        self.deadline: Optional[float] = None
        self.last_heartbeat = time.monotonic()

    @property
    def idle(self) -> bool:
        return not self.tasks


class ParallelExecutor(TrialExecutor):
    """Watchdog-supervised process pool shipping the evaluator to workers once.

    Parameters
    ----------
    n_workers:
        Worker process count; defaults to ``os.cpu_count()`` (min 1).
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` where
        available (Linux), which inherits the evaluator's data arrays
        copy-on-write and makes even closure-carrying evaluators usable;
        falls back to the platform default elsewhere, in which case the
        evaluator must be picklable (see
        ``SubsetCVEvaluator.__getstate__``).
    trial_timeout:
        Per-trial wall-clock deadline in seconds, measured from dispatch
        to a worker.  On expiry the worker is killed and respawned and the
        trial surfaces as a failed completion with a
        ``"TrialTimeout: ..."`` error, which the engine retries (with
        backoff) or degrades.  ``None`` (default) disables the deadline.
    heartbeat_interval:
        Seconds between worker heartbeats.
    heartbeat_timeout:
        Declare a worker *hung* when no heartbeat has arrived for this
        many seconds while it runs a trial (the worker is killed and
        respawned like a timeout).  ``None`` (default) disables the check;
        heartbeats are then only used to keep liveness metadata fresh.
    poll_interval:
        Parent-side supervision granularity: how often ``wait_one`` wakes
        to run watchdog checks while no completion is ready.

    Notes
    -----
    A crashed worker (``os._exit``, segfault, OOM-kill) never sinks the
    search: its in-flight trials are surfaced as failed completions — which
    the engine retries or degrades — and a replacement worker is spawned
    immediately, keeping capacity constant.  Supervision happens entirely
    in the parent over per-worker duplex pipes; there is no shared queue a
    dying worker could leave locked.

    When **no watchdog is configured** (``trial_timeout`` and
    ``heartbeat_timeout`` both ``None``) the pool runs *pipelined*: tasks
    are queued onto the least-loaded worker immediately instead of waiting
    for an idle one, workers skip the heartbeat thread entirely, and
    ``wait_one`` blocks on the pipes instead of polling.  This removes the
    per-trial parent round-trip and the heartbeat chatter that used to
    make small-trial workloads *slower* at two workers than one; with a
    watchdog the stricter dispatch-one-collect-one cycle is kept so
    per-trial deadlines stay meaningful.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        trial_timeout: Optional[float] = None,
        heartbeat_interval: float = 0.2,
        heartbeat_timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ) -> None:
        import os

        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if trial_timeout is not None and trial_timeout <= 0:
            raise ValueError(f"trial_timeout must be > 0 or None, got {trial_timeout}")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(f"heartbeat_timeout must be > 0 or None, got {heartbeat_timeout}")
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be > 0, got {heartbeat_interval}")
        self.n_workers = n_workers or max(1, os.cpu_count() or 1)
        self.capacity = self.n_workers
        self.trial_timeout = trial_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        #: No per-trial deadline and no hang detection -> workers can be
        #: kept fed with queued tasks and pipes waited on without polling.
        self._pipelined = trial_timeout is None and heartbeat_timeout is None
        if start_method is None and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        self._context = multiprocessing.get_context(start_method)
        self._evaluator = None
        self._workers: Dict[int, _WorkerHandle] = {}
        self._backlog: Deque[Tuple] = deque()
        self._completed: Deque[Tuple[int, bool, Optional[EvaluationResult], Optional[str]]] = deque()
        self._next_token = 0
        self._next_worker_id = 0
        #: Lifetime counts of watchdog interventions (observability).
        self.respawns = 0
        self.timeouts = 0

    # -- lifecycle -------------------------------------------------------------

    def bind(self, evaluator) -> None:
        """Attach the evaluator; a new one forces a pool restart."""
        if evaluator is not self._evaluator:
            self.shutdown()
        self._evaluator = evaluator

    def _spawn_worker(self) -> _WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_watchdog_worker_main,
            args=(
                self._evaluator,
                child_conn,
                worker_id,
                # The heartbeat thread only serves hang detection; without
                # it, silence the per-worker chatter entirely.
                self.heartbeat_interval if self.heartbeat_timeout is not None else 0.0,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(worker_id, process, parent_conn)
        self._workers[worker_id] = handle
        return handle

    def _ensure_workers(self) -> None:
        if self._evaluator is None:
            raise RuntimeError("ParallelExecutor.submit called before bind()")
        while len(self._workers) < self.n_workers:
            self._spawn_worker()

    # -- submission ------------------------------------------------------------

    def submit(self, request) -> None:
        """Dispatch to a worker, or queue until one frees up.

        Pipelined pools (no watchdog) queue onto the least-loaded live
        worker immediately — a rung's whole batch lands on the worker
        pipes up front, so workers run trial after trial back-to-back.
        Watchdog-supervised pools dispatch one task per worker at a time
        to keep per-trial deadlines meaningful.
        """
        self._ensure_workers()
        token = self._next_token
        self._next_token += 1
        task = (
            token,
            request.trial_id,
            request.config,
            request.budget_fraction,
            request.seed,
            getattr(request, "telemetry", 0),
            getattr(request, "warm_states", None),
            getattr(request, "capture", False),
        )
        if self._pipelined:
            alive = [h for h in self._workers.values() if h.process.is_alive()]
            if alive:
                self._dispatch(min(alive, key=lambda h: len(h.tasks)), task)
                return
        else:
            for handle in self._workers.values():
                if handle.idle and handle.process.is_alive():
                    self._dispatch(handle, task)
                    return
        self._backlog.append(task)

    def _dispatch(self, handle: _WorkerHandle, task: Tuple) -> None:
        now = time.monotonic()
        handle.tasks.append((task[0], task[1]))
        if self.trial_timeout and len(handle.tasks) == 1:
            handle.deadline = now + self.trial_timeout
        handle.last_heartbeat = now
        try:
            handle.conn.send(task)
        except (BrokenPipeError, OSError):
            self._retire(handle, f"{WORKER_DIED_PREFIX}: worker pipe closed before dispatch")

    def _feed_backlog(self, handle: _WorkerHandle) -> None:
        if self._pipelined:
            while self._backlog:
                self._dispatch(handle, self._backlog.popleft())
        elif self._backlog:
            self._dispatch(handle, self._backlog.popleft())

    # -- completion ------------------------------------------------------------

    def pending(self) -> int:
        """In-flight trials plus queued tasks plus uncollected completions."""
        in_flight = sum(len(handle.tasks) for handle in self._workers.values())
        return in_flight + len(self._backlog) + len(self._completed)

    def wait_one(self) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
        """Next completion in any order; watchdog failures count as completions."""
        while True:
            if self._completed:
                return self._completed.popleft()
            if not self.pending():
                raise RuntimeError("wait_one called with no pending trials")
            # Without a watchdog there is nothing to periodically check:
            # block on the pipes (a dead worker's EOF wakes the wait too).
            self._pump(None if self._pipelined else self.poll_interval)
            if self._completed:
                return self._completed.popleft()
            self._run_watchdog()

    def _pump(self, timeout: float) -> None:
        """Drain every readable worker pipe, waiting up to ``timeout``."""
        conns = {handle.conn: handle for handle in self._workers.values()}
        if not conns:
            return
        try:
            ready = mp_connection.wait(list(conns), timeout)
        except OSError:
            ready = []
        for conn in ready:
            handle = conns[conn]
            self._drain(handle)

    def _drain(self, handle: _WorkerHandle) -> None:
        """Consume every queued message from one worker's pipe."""
        while True:
            try:
                if not handle.conn.poll():
                    return
                message = handle.conn.recv()
            except (EOFError, OSError):
                self._retire(handle, f"{WORKER_DIED_PREFIX}: worker process exited unexpectedly")
                return
            kind = message[0]
            if kind == "hb":
                handle.last_heartbeat = time.monotonic()
            elif kind == "done":
                _, token, payload = message
                if handle.tasks and handle.tasks[0][0] == token:
                    handle.tasks.popleft()
                    handle.deadline = (
                        time.monotonic() + self.trial_timeout
                        if self.trial_timeout and handle.tasks
                        else None
                    )
                    self._completed.append(payload)
                    self._feed_backlog(handle)
                # A mismatched token is a completion the watchdog already
                # resolved as a failure; drop it — the retry owns the trial.

    def _run_watchdog(self) -> None:
        """Kill/respawn dead, overdue or silent workers; surface their trials."""
        now = time.monotonic()
        for handle in list(self._workers.values()):
            if not handle.process.is_alive():
                # Salvage any result that raced the death before declaring it.
                self._drain(handle)
                if handle.worker_id in self._workers:
                    self._retire(
                        handle, f"{WORKER_DIED_PREFIX}: worker process exited unexpectedly"
                    )
                continue
            if handle.idle:
                continue
            if handle.conn.poll():
                continue  # a completion is waiting; let the next pump collect it
            if handle.deadline is not None and now > handle.deadline:
                self.timeouts += 1
                self._retire(
                    handle,
                    f"{TIMEOUT_ERROR_PREFIX}: trial exceeded trial_timeout="
                    f"{self.trial_timeout}s",
                )
            elif (
                self.heartbeat_timeout is not None
                and now - handle.last_heartbeat > self.heartbeat_timeout
            ):
                self.timeouts += 1
                self._retire(
                    handle,
                    f"{WORKER_HUNG_PREFIX}: no heartbeat for over "
                    f"{self.heartbeat_timeout}s",
                )

    def _retire(self, handle: _WorkerHandle, error: str) -> None:
        """Kill one worker, fail its in-flight trial, and respawn a replacement.

        Idempotent per handle: a worker can be reported dead through
        several paths (pipe EOF while draining, ``is_alive`` in the
        watchdog) and must only be failed/respawned once.
        """
        if self._workers.pop(handle.worker_id, None) is None:
            return
        tasks = list(handle.tasks)
        handle.tasks.clear()
        handle.deadline = None
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        for _, trial_id in tasks:
            self._completed.append((trial_id, False, None, error))
        if self._evaluator is not None:
            replacement = self._spawn_worker()
            self.respawns += 1
            self._feed_backlog(replacement)

    # -- teardown --------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker (graceful, then forceful) and forget all state."""
        for handle in self._workers.values():
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 1.0
        for handle in self._workers.values():
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._workers.clear()
        self._backlog.clear()
        self._completed.clear()
