"""Pluggable trial executors: serial reference and process-pool parallel.

Both executors implement the same tiny submit/wait protocol consumed by
:class:`~repro.engine.core.TrialEngine`:

- :meth:`TrialExecutor.submit` schedules a prepared
  :class:`~repro.engine.protocol.TrialRequest`;
- :meth:`TrialExecutor.wait_one` blocks for the next completion and
  returns ``(trial_id, ok, result, error)`` — exceptions raised by the
  evaluator are *returned*, never propagated, so the engine's retry policy
  sees worker failures as data.

:class:`SerialExecutor` runs requests inline in FIFO order and is the
bitwise reference implementation.  :class:`ParallelExecutor` fans trials
out to a ``concurrent.futures.ProcessPoolExecutor``; the evaluator (with
its full ``X``/``y`` arrays) is shipped to each worker **once** through the
pool initializer instead of being pickled into every task, so a task's
payload is just ``(trial_id, config, budget_fraction, seed)``.  Because
seeds are derived per trial, completion order cannot affect scores — only
scheduling latency.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from collections import deque
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..bandit.base import EvaluationResult

__all__ = ["TrialExecutor", "SerialExecutor", "ParallelExecutor"]

#: Per-worker evaluator installed by the pool initializer.
_WORKER_EVALUATOR = None


def _worker_init(evaluator) -> None:
    """Pool initializer: bind the evaluator once per worker process."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _safe_evaluate(
    evaluator, trial_id: int, config: Dict[str, Any], budget_fraction: float, seed: int
) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
    """Run one evaluation under a fresh seeded generator, capturing errors."""
    try:
        rng = np.random.default_rng(seed)
        result = evaluator.evaluate(config, budget_fraction, rng)
        return trial_id, True, result, None
    except Exception as exc:  # noqa: BLE001 — fault tolerance is the point
        return trial_id, False, None, f"{type(exc).__name__}: {exc}"


def _worker_run(
    trial_id: int, config: Dict[str, Any], budget_fraction: float, seed: int
) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
    """Task function executed inside a pool worker."""
    return _safe_evaluate(_WORKER_EVALUATOR, trial_id, config, budget_fraction, seed)


class TrialExecutor:
    """Abstract submit/wait executor bound to one evaluator.

    Attributes
    ----------
    capacity:
        Number of trials the executor can genuinely run concurrently
        (1 for serial execution, the worker count for a process pool).
    """

    capacity: int = 1

    def bind(self, evaluator) -> None:
        """Attach the evaluator used for every subsequent submission."""
        raise NotImplementedError

    def submit(self, request) -> None:
        """Schedule a prepared request (``trial_id`` and ``seed`` set)."""
        raise NotImplementedError

    def wait_one(self) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
        """Block until one submission finishes; never raises evaluator errors."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of submitted-but-uncollected trials."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any resources (idempotent)."""

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "TrialExecutor":
        """Support ``with executor: ...`` for deterministic teardown."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Shut the executor down on scope exit."""
        self.shutdown()


class SerialExecutor(TrialExecutor):
    """In-process FIFO executor — the default and the bitwise reference.

    Submissions are queued and only executed inside :meth:`wait_one`, so
    the submit/wait protocol behaves observably like a one-worker pool
    with deterministic completion order.
    """

    capacity = 1

    def __init__(self) -> None:
        self._evaluator = None
        self._queue: deque = deque()

    def bind(self, evaluator) -> None:
        """Attach the evaluator requests will run against."""
        self._evaluator = evaluator

    def submit(self, request) -> None:
        """Queue the request for lazy FIFO execution."""
        if self._evaluator is None:
            raise RuntimeError("SerialExecutor.submit called before bind()")
        self._queue.append(request)

    def wait_one(self) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
        """Execute and return the oldest queued request."""
        if not self._queue:
            raise RuntimeError("wait_one called with no pending trials")
        request = self._queue.popleft()
        return _safe_evaluate(
            self._evaluator, request.trial_id, request.config, request.budget_fraction, request.seed
        )

    def pending(self) -> int:
        """Number of queued, not-yet-executed requests."""
        return len(self._queue)


class ParallelExecutor(TrialExecutor):
    """Process-pool executor shipping the evaluator to workers once.

    Parameters
    ----------
    n_workers:
        Worker process count; defaults to ``os.cpu_count()`` (min 1).
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` where
        available (Linux), which inherits the evaluator's data arrays
        copy-on-write and makes even closure-carrying evaluators usable;
        falls back to the platform default elsewhere, in which case the
        evaluator must be picklable (see
        ``SubsetCVEvaluator.__getstate__``).

    Notes
    -----
    A crashed worker (``BrokenExecutor``) does not sink the search: every
    in-flight trial is surfaced as a failed completion — which the engine
    retries or degrades — and a fresh pool is spun up lazily for the next
    submission.
    """

    def __init__(self, n_workers: Optional[int] = None, start_method: Optional[str] = None) -> None:
        import os

        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers or max(1, os.cpu_count() or 1)
        self.capacity = self.n_workers
        if start_method is None and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        self._context = multiprocessing.get_context(start_method)
        self._evaluator = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: Dict[Any, int] = {}
        self._broken: deque = deque()

    def bind(self, evaluator) -> None:
        """Attach the evaluator; a new one forces a pool restart."""
        if evaluator is not self._evaluator:
            self.shutdown()
        self._evaluator = evaluator

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._evaluator is None:
                raise RuntimeError("ParallelExecutor.submit called before bind()")
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=self._context,
                initializer=_worker_init,
                initargs=(self._evaluator,),
            )
        return self._pool

    def submit(self, request) -> None:
        """Ship ``(trial_id, config, budget, seed)`` to the pool."""
        pool = self._ensure_pool()
        try:
            future = pool.submit(
                _worker_run, request.trial_id, request.config, request.budget_fraction, request.seed
            )
        except BrokenExecutor:
            self._mark_broken()
            self._broken.append((request.trial_id, "BrokenExecutor: pool died before submission"))
            return
        self._futures[future] = request.trial_id

    def wait_one(self) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
        """Return the next completion (any order), surfacing pool crashes."""
        if self._broken:
            trial_id, message = self._broken.popleft()
            return trial_id, False, None, message
        if not self._futures:
            raise RuntimeError("wait_one called with no pending trials")
        done, _ = wait(list(self._futures), return_when=FIRST_COMPLETED)
        future = next(iter(done))
        trial_id = self._futures.pop(future)
        try:
            return future.result()
        except BrokenExecutor as exc:
            self._mark_broken()
            return trial_id, False, None, f"{type(exc).__name__}: worker process died"

    def _mark_broken(self) -> None:
        """Fail over: convert every in-flight future into an error completion."""
        for future, trial_id in self._futures.items():
            future.cancel()
            self._broken.append((trial_id, "BrokenExecutor: worker process died"))
        self._futures.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def pending(self) -> int:
        """In-flight futures plus crash-surfaced completions awaiting pickup."""
        return len(self._futures) + len(self._broken)

    def shutdown(self) -> None:
        """Terminate the pool and forget in-flight work."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._futures.clear()
        self._broken.clear()
