"""Pluggable trial executors: serial reference and watchdog-supervised pool.

Both executors implement the same tiny submit/wait protocol consumed by
:class:`~repro.engine.core.TrialEngine`:

- :meth:`TrialExecutor.submit` schedules a prepared
  :class:`~repro.engine.protocol.TrialRequest`;
- :meth:`TrialExecutor.wait_one` blocks for the next completion and
  returns ``(trial_id, ok, result, error)`` — exceptions raised by the
  evaluator are *returned*, never propagated, so the engine's retry policy
  sees worker failures as data.

:class:`SerialExecutor` runs requests inline in FIFO order and is the
bitwise reference implementation.  :class:`ParallelExecutor` owns a pool
of long-lived worker processes it supervises directly (rather than hiding
them behind ``concurrent.futures``), which is what makes a real watchdog
possible:

- every worker gets the evaluator **once** at spawn (copy-on-write under
  the ``fork`` start method), so a task's payload is just
  ``(trial_id, config, budget_fraction, seed, telemetry_flags)``;
- each worker runs a heartbeat thread, letting the parent distinguish
  *alive-but-slow* from *wedged in native code*;
- a per-trial deadline (``trial_timeout``) bounds how long any single
  evaluation may run; on expiry the worker is killed, **respawned**, and
  the trial surfaced as a failed completion for the engine to retry with
  backoff or degrade — a hung trial can never stall ``wait_one`` forever;
- a worker that dies mid-trial (segfault, ``os._exit``, OOM-kill) is
  detected the same way: respawn plus a failed completion, never a
  deadlock.

The pool is **elastic**: :meth:`ParallelExecutor.resize` changes the
target worker count mid-run, and every involuntary recovery — watchdog
kill, worker death, speculative-loser cancellation — is expressed as the
same *leave then join* sequence (:meth:`_leave` + :meth:`_ensure_workers`),
so there is exactly one code path and one set of invariants for pool
membership.  With ``speculate=True`` the pool also detects stragglers
(per-trial deadline scaled from the running median of completed-trial
durations) and resubmits the trial to an idle worker; the first finished
copy wins and the loser's worker is cancelled through leave+join.

Because seeds are derived per trial, none of this affects scores — a
speculative copy re-runs the *same* seed, so whichever copy wins produces
bit-identical results and serial==parallel holds for the rung-barrier
searchers no matter how the pool is resized or which copies win.
"""

from __future__ import annotations

import multiprocessing
import os
import statistics
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Deque, Dict, Optional, Tuple

import numpy as np

from ..bandit.base import EvaluationResult
from ..faults.points import fault_point
from ..obs import flightrec as _flightrec
from .arena import ArenaError, SharedArena, arena_available, reap_stale
from ..telemetry.collect import (
    PAYLOAD_ATTR,
    TrialCollector,
    attach_payload,
    trial_collection,
)

__all__ = [
    "TrialExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "TIMEOUT_ERROR_PREFIX",
    "WORKER_DIED_PREFIX",
    "WORKER_HUNG_PREFIX",
    "current_worker_id",
    "current_worker_connection",
]

#: Error-string prefixes the watchdog uses; the engine keys its
#: ``timeouts`` counter off them, and tests match on them.
TIMEOUT_ERROR_PREFIX = "TrialTimeout"
WORKER_DIED_PREFIX = "WorkerDied"
WORKER_HUNG_PREFIX = "WorkerHung"

#: Set inside worker processes so evaluators (and the chaos layer) can
#: observe which worker they run on and reach its parent pipe.  ``None``
#: in the parent process and under :class:`SerialExecutor`.
_WORKER_ID: Optional[int] = None
_WORKER_CONN = None


def current_worker_id() -> Optional[int]:
    """Worker id of the calling process, or ``None`` outside a pool worker.

    Chaos policies use this to make faults a property of the *worker*
    (e.g. one consistently slow node) rather than of the trial seed, so
    injected slowness never perturbs scores.
    """
    return _WORKER_ID


def current_worker_connection():
    """The worker's duplex pipe to the parent, or ``None`` in the parent.

    Exposed for fault injection only: closing it mid-trial simulates a
    dropped worker pipe, which the parent must survive as a worker death.
    """
    return _WORKER_CONN


def _safe_evaluate(
    evaluator,
    trial_id: int,
    config: Dict[str, Any],
    budget_fraction: float,
    seed: int,
    telemetry: int = 0,
    warm_states=None,
    capture: bool = False,
) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
    """Run one evaluation under a fresh seeded generator, capturing errors.

    A non-zero ``telemetry`` bitmask installs a per-trial collector for
    the evaluation (fold/fit spans, counters, profiled timings) and
    attaches its payload to the result, which carries it back over the
    executor pipe; the engine detaches it before the result is cached or
    journaled.  ``warm_states``/``capture`` forward the engine's warm-start
    protocol to the evaluator; both are passed only when set, so evaluators
    predating the warm-start keywords keep working cold.
    """
    try:
        rng = np.random.default_rng(seed)
        kwargs = {}
        if warm_states is not None:
            kwargs["warm_states"] = warm_states
        if capture:
            kwargs["capture_checkpoints"] = True
        if telemetry:
            t0 = time.monotonic()
            with trial_collection(telemetry) as collector:
                result = evaluator.evaluate(config, budget_fraction, rng, **kwargs)
                collector.observe("trial.execute_s", time.monotonic() - t0)
            attach_payload(result, collector)
            if _WORKER_ID is not None:
                # Stamp where the evaluation physically ran; rides the same
                # sidecar and is stripped with it before caching/journaling,
                # so stored results stay byte-identical to an untraced run.
                payload = result.__dict__.get(PAYLOAD_ATTR)
                if payload is not None:
                    payload["origin"] = {"pid": os.getpid(), "worker": _WORKER_ID}
        else:
            result = evaluator.evaluate(config, budget_fraction, rng, **kwargs)
        return trial_id, True, result, None
    except Exception as exc:  # noqa: BLE001 — fault tolerance is the point
        return trial_id, False, None, f"{type(exc).__name__}: {exc}"


def _fused_evaluate(evaluator, tasks):
    """Evaluate several queued tasks as one rung-level mega-batch.

    Returns ``(payloads, mega)`` — per-task ``(trial_id, ok, result,
    error)`` tuples in task order plus the aggregate
    :class:`~repro.learners.batched.MegaBatchStats` — or ``None`` when
    fusion is unavailable (the evaluator has no ``evaluate_many``) or the
    fused call raised; the caller then falls back to per-task
    :func:`_safe_evaluate`, which produces bitwise-identical results
    because every task carries its own seed and the evaluator's plan
    memoization replays rng state on hit.

    ``evaluate_many`` is resolved on the evaluator's *class*, never
    through ``__getattr__`` delegation: wrapper evaluators (chaos
    injectors, test doubles) that override ``evaluate`` and proxy every
    other attribute to the wrapped instance must not be silently
    bypassed by the fused path.
    """
    if getattr(type(evaluator), "evaluate_many", None) is None:
        return None
    evaluate_many = evaluator.evaluate_many
    specs = []
    collectors = []
    for task in tasks:
        _token, _trial_id, config, budget_fraction, seed, telemetry, warm, capture = task
        collector = TrialCollector(flags=telemetry) if telemetry else None
        collectors.append(collector)
        specs.append(
            (config, budget_fraction, np.random.default_rng(seed), warm, bool(capture), collector)
        )
    fault_point("executor.pre_megabatch", tasks=len(tasks))
    try:
        results, mega = evaluate_many(specs)
    except Exception:  # noqa: BLE001 — per-task fallback is bitwise identical
        return None
    payloads = []
    for task, result, collector in zip(tasks, results, collectors):
        if collector is not None:
            collector.observe("trial.execute_s", float(result.cost))
        attach_payload(result, collector)
        payload_dict = result.__dict__.get(PAYLOAD_ATTR)
        if payload_dict is not None and _WORKER_ID is not None:
            payload_dict["origin"] = {"pid": os.getpid(), "worker": _WORKER_ID}
        payloads.append((task[1], True, result, None))
    return payloads, mega


def _watchdog_worker_main(evaluator, conn, worker_id: int, heartbeat_interval: float) -> None:
    """Worker process loop: recv task, evaluate, send result, heartbeat.

    The duplex pipe carries tasks parent→worker and ``("hb",)`` /
    ``("done", token, payload)`` messages worker→parent.  When
    ``heartbeat_interval`` is positive a background thread emits
    heartbeats even while an evaluation is running, so the parent can tell
    a long evaluation (heartbeats flowing) from a process wedged in
    non-Python code (heartbeats stopped); the parent passes 0 when it runs
    no hang detection, silencing the chatter entirely.  ``None`` is the
    shutdown sentinel; a closed pipe (parent gone) also ends the loop.
    """
    global _WORKER_ID, _WORKER_CONN
    _WORKER_ID = worker_id
    _WORKER_CONN = conn
    _flightrec.note("worker.start", worker=worker_id)
    stop = threading.Event()
    send_lock = threading.Lock()

    def _beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                with send_lock:
                    conn.send(("hb",))
            except (BrokenPipeError, OSError):
                return

    if heartbeat_interval > 0:
        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
    try:
        shutting_down = False
        while not shutting_down:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            fault_point("executor.worker.post_recv")
            # Pipelined pools land a rung's tasks on the pipe back to back;
            # drain whatever already arrived so shape-matched trials fuse
            # into rung-level mega-batch lanes.  Supervised pools dispatch
            # one task per worker at a time, so the drain finds nothing and
            # behaviour is unchanged.
            tasks = [task]
            try:
                while conn.poll():
                    extra = conn.recv()
                    if extra is None:
                        shutting_down = True
                        break
                    tasks.append(extra)
            except (EOFError, OSError):
                shutting_down = True
            fused = _fused_evaluate(evaluator, tasks) if len(tasks) > 1 else None
            payloads = None
            if fused is not None:
                payloads, mega = fused
                sidecar = payloads[0][2].__dict__.get(PAYLOAD_ATTR)
                if sidecar is not None and mega.trials:
                    # The mega-batch summary rides home on the first
                    # trial's sidecar; the engine pops it before the
                    # result is cached or journaled.
                    sidecar["megabatch"] = mega.as_dict()
            for position, task in enumerate(tasks):
                token, trial_id, config, budget_fraction, seed, telemetry, warm, capture = task
                if payloads is not None:
                    payload = payloads[position]
                else:
                    payload = _safe_evaluate(
                        evaluator, trial_id, config, budget_fraction, seed,
                        telemetry, warm, capture,
                    )
                try:
                    fault_point("executor.worker.pre_send")
                    with send_lock:
                        conn.send(("done", token, payload))
                except (BrokenPipeError, OSError):
                    shutting_down = True
                    break
    finally:
        stop.set()


class TrialExecutor:
    """Abstract submit/wait executor bound to one evaluator.

    Attributes
    ----------
    capacity:
        Number of trials the executor can genuinely run concurrently
        (1 for serial execution, the worker count for a process pool).
    """

    capacity: int = 1

    def bind(self, evaluator) -> None:
        """Attach the evaluator used for every subsequent submission."""
        raise NotImplementedError

    def submit(self, request) -> None:
        """Schedule a prepared request (``trial_id`` and ``seed`` set)."""
        raise NotImplementedError

    def wait_one(self) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
        """Block until one submission finishes; never raises evaluator errors."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of submitted-but-uncollected trials."""
        raise NotImplementedError

    def flush_batch(self):
        """Fuse queued submissions into one rung-level mega-batch, if able.

        The engine calls this once per :meth:`~repro.engine.core.TrialEngine.run_batch`
        after submitting the whole rung.  Executors that can co-schedule
        the queued trials — the serial executor fusing them through the
        evaluator's ``evaluate_many`` — do so and return the aggregate
        :class:`~repro.learners.batched.MegaBatchStats`; the default
        no-op returns ``None`` and trials run one by one as before.
        Fusion never changes results: the mega-batched kernels are
        bitwise-identical to the per-trial path, and any fusion error
        falls back to per-trial execution.
        """
        return None

    def shutdown(self) -> None:
        """Release any resources (idempotent)."""

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "TrialExecutor":
        """Support ``with executor: ...`` for deterministic teardown."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Shut the executor down on scope exit."""
        self.shutdown()


class SerialExecutor(TrialExecutor):
    """In-process FIFO executor — the default and the bitwise reference.

    Submissions are queued and only executed inside :meth:`wait_one`, so
    the submit/wait protocol behaves observably like a one-worker pool
    with deterministic completion order.  Running in the caller's process
    it cannot preempt an evaluation, so watchdog timeouts do not apply —
    use :class:`ParallelExecutor` (any worker count, even 1) when hung or
    crashing evaluations must be survivable.
    """

    capacity = 1

    def __init__(self) -> None:
        self._evaluator = None
        self._queue: deque = deque()
        self._completed: deque = deque()

    def bind(self, evaluator) -> None:
        """Attach the evaluator requests will run against."""
        self._evaluator = evaluator

    def submit(self, request) -> None:
        """Queue the request for lazy FIFO execution."""
        if self._evaluator is None:
            raise RuntimeError("SerialExecutor.submit called before bind()")
        self._queue.append(request)

    def flush_batch(self):
        """Fuse the queued rung through the evaluator's ``evaluate_many``.

        Converts every queued request into a mega-batch spec (the request
        seed recreates the exact rng the per-trial path would use) and
        runs them in one fused call; completions queue up for
        :meth:`wait_one` in request order.  Skipped — returning ``None``
        with the queue untouched, so per-trial execution proceeds
        bitwise-identically — when fewer than two requests are queued,
        the evaluator cannot fuse, or the fused call raised.
        """
        if len(self._queue) < 2:
            return None
        tasks = [
            (
                0,
                request.trial_id,
                request.config,
                request.budget_fraction,
                request.seed,
                getattr(request, "telemetry", 0),
                getattr(request, "warm_states", None),
                getattr(request, "capture", False),
            )
            for request in self._queue
        ]
        fused = _fused_evaluate(self._evaluator, tasks)
        if fused is None:
            return None
        payloads, mega = fused
        self._queue.clear()
        self._completed.extend(payloads)
        return mega

    def wait_one(self) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
        """Return the next fused completion, else execute the oldest request."""
        if self._completed:
            return self._completed.popleft()
        if not self._queue:
            raise RuntimeError("wait_one called with no pending trials")
        request = self._queue.popleft()
        fault_point("executor.serial.pre_execute")
        return _safe_evaluate(
            self._evaluator,
            request.trial_id,
            request.config,
            request.budget_fraction,
            request.seed,
            getattr(request, "telemetry", 0),
            getattr(request, "warm_states", None),
            getattr(request, "capture", False),
        )

    def pending(self) -> int:
        """Queued requests plus fused completions awaiting pickup."""
        return len(self._queue) + len(self._completed)


class _WorkerHandle:
    """Parent-side view of one worker process: pipe, queued tasks, deadlines."""

    __slots__ = (
        "worker_id",
        "process",
        "conn",
        "tasks",
        "deadline",
        "last_heartbeat",
        "started",
        "retiring",
    )

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        #: ``(token, trial_id, task)`` of dispatched-but-unfinished trials,
        #: in dispatch order.  Watchdog-supervised pools keep at most one
        #: entry; pipelined pools queue several so the worker never idles
        #: waiting for a parent round-trip between trials.  The full task
        #: tuple is kept so a straggling trial can be resubmitted verbatim
        #: to another worker.
        self.tasks: Deque[Tuple[int, int, Tuple]] = deque()
        self.deadline: Optional[float] = None
        self.last_heartbeat = time.monotonic()
        #: Dispatch time of the head task (straggler detection input).
        self.started: Optional[float] = None
        #: A retiring worker finishes its queued tasks, receives nothing
        #: new, and leaves the pool when idle (elastic shrink).
        self.retiring = False

    @property
    def idle(self) -> bool:
        return not self.tasks


class ParallelExecutor(TrialExecutor):
    """Watchdog-supervised elastic process pool shipping the evaluator once.

    Parameters
    ----------
    n_workers:
        Initial worker process count; defaults to ``min_workers`` when
        elastic bounds are given, else ``os.cpu_count()`` (min 1).
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` where
        available (Linux), which inherits the evaluator's data arrays
        copy-on-write and makes even closure-carrying evaluators usable;
        falls back to the platform default elsewhere, in which case the
        evaluator must be picklable (see
        ``SubsetCVEvaluator.__getstate__``).
    trial_timeout:
        Per-trial wall-clock deadline in seconds, measured from dispatch
        to a worker.  On expiry the worker is killed and respawned and the
        trial surfaces as a failed completion with a
        ``"TrialTimeout: ..."`` error, which the engine retries (with
        backoff) or degrades.  ``None`` (default) disables the deadline.
    heartbeat_interval:
        Seconds between worker heartbeats.
    heartbeat_timeout:
        Declare a worker *hung* when no heartbeat has arrived for this
        many seconds while it runs a trial (the worker is killed and
        respawned like a timeout).  ``None`` (default) disables the check;
        heartbeats are then only used to keep liveness metadata fresh.
    poll_interval:
        Parent-side supervision granularity: how often ``wait_one`` wakes
        to run watchdog checks while no completion is ready.
    min_workers, max_workers:
        Elastic bounds.  When either is given the pool resizes itself:
        it grows by one worker (up to ``max_workers``) whenever a
        submission finds no free worker, and shrinks (down to
        ``min_workers``) whenever a worker goes idle with an empty
        backlog — so rung barriers naturally breathe the pool in and out.
        :meth:`resize` clamps into these bounds too.  Both default to
        ``None`` (fixed-size pool, resizable only via :meth:`resize`).
    speculate:
        Enable straggler detection + speculative resubmission.  Forces the
        supervised (non-pipelined) dispatch cycle so per-trial start times
        are known.  A trial whose runtime exceeds
        ``max(straggler_min_s, straggler_factor * median completed
        duration)`` is duplicated onto an idle worker with the *same*
        seed; the first finished copy wins (ties resolved deterministically
        in favour of the lowest attempt index) and the loser's worker is
        cancelled through the leave+join path.  Identical seeds make the
        winner's result bitwise-independent of which copy won.
    straggler_factor:
        Multiple of the running median duration past which a trial counts
        as straggling.
    straggler_min_s:
        Absolute floor for the straggler deadline, so sub-millisecond
        medians do not cause speculation storms.
    straggler_min_samples:
        Completed-trial durations required before straggler detection
        activates.
    transport:
        How the evaluator's dataset reaches workers.  ``"auto"``
        (default) publishes it once into a shared-memory arena
        (:mod:`repro.engine.arena`) whenever the start method pickles
        the evaluator (``spawn``; ``fork`` inherits it copy-on-write and
        ships nothing either way), ``"arena"`` forces publishing even
        under ``fork``, and ``"pickle"`` disables the arena entirely.
        Publishing failures (platform without shared memory, size
        limits) silently fall back to pickle transport — the transport
        changes, the evaluated bytes do not.  The pool owns the arena's
        lifetime: segments are unlinked in :meth:`shutdown`, survive
        watchdog respawns (the new worker re-attaches), and stale
        segments from a SIGKILLed run are reaped before every publish.

    Notes
    -----
    A crashed worker (``os._exit``, segfault, OOM-kill) never sinks the
    search: its in-flight trials are surfaced as failed completions — which
    the engine retries or degrades — and the pool is rebalanced back to
    its target size through the same :meth:`_leave` + :meth:`_ensure_workers`
    sequence used by :meth:`resize`.  Supervision happens entirely in the
    parent over per-worker duplex pipes; there is no shared queue a dying
    worker could leave locked.

    When **no watchdog is configured** (``trial_timeout`` and
    ``heartbeat_timeout`` both ``None``, ``speculate`` off) the pool runs
    *pipelined*: tasks are queued onto the least-loaded worker immediately
    instead of waiting for an idle one, workers skip the heartbeat thread
    entirely, and ``wait_one`` blocks on the pipes instead of polling.
    This removes the per-trial parent round-trip and the heartbeat chatter
    that used to make small-trial workloads *slower* at two workers than
    one; with a watchdog (or speculation) the stricter
    dispatch-one-collect-one cycle is kept so per-trial deadlines stay
    meaningful.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        trial_timeout: Optional[float] = None,
        heartbeat_interval: float = 0.2,
        heartbeat_timeout: Optional[float] = None,
        poll_interval: float = 0.05,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        speculate: bool = False,
        straggler_factor: float = 4.0,
        straggler_min_s: float = 0.25,
        straggler_min_samples: int = 3,
        transport: str = "auto",
    ) -> None:
        import os

        if transport not in ("auto", "arena", "pickle"):
            raise ValueError(
                f"transport must be 'auto', 'arena' or 'pickle', got {transport!r}"
            )
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if trial_timeout is not None and trial_timeout <= 0:
            raise ValueError(f"trial_timeout must be > 0 or None, got {trial_timeout}")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(f"heartbeat_timeout must be > 0 or None, got {heartbeat_timeout}")
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be > 0, got {heartbeat_interval}")
        if min_workers is not None and min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if max_workers is not None and max_workers < (min_workers or 1):
            raise ValueError(
                f"max_workers must be >= min_workers, got {max_workers} < {min_workers or 1}"
            )
        if straggler_factor <= 1.0:
            raise ValueError(f"straggler_factor must be > 1, got {straggler_factor}")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self._elastic = min_workers is not None or max_workers is not None
        if n_workers is None:
            n_workers = min_workers if min_workers is not None else max(1, os.cpu_count() or 1)
            if max_workers is not None:
                n_workers = min(n_workers, max_workers)
        if min_workers is not None and n_workers < min_workers:
            raise ValueError(f"n_workers={n_workers} below min_workers={min_workers}")
        if max_workers is not None and n_workers > max_workers:
            raise ValueError(f"n_workers={n_workers} above max_workers={max_workers}")
        self.n_workers = n_workers
        #: Concurrency the engine may rely on.  Elastic pools report their
        #: upper bound so callers keep enough trials in flight to trigger
        #: growth.
        self.capacity = max_workers if self._elastic and max_workers else n_workers
        self.trial_timeout = trial_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self.speculate = speculate
        self.straggler_factor = straggler_factor
        self.straggler_min_s = straggler_min_s
        self.straggler_min_samples = straggler_min_samples
        #: No per-trial deadline, no hang detection and no speculation ->
        #: workers can be kept fed with queued tasks and pipes waited on
        #: without polling.
        self._pipelined = trial_timeout is None and heartbeat_timeout is None and not speculate
        if start_method is None and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        self._context = multiprocessing.get_context(start_method)
        self.transport = transport
        self._arena: Optional[SharedArena] = None
        self._evaluator = None
        self._workers: Dict[int, _WorkerHandle] = {}
        self._backlog: Deque[Tuple] = deque()
        self._completed: Deque[Tuple[int, bool, Optional[EvaluationResult], Optional[str]]] = deque()
        self._next_token = 0
        self._next_worker_id = 0
        #: Completed-trial wall-clock durations feeding the straggler
        #: median (bounded window so the estimate tracks the workload).
        self._durations: Deque[float] = deque(maxlen=64)
        #: trial_id -> {token: attempt_index} for trials with more than
        #: one live copy in flight (speculation groups).
        self._spec_groups: Dict[int, Dict[int, int]] = {}
        #: Lifetime counts of watchdog interventions (observability).
        self.respawns = 0
        self.timeouts = 0
        #: Lifetime counts of elastic/speculative activity.
        self.resizes = 0
        self.joins = 0
        self.leaves = 0
        self.speculations = 0
        self.speculation_wins = 0

    # -- lifecycle -------------------------------------------------------------

    def bind(self, evaluator) -> None:
        """Attach the evaluator; a new one forces a pool restart."""
        if evaluator is not self._evaluator:
            self.shutdown()
            self._evaluator = evaluator
            self._publish_arena()

    def _publish_arena(self) -> None:
        """Publish the evaluator's dataset into shared memory, if worthwhile.

        Only runs when the pool's start method pickles the evaluator to
        workers (``"arena"`` forces it regardless), the evaluator class
        supports :meth:`~repro.core.evaluator.SubsetCVEvaluator.share_memory`,
        and the platform has shared memory at all.  Any publishing
        failure degrades silently to pickle transport.  Stale segments
        left by a SIGKILLed run (dead owner pid in the segment name) are
        reaped first, so crashed runs cannot leak ``/dev/shm`` space past
        their successor.
        """
        if self.transport == "pickle" or self._evaluator is None:
            return
        if self.transport == "auto" and self._context.get_start_method() == "fork":
            return  # fork inherits the evaluator copy-on-write; nothing to ship
        if getattr(type(self._evaluator), "share_memory", None) is None:
            return
        if not arena_available():
            return
        reap_stale()
        try:
            arena = SharedArena()
            self._evaluator.share_memory(arena)
        except ArenaError:
            return
        self._arena = arena

    def _spawn_worker(self) -> _WorkerHandle:
        fault_point("executor.pool.pre_spawn")
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_watchdog_worker_main,
            args=(
                self._evaluator,
                child_conn,
                worker_id,
                # The heartbeat thread only serves hang detection; without
                # it, silence the per-worker chatter entirely.
                self.heartbeat_interval if self.heartbeat_timeout is not None else 0.0,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(worker_id, process, parent_conn)
        self._workers[worker_id] = handle
        self.joins += 1
        return handle

    def _active(self) -> int:
        """Workers counting toward the target size (excludes retiring)."""
        return sum(1 for h in self._workers.values() if not h.retiring)

    def _ensure_workers(self) -> int:
        """Join workers until the active pool matches ``n_workers``.

        This is the single *join* path: initial spawn, watchdog respawn
        and elastic growth all come through here.  Returns how many
        workers joined.
        """
        if self._evaluator is None:
            raise RuntimeError("ParallelExecutor.submit called before bind()")
        spawned = 0
        while self._active() < self.n_workers:
            self._spawn_worker()
            spawned += 1
        return spawned

    def _leave(self, handle: _WorkerHandle, graceful: bool) -> bool:
        """The single *leave* path: remove one worker from the pool.

        ``graceful`` sends the shutdown sentinel and waits briefly before
        killing; the involuntary paths (watchdog, death, speculation-loser
        cancel) kill outright.  Returns ``False`` when the worker already
        left (idempotence — a worker can be reported dead through several
        paths and must only leave once).
        """
        if self._workers.pop(handle.worker_id, None) is None:
            return False
        fault_point("executor.pool.pre_leave")
        if graceful:
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            handle.process.join(timeout=0.5)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        self.leaves += 1
        return True

    # -- elastic resize --------------------------------------------------------

    def resize(self, n: int) -> int:
        """Change the target worker count mid-run; returns the new target.

        Growth joins workers immediately (and feeds them from the
        backlog); shrinkage retires idle workers at once and marks busy
        ones *retiring* — they finish their queued trials, receive
        nothing new, and leave when idle.  Only scheduling changes:
        per-trial seeds are derived from the trial, not the worker, so
        results are unaffected by any resize sequence.  The requested
        size is clamped into ``[min_workers, max_workers]``.
        """
        n = int(n)
        if n < 1:
            raise ValueError(f"resize target must be >= 1, got {n}")
        if self.min_workers is not None:
            n = max(n, self.min_workers)
        if self.max_workers is not None:
            n = min(n, self.max_workers)
        if n == self.n_workers:
            return self.n_workers
        self.n_workers = n
        if not self._elastic:
            self.capacity = n
        self.resizes += 1
        if self._evaluator is None or not self._workers:
            return self.n_workers
        if self._active() < self.n_workers:
            self._ensure_workers()
            self._feed_idle()
            return self.n_workers
        surplus = self._active() - self.n_workers
        # Newest workers leave first; idle ones immediately, busy ones
        # once their queued trials drain.
        for handle in sorted(self._workers.values(), key=lambda h: -h.worker_id):
            if surplus <= 0:
                break
            if handle.retiring:
                continue
            if handle.idle:
                self._leave(handle, graceful=True)
            else:
                handle.retiring = True
            surplus -= 1
        return self.n_workers

    def pool_stats(self) -> Dict[str, int]:
        """Live pool gauges: target/alive/retiring sizes plus lifecycle counters.

        Read by the engine's shutdown snapshot and the /metrics exporter;
        every value is a plain attribute or an O(workers) scan, safe to
        call from another thread between dispatches.
        """
        return {
            "workers": self.n_workers,
            "alive": len(self._workers),
            "retiring": sum(1 for h in self._workers.values() if h.retiring),
            "respawns": self.respawns,
            "timeouts": self.timeouts,
            "resizes": self.resizes,
            "joins": self.joins,
            "leaves": self.leaves,
            "speculations": self.speculations,
            "speculation_wins": self.speculation_wins,
            "arena": int(self._arena is not None),
        }

    # -- submission ------------------------------------------------------------

    def submit(self, request) -> None:
        """Dispatch to a worker, or queue until one frees up.

        Pipelined pools (no watchdog) queue onto the least-loaded live
        worker immediately — a rung's whole batch lands on the worker
        pipes up front, so workers run trial after trial back-to-back.
        Watchdog-supervised pools dispatch one task per worker at a time
        to keep per-trial deadlines meaningful.  Elastic pools grow by
        one worker when a submission finds every worker busy.
        """
        self._ensure_workers()
        token = self._next_token
        self._next_token += 1
        task = (
            token,
            request.trial_id,
            request.config,
            request.budget_fraction,
            request.seed,
            getattr(request, "telemetry", 0),
            getattr(request, "warm_states", None),
            getattr(request, "capture", False),
        )
        handle = self._free_worker()
        if handle is None and self._elastic:
            active = self._active()
            if self.max_workers is None or active < self.max_workers:
                self.resize(active + 1)
                handle = self._free_worker()
        if handle is not None:
            self._dispatch(handle, task)
            return
        self._backlog.append(task)

    def _free_worker(self) -> Optional[_WorkerHandle]:
        """The worker the next task should land on, or ``None`` if all busy.

        Pipelined pools treat any live non-retiring worker as free (tasks
        queue); supervised pools require a genuinely idle worker.
        """
        candidates = [
            h
            for h in self._workers.values()
            if not h.retiring and h.process.is_alive() and (self._pipelined or h.idle)
        ]
        if not candidates:
            return None
        if self._pipelined:
            best = min(candidates, key=lambda h: len(h.tasks))
            # A loaded "free" worker means the pool is saturated — let an
            # elastic pool grow instead of queueing deeper.
            if self._elastic and best.tasks:
                active = self._active()
                if self.max_workers is None or active < self.max_workers:
                    return None
            return best
        return candidates[0]

    def _dispatch(self, handle: _WorkerHandle, task: Tuple) -> None:
        now = time.monotonic()
        handle.tasks.append((task[0], task[1], task))
        if len(handle.tasks) == 1:
            handle.started = now
            if self.trial_timeout:
                handle.deadline = now + self.trial_timeout
        handle.last_heartbeat = now
        try:
            fault_point("executor.pool.pre_send")
            handle.conn.send(task)
        except (BrokenPipeError, OSError):
            self._retire(handle, f"{WORKER_DIED_PREFIX}: worker pipe closed before dispatch")

    def _feed_backlog(self, handle: _WorkerHandle) -> None:
        if handle.retiring:
            return
        if self._pipelined:
            while self._backlog:
                self._dispatch(handle, self._backlog.popleft())
        elif self._backlog:
            self._dispatch(handle, self._backlog.popleft())

    def _feed_idle(self) -> None:
        """Feed backlog tasks to every idle worker (post-join rebalance)."""
        for handle in list(self._workers.values()):
            if not self._backlog:
                return
            if handle.idle and not handle.retiring and handle.process.is_alive():
                self._feed_backlog(handle)

    # -- completion ------------------------------------------------------------

    def pending(self) -> int:
        """In-flight trials plus queued tasks plus uncollected completions.

        Distinct *trials*, not dispatched copies: a speculated trial with
        two live copies still counts once, since exactly one completion
        will surface.
        """
        in_flight = {
            trial_id for handle in self._workers.values() for _, trial_id, _ in handle.tasks
        }
        return len(in_flight) + len(self._backlog) + len(self._completed)

    def wait_one(self) -> Tuple[int, bool, Optional[EvaluationResult], Optional[str]]:
        """Next completion in any order; watchdog failures count as completions."""
        while True:
            if self._completed:
                return self._completed.popleft()
            if not self.pending():
                raise RuntimeError("wait_one called with no pending trials")
            # Without a watchdog there is nothing to periodically check:
            # block on the pipes (a dead worker's EOF wakes the wait too).
            self._pump(None if self._pipelined else self.poll_interval)
            if self._completed:
                return self._completed.popleft()
            self._run_watchdog()

    def _pump(self, timeout: Optional[float]) -> None:
        """Drain every readable worker pipe, waiting up to ``timeout``."""
        conns = {handle.conn: handle for handle in self._workers.values()}
        if not conns:
            return
        try:
            ready = mp_connection.wait(list(conns), timeout)
        except OSError:
            ready = []
        # Drain in dispatch order (head token) so that when both copies of
        # a speculated trial are ready in the same wake-up, the lowest
        # attempt index deterministically wins.
        ready_handles = [conns[conn] for conn in ready]
        ready_handles.sort(key=lambda h: h.tasks[0][0] if h.tasks else float("inf"))
        for handle in ready_handles:
            self._drain(handle)

    def _drain(self, handle: _WorkerHandle) -> None:
        """Consume every queued message from one worker's pipe."""
        while True:
            if handle.worker_id not in self._workers:
                return  # cancelled/retired while this pump iterated
            try:
                if not handle.conn.poll():
                    return
                message = handle.conn.recv()
                fault_point("executor.pool.post_recv")
            except (EOFError, OSError):
                self._retire(handle, f"{WORKER_DIED_PREFIX}: worker process exited unexpectedly")
                return
            kind = message[0]
            if kind == "hb":
                handle.last_heartbeat = time.monotonic()
            elif kind == "done":
                _, token, payload = message
                if handle.tasks and handle.tasks[0][0] == token:
                    now = time.monotonic()
                    _, trial_id, _task = handle.tasks.popleft()
                    if handle.started is not None and not self._pipelined:
                        self._durations.append(now - handle.started)
                    handle.started = now if handle.tasks else None
                    handle.deadline = (
                        now + self.trial_timeout
                        if self.trial_timeout and handle.tasks
                        else None
                    )
                    self._settle_completion(trial_id, token, payload)
                    if handle.worker_id not in self._workers:
                        return  # this worker left (elastic shrink below won't run)
                    if handle.retiring and handle.idle:
                        self._leave(handle, graceful=True)
                        return
                    self._feed_backlog(handle)
                    if (
                        self._elastic
                        and not self._backlog
                        and self._active() > (self.min_workers or 1)
                        and all(h.idle for h in self._workers.values())
                    ):
                        # The rung drained: breathe the pool back down to
                        # its floor (the next burst grows it again).
                        self.resize(self.min_workers or 1)
                        if handle.worker_id not in self._workers:
                            return
                # A mismatched token is a completion the watchdog already
                # resolved as a failure; drop it — the retry owns the trial.

    def _settle_completion(self, trial_id: int, token: int, payload: Tuple) -> None:
        """Record one finished copy; resolve its speculation group if any.

        For speculated trials the first *successful* copy wins and every
        other live copy is cancelled by retiring its worker through the
        leave+join path.  A failed copy defers to outstanding copies and
        only surfaces when it is the last one standing — so a straggler
        that eventually errors cannot fail a trial whose speculative twin
        succeeded.
        """
        group = self._spec_groups.get(trial_id)
        if group is None:
            self._completed.append(payload)
            return
        attempt = group.pop(token, None)
        if attempt is None:
            return  # copy already resolved; drop the duplicate result
        ok = payload[1]
        if not ok and group:
            return  # a live copy may still succeed — let it try
        del self._spec_groups[trial_id]
        if ok and attempt > 0:
            self.speculation_wins += 1
        self._completed.append(payload)
        # Cancel the losing copies: their workers leave (discarding the
        # in-flight duplicate) and replacements join immediately.
        for loser_token in list(group):
            for other in list(self._workers.values()):
                if any(t == loser_token for t, _, _ in other.tasks):
                    fault_point("executor.pool.pre_cancel")
                    other.tasks.clear()
                    other.deadline = None
                    other.started = None
                    self._leave(other, graceful=False)
                    break
        if group and self._evaluator is not None:
            self._ensure_workers()
            self._feed_idle()

    def _run_watchdog(self) -> None:
        """Kill/respawn dead, overdue or silent workers; surface their trials."""
        now = time.monotonic()
        for handle in list(self._workers.values()):
            if not handle.process.is_alive():
                # Salvage any result that raced the death before declaring it.
                self._drain(handle)
                if handle.worker_id in self._workers:
                    self._retire(
                        handle, f"{WORKER_DIED_PREFIX}: worker process exited unexpectedly"
                    )
                continue
            if handle.idle:
                continue
            if handle.conn.poll():
                continue  # a completion is waiting; let the next pump collect it
            if handle.deadline is not None and now > handle.deadline:
                self.timeouts += 1
                self._retire(
                    handle,
                    f"{TIMEOUT_ERROR_PREFIX}: trial exceeded trial_timeout="
                    f"{self.trial_timeout}s",
                )
            elif (
                self.heartbeat_timeout is not None
                and now - handle.last_heartbeat > self.heartbeat_timeout
            ):
                self.timeouts += 1
                self._retire(
                    handle,
                    f"{WORKER_HUNG_PREFIX}: no heartbeat for over "
                    f"{self.heartbeat_timeout}s",
                )
        if self.speculate:
            self._check_stragglers(now)

    def _check_stragglers(self, now: float) -> None:
        """Duplicate overdue trials onto idle workers (same seed, new token)."""
        if len(self._durations) < self.straggler_min_samples:
            return
        threshold = max(
            self.straggler_min_s, self.straggler_factor * statistics.median(self._durations)
        )
        for handle in list(self._workers.values()):
            if handle.idle or handle.retiring or handle.started is None:
                continue
            token, trial_id, task = handle.tasks[0]
            if trial_id in self._spec_groups:
                continue  # already speculated
            if now - handle.started <= threshold:
                continue
            idle = next(
                (
                    h
                    for h in self._workers.values()
                    if h.idle and not h.retiring and h.process.is_alive()
                ),
                None,
            )
            if idle is None:
                return  # no spare capacity; try again next poll
            spec_token = self._next_token
            self._next_token += 1
            spec_task = (spec_token,) + task[1:]
            self._spec_groups[trial_id] = {token: 0, spec_token: 1}
            self.speculations += 1
            self._dispatch(idle, spec_task)

    def _retire(self, handle: _WorkerHandle, error: str) -> None:
        """One worker leaves involuntarily; its trials fail; the pool rejoins.

        This *is* the leave+join path: the worker is removed via
        :meth:`_leave`, its in-flight trials surface as failed completions
        (unless a speculative twin is still running), and
        :meth:`_ensure_workers` brings the pool back to the current target
        size — the same sequence :meth:`resize` uses, so watchdog recovery
        and elastic scaling share one set of invariants.  Idempotent per
        handle: a worker can be reported dead through several paths (pipe
        EOF while draining, ``is_alive`` in the watchdog) and must only
        leave once.
        """
        tasks = list(handle.tasks)
        handle.tasks.clear()
        handle.deadline = None
        handle.started = None
        if not self._leave(handle, graceful=False):
            return
        recorder = _flightrec.installed()
        if recorder is not None:
            recorder.record(
                "worker.retire",
                worker=handle.worker_id,
                error=error,
                trials=[trial_id for _, trial_id, _ in tasks],
            )
            recorder.dump("watchdog-kill")
        for token, trial_id, _task in tasks:
            group = self._spec_groups.get(trial_id)
            if group is not None:
                group.pop(token, None)
                if group:
                    continue  # the surviving copy owns the trial now
                del self._spec_groups[trial_id]
            self._completed.append((trial_id, False, None, error))
        if self._evaluator is not None:
            self.respawns += self._ensure_workers()
            self._feed_idle()

    # -- teardown --------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker (graceful, then forceful) and forget all state."""
        for handle in self._workers.values():
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 1.0
        for handle in self._workers.values():
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._workers.clear()
        self._backlog.clear()
        self._completed.clear()
        self._durations.clear()
        self._spec_groups.clear()
        if self._arena is not None:
            # Unpublish before unlinking so a later pickle of the same
            # evaluator (serial reuse, a different pool) carries real
            # arrays again instead of dangling refs.
            if self._evaluator is not None:
                try:
                    self._evaluator.unshare_memory()
                except Exception:  # noqa: BLE001 - teardown must not raise
                    pass
            self._arena.close()
            self._arena = None
