"""Memoization of evaluation results across rungs, brackets and searches.

HyperBand-family searchers re-evaluate the same configuration at the same
budget surprisingly often: a finite candidate pool is cycled across
brackets, duplicate survivors reach the next rung twice, and repeated
``fit()`` calls re-run whole schedules.  Because the engine derives every
trial's seed from ``(config, budget, attempt)`` — see
:func:`~repro.engine.protocol.derive_seed` — a repeated pair would
recompute *exactly* the same result, so serving it from memory is
behaviour-preserving, not an approximation.

:class:`EvaluationCache` is a small LRU keyed by
``(config_key, budget_fraction, seed)`` with hit/miss counters that the
CLI and the benchmark report as a hit rate.

The cache is **thread-safe**: every operation (lookup, store, clear,
length) holds an internal :class:`threading.RLock`, and LRU eviction
happens atomically inside :meth:`EvaluationCache.put`.  This is what lets
the multi-tenant service daemon (:mod:`repro.serve`) hand one
process-lifetime cache to many concurrently-running
:class:`~repro.engine.core.TrialEngine` instances so overlapping jobs
share each other's warm results.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from ..bandit.base import EvaluationResult

__all__ = ["EvaluationCache"]


def _normalise_budget(budget_fraction: float) -> float:
    """Round the budget the same way seed derivation does."""
    return round(float(budget_fraction), 12)


class EvaluationCache:
    """LRU map ``(config_key, budget_fraction, seed) -> EvaluationResult``.

    Parameters
    ----------
    max_entries:
        Optional capacity; the least-recently-used entry is evicted once
        the cache grows past it.  ``None`` (default) means unbounded,
        which is appropriate for single-search lifetimes where the number
        of distinct (config, budget) pairs is modest.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, EvaluationResult]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """Number of stored results."""
        with self._lock:
            return len(self._entries)

    @staticmethod
    def make_key(
        config_key: Tuple,
        budget_fraction: float,
        seed: int,
        warm_source: Optional[float] = None,
    ) -> Tuple:
        """The exact lookup key used by :meth:`get` and :meth:`put`.

        ``warm_source`` — the donor budget of a warm-started trial — adds a
        fourth element when present, so a warm evaluation (whose result
        depends on the lower-rung parameters it resumed from) never aliases
        the cold evaluation of the same ``(config, budget, seed)``.  Cold
        keys stay 3-tuples, keeping existing journals and tests valid.
        """
        key = (config_key, _normalise_budget(budget_fraction), int(seed))
        if warm_source is not None:
            key = key + (_normalise_budget(warm_source),)
        return key

    def get(
        self,
        config_key: Tuple,
        budget_fraction: float,
        seed: int,
        warm_source: Optional[float] = None,
    ) -> Optional[EvaluationResult]:
        """Return the memoized result or ``None``, updating hit/miss counts."""
        key = self.make_key(config_key, budget_fraction, seed, warm_source)
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(
        self,
        config_key: Tuple,
        budget_fraction: float,
        seed: int,
        result: EvaluationResult,
        warm_source: Optional[float] = None,
    ) -> None:
        """Store ``result``, evicting the LRU entry when over capacity."""
        key = self.make_key(config_key, budget_fraction, seed, warm_source)
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            if self.max_entries is not None and len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory (0.0 when never queried)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
