"""Directory-level durability helpers.

``os.replace`` makes a rename *atomic*, not *durable*: until the parent
directory's metadata reaches the platter, a power cut can roll the
rename back even though the data blocks of the temp file were fsync'd.
POSIX requires an ``fsync`` on the directory fd to pin the new directory
entry (the classic "fsync the parent after rename" rule).  Every atomic
publish in this codebase — registry ``job.json``/``spec.json`` writes and
checkpoint spills — follows its ``os.replace`` with :func:`fsync_dir`.

The helper is deliberately forgiving: some filesystems (and most
non-POSIX platforms) refuse ``open(dir)`` or directory ``fsync``; in that
case the rename is still atomic, just not power-loss-ordered, and we
degrade silently rather than fail the write.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["fsync_dir"]


def fsync_dir(path: Union[str, Path]) -> bool:
    """fsync a directory so a completed rename survives power loss.

    Returns ``True`` when the directory was fsync'd, ``False`` when the
    platform or filesystem does not support it (the caller's rename
    remains atomic either way).
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(str(path), flags)
    except OSError:
        return False
    try:
        os.fsync(fd)
    except OSError:
        return False
    finally:
        os.close(fd)
    return True
