"""Fault injection: a chaos wrapper that attacks the engine on purpose.

The retry/degrade/watchdog/journal machinery is only trustworthy if it is
routinely exercised against real failures.  :class:`ChaosExecutor` wraps
any :class:`~repro.engine.executors.TrialExecutor` and, per evaluation,
injects the failure modes a production HPO service actually sees:

- **raise** — the evaluator throws (transient library/data errors);
- **hang** — the evaluation sleeps past any reasonable deadline, which
  only a watchdog ``trial_timeout`` can recover from;
- **exit** — the worker process dies mid-trial via ``os._exit`` (stand-in
  for segfaults and OOM kills); in a non-worker process this downgrades
  to a raise so a serial run is never killed;
- **pipe-drop** — the worker closes its pipe to the parent mid-trial
  (stand-in for a network partition or fd exhaustion), which the parent
  must survive as a worker death; downgraded to a raise in-process;
- **nan** / **corrupt** — the evaluation "succeeds" but returns a NaN or
  ``+inf`` score, which must be sanitised before it poisons ranking.

Fault decisions are drawn from the **engine-provided per-trial RNG**, so
they are a pure function of ``(root_seed, config, budget, attempt)``:
identical under any executor and worker count (chaos runs are themselves
reproducible and journal-resumable), while each retry of a failing trial
draws a fresh decision — exactly how transient faults behave.

One fault class is deliberately *not* seed-driven: **slow workers**
(``slow_workers``) pin extra latency to specific worker ids, modelling a
degraded node rather than a degraded trial.  Slowness consumes no RNG
draw and never changes scores, so a slow-worker-only policy is
bitwise-transparent — which is exactly what makes it the right probe for
straggler detection and speculative resubmission (the speculative copy
lands on a *different* worker and genuinely runs faster).

``tools/chaos_suite.py`` drives these modes end to end and asserts the
engine's invariants: the search completes, degraded trials carry the
sentinel, and a journaled run resumed after a crash matches the unbroken
run bit for bit.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..bandit.base import EvaluationResult
from ..telemetry.collect import current_collector
from .executors import TrialExecutor, current_worker_connection, current_worker_id

__all__ = ["ChaosError", "ChaosPolicy", "ChaosExecutor", "DataCorruption"]


@dataclass
class DataCorruption:
    """Deterministic dataset-level corruption for guard-layer chaos tests.

    Where :class:`ChaosPolicy` attacks the *execution* of trials, this
    attacks the *data* they are trained on — the failure modes the guard
    layer (:mod:`repro.guard`) exists to absorb.  :meth:`apply` is a pure
    function of ``(X, y, seed)``, so corrupted runs stay reproducible and
    serial/parallel comparisons remain meaningful.

    Attributes
    ----------
    nan_cell_rate:
        Fraction of feature cells set to NaN.
    label_flip_rate:
        Fraction of classification labels replaced by a different class.
    truncate_fraction:
        Fraction of rows dropped from the end of the (shuffled) dataset.
    constant_columns:
        Number of leading feature columns overwritten with a constant.
    seed:
        Seed of the corruption RNG.
    """

    nan_cell_rate: float = 0.0
    label_flip_rate: float = 0.0
    truncate_fraction: float = 0.0
    constant_columns: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("nan_cell_rate", "label_flip_rate", "truncate_fraction"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.constant_columns < 0:
            raise ValueError(f"constant_columns must be >= 0, got {self.constant_columns}")

    def apply(self, X: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return corrupted copies of ``X, y`` (inputs untouched)."""
        rng = np.random.default_rng(self.seed)
        X = np.array(X, dtype=float, copy=True)
        y = np.array(y, copy=True)
        if self.truncate_fraction > 0.0 and len(y) > 1:
            keep = max(1, int(round(len(y) * (1.0 - self.truncate_fraction))))
            order = rng.permutation(len(y))[:keep]
            X, y = X[order], y[order]
        if self.constant_columns:
            n_cols = min(self.constant_columns, X.shape[1])
            X[:, :n_cols] = 1.0
        if self.nan_cell_rate > 0.0 and X.size:
            cells = rng.random(X.shape) < self.nan_cell_rate
            X[cells] = np.nan
        if self.label_flip_rate > 0.0 and len(y):
            classes = np.unique(y)
            if len(classes) > 1:
                flip = np.flatnonzero(rng.random(len(y)) < self.label_flip_rate)
                for row in flip:
                    others = classes[classes != y[row]]
                    y[row] = others[rng.integers(len(others))]
        return X, y


class ChaosError(RuntimeError):
    """The exception raised by an injected evaluator failure."""


@dataclass
class ChaosPolicy:
    """Per-evaluation fault probabilities and shapes.

    Rates are checked in the order ``exit``, ``pipe_drop``, ``hang``,
    ``raise``, ``nan``, ``corrupt`` against a single uniform draw, so
    their sum is the total fault probability and must stay ``<= 1``.
    A policy whose rates are all zero consumes **no** RNG draw, so a
    slow-workers-only policy leaves trial results bitwise-identical to a
    chaos-free run.

    Attributes
    ----------
    exit_rate:
        Probability the worker process dies via ``os._exit(13)``
        (downgraded to :class:`ChaosError` outside worker processes).
    pipe_drop_rate:
        Probability the worker closes its parent pipe mid-trial and
        carries on — the parent sees EOF, retires the worker through the
        leave+join path, and retries the trial (downgraded to
        :class:`ChaosError` outside worker processes).
    hang_rate:
        Probability the evaluation sleeps for ``hang_seconds`` before
        proceeding normally.
    failure_rate:
        Probability of raising :class:`ChaosError`.
    nan_rate:
        Probability of returning a result whose score/mean are NaN.
    corrupt_rate:
        Probability of returning a result whose score is ``+inf`` — the
        nastiest corruption, since unsanitised it would *win* the search.
    hang_seconds:
        Sleep duration of an injected hang; pick it larger than the
        executor's ``trial_timeout`` to exercise the watchdog.
    slow_workers:
        Worker ids that sleep ``slow_seconds`` before every evaluation —
        a consistently degraded node.  Not seed-driven and score-neutral
        (see module docstring); ignored under a serial executor.
    slow_seconds:
        Extra latency injected per evaluation on a slow worker.
    """

    exit_rate: float = 0.0
    hang_rate: float = 0.0
    failure_rate: float = 0.0
    nan_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0
    pipe_drop_rate: float = 0.0
    slow_workers: Tuple[int, ...] = ()
    slow_seconds: float = 2.0

    def __post_init__(self) -> None:
        rates = (
            self.exit_rate, self.pipe_drop_rate, self.hang_rate,
            self.failure_rate, self.nan_rate, self.corrupt_rate,
        )
        if any(rate < 0.0 for rate in rates) or sum(rates) > 1.0:
            raise ValueError(f"chaos rates must be >= 0 and sum to <= 1, got {rates}")
        if self.slow_seconds < 0.0:
            raise ValueError(f"slow_seconds must be >= 0, got {self.slow_seconds}")
        self.slow_workers = tuple(self.slow_workers)

    @property
    def total_rate(self) -> float:
        """Summed probability of all seed-driven faults."""
        return (
            self.exit_rate + self.pipe_drop_rate + self.hang_rate
            + self.failure_rate + self.nan_rate + self.corrupt_rate
        )


class _ChaosEvaluator:
    """Evaluator proxy that rolls the fault dice before delegating.

    Picklable as long as the wrapped evaluator is, so it travels to pool
    workers exactly like the real evaluator would.
    """

    def __init__(self, evaluator, policy: ChaosPolicy) -> None:
        self._evaluator = evaluator
        self._policy = policy

    def evaluate(self, config, budget_fraction, rng) -> EvaluationResult:
        """Maybe inject a fault, then (if still alive) really evaluate.

        When a telemetry collector is installed, every injected fault is
        counted under ``chaos.injected.<mode>``.  Counters ride home on
        the evaluation result, so hang/nan/corrupt injections reach the
        parent's registry (the engine salvages counters from non-finite
        results before discarding them); raise/exit injections lose
        their result and surface through the engine's retry/failure
        counters instead.
        """
        policy = self._policy
        collector = current_collector()
        if policy.slow_workers:
            worker_id = current_worker_id()
            if worker_id is not None and worker_id in policy.slow_workers:
                if collector is not None:
                    collector.inc("chaos.injected.slow")
                time.sleep(policy.slow_seconds)
        # All-zero policies draw nothing, keeping slow-worker-only chaos
        # bitwise-transparent against a chaos-free run.
        if policy.total_rate <= 0.0:
            return self._evaluator.evaluate(config, budget_fraction, rng)
        draw = float(rng.random())
        edges = self._fault_edges()
        if draw < edges[0]:
            if collector is not None:
                collector.inc("chaos.injected.exit")
            if multiprocessing.current_process().name != "MainProcess":
                os._exit(13)
            raise ChaosError("injected worker exit (downgraded to raise in-process)")
        if draw < edges[1]:
            if collector is not None:
                collector.inc("chaos.injected.pipe_drop")
            conn = current_worker_connection()
            if conn is None:
                raise ChaosError("injected pipe drop (downgraded to raise in-process)")
            # Drop the pipe and carry on evaluating: the parent sees EOF
            # mid-trial and must retire this worker through leave+join.
            try:
                conn.close()
            except OSError:
                pass
        elif draw < edges[2]:
            if collector is not None:
                collector.inc("chaos.injected.hang")
            time.sleep(policy.hang_seconds)
        elif draw < edges[3]:
            if collector is not None:
                collector.inc("chaos.injected.raise")
            raise ChaosError("injected evaluator failure")
        result = self._evaluator.evaluate(config, budget_fraction, rng)
        if draw < edges[4]:
            if collector is not None:
                collector.inc("chaos.injected.nan")
            result.score = float("nan")
            result.mean = float("nan")
        elif draw < edges[5]:
            if collector is not None:
                collector.inc("chaos.injected.corrupt")
            result.score = float("inf")
        return result

    def _fault_edges(self) -> Tuple[float, float, float, float, float, float]:
        """Cumulative rate boundaries in injection-priority order."""
        policy = self._policy
        exit_edge = policy.exit_rate
        drop_edge = exit_edge + policy.pipe_drop_rate
        hang_edge = drop_edge + policy.hang_rate
        raise_edge = hang_edge + policy.failure_rate
        nan_edge = raise_edge + policy.nan_rate
        corrupt_edge = nan_edge + policy.corrupt_rate
        return exit_edge, drop_edge, hang_edge, raise_edge, nan_edge, corrupt_edge


class ChaosExecutor(TrialExecutor):
    """Executor decorator injecting :class:`ChaosPolicy` faults per trial.

    Parameters
    ----------
    inner:
        The executor that actually runs trials (serial or parallel); all
        protocol calls delegate to it.
    policy:
        Fault probabilities; defaults to an all-zero policy (pass-through).

    Examples
    --------
    ::

        executor = ChaosExecutor(
            ParallelExecutor(n_workers=4, trial_timeout=5.0),
            ChaosPolicy(failure_rate=0.1, hang_rate=0.05, hang_seconds=30),
        )
        engine = TrialEngine(executor=executor, max_retries=2)
    """

    def __init__(self, inner: TrialExecutor, policy: Optional[ChaosPolicy] = None) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else ChaosPolicy()
        self._wrapped: Optional[_ChaosEvaluator] = None

    @property
    def capacity(self) -> int:
        """Concurrency of the wrapped executor."""
        return self.inner.capacity

    def resize(self, n: int) -> int:
        """Forward an elastic resize to the wrapped executor.

        Raises :class:`AttributeError` when the inner executor is not
        elastic (e.g. :class:`~repro.engine.executors.SerialExecutor`) —
        the same contract callers get without the wrapper.
        """
        return self.inner.resize(n)

    def __getattr__(self, name: str):
        """Expose the inner executor's extended surface through the wrapper.

        The executor protocol methods are delegated explicitly above;
        everything else — elastic counters (``joins``, ``leaves``),
        speculation counters (``speculations``, ``speculation_wins``),
        pool sizing attributes (``n_workers``, ``min_workers``,
        ``max_workers``) — resolves against the inner executor so wrapping
        never hides capability from pool-aware callers.
        """
        if name.startswith("_") or "inner" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.inner, name)

    def bind(self, evaluator) -> None:
        """Wrap the evaluator in the fault-injecting proxy and bind that.

        The proxy is reused across re-binds of the same evaluator so the
        wrapped executor's is-this-a-new-evaluator check (which restarts
        worker pools) keeps working.
        """
        if self._wrapped is None or self._wrapped._evaluator is not evaluator:
            self._wrapped = _ChaosEvaluator(evaluator, self.policy)
        self.inner.bind(self._wrapped)

    def submit(self, request) -> None:
        """Delegate to the wrapped executor."""
        self.inner.submit(request)

    def wait_one(self):
        """Delegate to the wrapped executor."""
        return self.inner.wait_one()

    def pending(self) -> int:
        """Delegate to the wrapped executor."""
        return self.inner.pending()

    def shutdown(self) -> None:
        """Delegate to the wrapped executor."""
        self.inner.shutdown()
