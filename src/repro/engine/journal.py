"""Crash-safe run journal: a write-ahead log of trial outcomes.

Long HyperBand-family runs are exactly the workloads whose bracket
structure makes a restart-from-scratch expensive, yet a process crash
used to lose every completed evaluation.  :class:`RunJournal` fixes that
with the classic write-ahead-log recipe:

- the first line of the file is a **header** recording the run's identity
  (root seed, optional metadata such as the searcher name and a
  :func:`space_fingerprint` of the search space);
- every *executed* terminal :class:`~repro.engine.protocol.TrialOutcome`
  — successes and degraded failures alike — is appended as one JSON line
  and ``fsync``'d **before** it becomes visible to the searcher, so a
  crash at any instant leaves a valid prefix on disk (possibly plus one
  torn final line, which :meth:`RunJournal.read` tolerates and drops).

Because the engine derives every trial's seed purely from
``(root_seed, config, budget, attempt)`` — see
:func:`~repro.engine.protocol.derive_seed` — a journaled outcome is not
an approximation of what a re-run would produce, it *is* what a re-run
would produce.  Resume therefore needs no searcher-side checkpointing at
all: :class:`~repro.engine.core.TrialEngine` replays the journal into a
lookaside map at :meth:`~repro.engine.core.TrialEngine.bind` time, the
searcher re-executes its (deterministic) schedule, and every already-
durable trial is served instantly with ``resumed=True`` while only the
lost tail is actually evaluated.  The resumed run is bitwise identical
to the uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..bandit.base import EvaluationResult
from ..faults.points import fault_point
from ..results import config_from_jsonable, config_to_jsonable
from ..space import config_key
from .cache import EvaluationCache
from .protocol import TrialOutcome, derive_seed

__all__ = [
    "JOURNAL_VERSION",
    "JournalEntry",
    "JournalError",
    "RunJournal",
    "replay_key",
    "space_fingerprint",
]

#: On-disk format version; bump when the record schema changes.
JOURNAL_VERSION = 1


class JournalError(ValueError):
    """A journal file is unusable: bad header, version, or identity mismatch."""


def space_fingerprint(space) -> str:
    """Short stable digest of a search space's parameters.

    Built from the parameters' ``repr`` (all of which are
    value-complete: ``Categorical('q', [1, 2])`` etc.), so two processes
    constructing the same space agree on the fingerprint and a journal
    recorded against one space refuses to resume against another.
    """
    payload = repr([repr(p) for p in space.parameters]).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


@dataclass
class JournalEntry:
    """One durable trial outcome, as reconstructed from a journal line.

    Attributes
    ----------
    config, budget_fraction, iteration, bracket, trial_id, seed, attempt:
        The originating request's fields (``seed``/``attempt`` are those
        of the final attempt that settled the trial).
    attempts:
        Number of executions the original run performed for this trial.
    failed:
        True when the trial was degraded to the sentinel result.
    error:
        ``"ExcType: message"`` of the last failure, if any.
    warm:
        Donor budget fraction the trial warm-started from, or ``None``
        for a cold evaluation.  Part of the replay identity: a warm
        outcome only replays for a submission warm-starting from the same
        source.
    result:
        The terminal :class:`~repro.bandit.base.EvaluationResult`
        (the sentinel for degraded trials).
    seq:
        1-based position of this record in the journal (assigned by
        :meth:`RunJournal.read`); replayed outcomes carry it into trace
        spans so traces reference the write-ahead log.
    """

    config: Dict[str, Any]
    budget_fraction: float
    iteration: int
    bracket: int
    trial_id: int
    seed: Optional[int]
    attempt: int
    attempts: int
    failed: bool
    error: Optional[str]
    result: EvaluationResult
    seq: int = 0
    warm: Optional[float] = None


def _entry_to_dict(outcome: TrialOutcome) -> Dict[str, Any]:
    """Serialise an executed terminal outcome to a journal record."""
    request = outcome.request
    result = outcome.result
    return {
        "type": "outcome",
        "trial_id": request.trial_id,
        "config": config_to_jsonable(request.config),
        "budget_fraction": request.budget_fraction,
        "iteration": request.iteration,
        "bracket": request.bracket,
        "seed": request.seed,
        "attempt": request.attempt,
        "attempts": outcome.attempts,
        "failed": outcome.failed,
        "error": outcome.error,
        "warm": request.warm_source,
        "result": {
            "mean": result.mean,
            "std": result.std,
            "score": result.score,
            "gamma": result.gamma,
            "fold_scores": list(result.fold_scores),
            "n_instances": result.n_instances,
            "cost": result.cost,
            "guard_events": list(getattr(result, "guard_events", []) or []),
        },
    }


def _entry_from_dict(data: Dict[str, Any]) -> JournalEntry:
    """Inverse of :func:`_entry_to_dict`; raises ``KeyError`` when malformed."""
    return JournalEntry(
        config=config_from_jsonable(data["config"]),
        budget_fraction=float(data["budget_fraction"]),
        iteration=int(data.get("iteration", 0)),
        bracket=int(data.get("bracket", 0)),
        trial_id=int(data.get("trial_id", -1)),
        seed=data.get("seed"),
        attempt=int(data.get("attempt", 0)),
        attempts=int(data.get("attempts", 1)),
        failed=bool(data.get("failed", False)),
        error=data.get("error"),
        result=EvaluationResult(**data["result"]),
        warm=data.get("warm"),
    )


def replay_key(entry: JournalEntry, root_seed: Optional[int]) -> Tuple:
    """The engine lookup key a fresh submission of this trial would use.

    Fresh submissions always carry ``attempt=0``, so the key is built from
    the attempt-0 derived seed regardless of how many retries the original
    run needed before the trial settled.  A warm outcome's key carries its
    donor budget as a fourth element, matching
    :meth:`~repro.engine.cache.EvaluationCache.make_key` — so it only
    replays for a resubmission that would warm-start from the same source.
    """
    key = config_key(entry.config)
    seed = derive_seed(root_seed, key, entry.budget_fraction, 0)
    return EvaluationCache.make_key(key, entry.budget_fraction, seed, entry.warm)


def _normalise_root(root_seed: Optional[int]) -> int:
    """Match :func:`~repro.engine.protocol.derive_seed`'s None-is-zero rule."""
    return int(root_seed) if root_seed is not None else 0


class RunJournal:
    """Append-only fsync'd JSONL log of a run's executed trial outcomes.

    Parameters
    ----------
    path:
        Journal file location; created (with parents) on first open.
    fsync:
        Force each record to stable storage before it is considered
        durable (default).  ``False`` trades crash safety for speed —
        useful for benchmarking the journaling overhead itself.

    Examples
    --------
    Engines accept the journal (or just its path) directly::

        engine = TrialEngine(executor=SerialExecutor(),
                             journal=RunJournal("run.wal"))
        searcher = HyperBand(space, evaluator, random_state=0, engine=engine)
        searcher.fit(configurations=pool)     # every outcome lands in run.wal

    Re-running the same search against the same journal replays every
    durable trial and only executes what the interrupted run lost.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.header: Optional[Dict[str, Any]] = None
        self._handle = None
        #: Journal lines dropped at open because of a torn/corrupt tail.
        self.dropped_records = 0
        #: 1-based sequence number of the last durable outcome record.
        self.last_seq = 0

    # -- reading ---------------------------------------------------------------

    @staticmethod
    def read(path: Union[str, Path]) -> Tuple[Dict[str, Any], List[JournalEntry], int]:
        """Parse a journal file into ``(header, entries, n_dropped)``.

        A crash can only ever truncate the file mid-line, so parsing stops
        at the first undecodable or incomplete record and reports how many
        trailing lines were dropped; everything before it is trusted.  A
        missing/invalid header or an unsupported version raises
        :class:`JournalError` — that is corruption of a different kind and
        must not be silently "resumed" from.
        """
        path = Path(path)
        raw = path.read_text()
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise JournalError(f"journal {path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(f"journal {path} has an unreadable header: {exc}") from exc
        if not isinstance(header, dict) or header.get("type") != "header":
            raise JournalError(f"journal {path} does not start with a header record")
        version = header.get("version")
        if version != JOURNAL_VERSION:
            raise JournalError(
                f"journal {path} has version {version!r}; this build reads {JOURNAL_VERSION}"
            )
        entries: List[JournalEntry] = []
        dropped = 0
        for index, line in enumerate(lines[1:]):
            try:
                data = json.loads(line)
                if data.get("type") != "outcome":
                    raise KeyError("type")
                entry = _entry_from_dict(data)
                entry.seq = len(entries) + 1
                entries.append(entry)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                dropped = len(lines) - 1 - index
                break
        return header, entries, dropped

    # -- writing ---------------------------------------------------------------

    def open(
        self,
        root_seed: Optional[int],
        metadata: Optional[Dict[str, Any]] = None,
    ) -> List[JournalEntry]:
        """Open for appending, returning every already-durable entry.

        A fresh file gets a header recording ``root_seed`` and
        ``metadata``; an existing file is replayed and its header verified
        against them — resuming with a different seed, searcher or space
        raises :class:`JournalError` instead of silently mixing two runs.
        Idempotent: re-opening an already-open journal just re-verifies.
        """
        if self._handle is not None:
            self.check_identity(root_seed, metadata)
            return []
        entries: List[JournalEntry] = []
        if self.path.exists() and self.path.stat().st_size > 0:
            fault_point("journal.open.pre_replay", path=str(self.path))
            self.header, entries, self.dropped_records = self.read(self.path)
            self.last_seq = len(entries)
            self.check_identity(root_seed, metadata)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.header = {
                "type": "header",
                "version": JOURNAL_VERSION,
                "root_seed": _normalise_root(root_seed),
                "metadata": dict(metadata or {}),
            }
            self._handle = self.path.open("w")
            self._write_line(self.header, site="journal.header")
            return []
        self._handle = self.path.open("a")
        return entries

    def check_identity(
        self, root_seed: Optional[int], metadata: Optional[Dict[str, Any]] = None
    ) -> None:
        """Raise :class:`JournalError` unless header matches this run's identity.

        Metadata keys present in **both** the header and ``metadata`` must
        agree; keys only one side knows about are ignored, so adding a new
        metadata field does not invalidate old journals.
        """
        if self.header is None:
            raise JournalError("journal has no header; call open() first")
        recorded = self.header.get("root_seed")
        if recorded != _normalise_root(root_seed):
            raise JournalError(
                f"journal {self.path} was recorded with root_seed={recorded}, "
                f"cannot resume with root_seed={_normalise_root(root_seed)}"
            )
        stored = self.header.get("metadata") or {}
        for key, value in (metadata or {}).items():
            if key in stored and stored[key] != value:
                raise JournalError(
                    f"journal {self.path} metadata mismatch on {key!r}: "
                    f"recorded {stored[key]!r}, run has {value!r}"
                )

    def append(self, outcome: TrialOutcome) -> int:
        """Durably log one executed terminal outcome (success or degraded).

        Called by the engine *before* the outcome is released to the
        searcher — the write-ahead ordering that makes every observed
        result recoverable.  Returns the record's 1-based sequence
        number, which the telemetry layer stamps onto trial spans.
        """
        if self._handle is None:
            raise JournalError("journal not open; call open() before append()")
        self._write_line(_entry_to_dict(outcome), site="journal.append")
        self.last_seq += 1
        return self.last_seq

    def _write_line(self, record: Dict[str, Any], site: str = "journal.append") -> None:
        fault_point(site + ".pre_write", handle=self._handle)
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        if self.fsync:
            fault_point(site + ".pre_fsync", handle=self._handle)
            os.fsync(self._handle.fileno())
            fault_point(site + ".post_fsync", handle=self._handle)

    def close(self) -> None:
        """Close the underlying file (idempotent); reopening replays it."""
        if self._handle is not None:
            fault_point("journal.close.pre", handle=self._handle)
            self._handle.close()
            self._handle = None

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "RunJournal":
        """Support ``with RunJournal(path) as journal:``."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the file on scope exit."""
        self.close()
