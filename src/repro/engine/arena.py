"""Zero-copy shared-memory data plane for cross-process evaluators.

:class:`~repro.engine.executors.ParallelExecutor` ships the evaluator to
worker processes whenever the start method pickles (``spawn``, and every
watchdog respawn under it).  The dataset arrays dominate that payload —
hundreds of megabytes serialized per spawn for a large run.  This module
publishes them **once per run** as named POSIX shared-memory blocks and
replaces the arrays inside the pickled evaluator with tiny
:class:`ArenaRef` placeholders; workers attach read-only views instead of
receiving copies.

Integrity and lifecycle are the hard part, not the mapping:

- Every published block carries a keyed **blake2b digest** of its bytes;
  :func:`attach` re-hashes the mapped buffer and refuses a mismatch
  (:class:`ArenaIntegrityError`) — a torn or recycled segment can never
  silently feed wrong data into a fold.
- Block names embed the **owner pid** (``repro-arena-<pid>-<tag>-<key>``)
  so :func:`reap_stale` can identify segments whose owner died without
  unlinking (SIGKILL mid-run) and remove them before the next publish —
  a crashed run cannot leak ``/dev/shm`` space past its successor.
- Attaching processes bypass multiprocessing's **resource tracker**: on
  Python < 3.13 ``SharedMemory(create=False)`` registers the segment,
  and the tracker would otherwise *unlink the parent's segment* when the
  first worker exits (watchdog kill, elastic shrink).  The parent alone
  owns unlinking, in :meth:`SharedArena.close`.
- Publish, attach and unlink are :func:`~repro.faults.points.fault_point`
  sites (``arena.create`` / ``arena.attach`` / ``arena.unlink``), so the
  crash-schedule explorer can enumerate failures at each step.

When shared memory is unavailable (platform without ``/dev/shm``, size
limits, permissions) publishing raises :class:`ArenaError` and the
executor falls back to plain pickling — the transport changes, results
do not (workers verify nothing less either way; the evaluator bytes are
identical).
"""

from __future__ import annotations

import hashlib
import os
import secrets
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..faults.points import fault_point

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

__all__ = [
    "ARENA_PREFIX",
    "ArenaError",
    "ArenaIntegrityError",
    "ArenaRef",
    "SharedArena",
    "arena_available",
    "attach",
    "list_segments",
    "reap_stale",
]

#: Leading component of every arena segment name; the reaper only ever
#: touches names with this prefix, so unrelated shared memory is safe.
ARENA_PREFIX = "repro-arena"

#: Where POSIX shared memory appears as files (Linux).  Reaping degrades
#: to a no-op where this directory does not exist.
_SHM_DIR = "/dev/shm"

#: Digest size (bytes) of the content hash carried on every ref.
_DIGEST_BYTES = 16


class ArenaError(RuntimeError):
    """Shared-memory publishing or attachment failed (fallback: pickle)."""


class ArenaIntegrityError(ArenaError):
    """An attached segment's bytes do not match the publisher's digest."""


def arena_available() -> bool:
    """Whether this platform can publish shared-memory segments at all."""
    return shared_memory is not None


def _content_digest(view) -> str:
    """Keyed blake2b hex digest of a buffer's raw bytes."""
    return hashlib.blake2b(bytes(view), digest_size=_DIGEST_BYTES).hexdigest()


@dataclass(frozen=True)
class ArenaRef:
    """Placeholder for one published array: everything attach needs.

    Travels inside the pickled evaluator in place of the array itself.
    ``shape``/``dtype`` reconstruct the view; ``digest`` lets the worker
    prove it mapped the bytes the parent published; ``nbytes`` guards
    against a same-name segment of the wrong size before hashing.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str
    digest: str
    nbytes: int


class SharedArena:
    """Parent-side owner of one run's published shared-memory blocks.

    The publishing process is the only one that ever unlinks — workers
    attach and detach views, but segment lifetime is bound to
    :meth:`close` (or the owner's death plus a successor's
    :func:`reap_stale`).  Use as a context manager for scope-bound runs.
    """

    def __init__(self) -> None:
        if not arena_available():
            raise ArenaError("multiprocessing.shared_memory is unavailable on this platform")
        self._tag = secrets.token_hex(4)
        self._segments: Dict[str, "shared_memory.SharedMemory"] = {}
        self.refs: Dict[str, ArenaRef] = {}

    def publish(self, key: str, array: np.ndarray) -> ArenaRef:
        """Copy one array into a fresh named segment; return its ref.

        The segment name embeds the owner pid (for stale reaping) and a
        per-arena random tag (so two arenas in one process never
        collide).  Raises :class:`ArenaError` on any OS-level failure —
        the caller degrades to pickle transport.
        """
        array = np.ascontiguousarray(array)
        name = f"{ARENA_PREFIX}-{os.getpid()}-{self._tag}-{key}"
        fault_point("arena.create", key=key, nbytes=int(array.nbytes))
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, int(array.nbytes))
            )
        except OSError as exc:
            raise ArenaError(f"could not create shared segment {name!r}: {exc}") from exc
        try:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            ref = ArenaRef(
                name=name,
                shape=tuple(int(n) for n in array.shape),
                dtype=str(array.dtype),
                digest=_content_digest(segment.buf[: array.nbytes]),
                nbytes=int(array.nbytes),
            )
        except Exception:
            segment.close()
            try:
                segment.unlink()
            except OSError:
                pass
            raise
        self._segments[name] = segment
        self.refs[key] = ref
        return ref

    def publish_all(self, arrays: Dict[str, np.ndarray]) -> Dict[str, ArenaRef]:
        """Publish several arrays atomically: all succeed or all unlink."""
        try:
            return {key: self.publish(key, array) for key, array in arrays.items()}
        except Exception:
            self.close()
            raise

    def close(self) -> None:
        """Unlink every published segment (idempotent, never raises).

        Called from the executor's shutdown path — which runs on engine
        close, after watchdog respawns, and on elastic drain alike — so
        a clean process exit can never leak ``/dev/shm`` space.
        """
        for name, segment in list(self._segments.items()):
            fault_point("arena.unlink", key=name)
            try:
                segment.close()
            except (OSError, BufferError):
                pass
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):
                pass
            self._segments.pop(name, None)
        self.refs.clear()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()


#: Process-local registry of attached segments: the mapped buffers must
#: outlive every array view handed out, so handles live for the process.
_ATTACHED: Dict[str, "shared_memory.SharedMemory"] = {}


def _open_untracked(name: str) -> "shared_memory.SharedMemory":
    """Map an existing segment without registering it with the tracker.

    On Python < 3.13 ``SharedMemory(create=False)`` registers the name
    with the resource tracker, which then unlinks it when *any* attached
    process exits — destroying the owner's segment under live siblings.
    Registration is suppressed for the duration of the constructor; the
    owner process alone is registered and alone unlinks.
    """
    if resource_tracker is None:
        return shared_memory.SharedMemory(name=name, create=False)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


def attach(ref: ArenaRef) -> np.ndarray:
    """Map one published block read-only and verify its content digest.

    Safe to call repeatedly for the same ref (the mapping is cached
    per-process).  The segment is never registered with the resource
    tracker, so this process's exit can never unlink the owner's segment.
    """
    if not arena_available():
        raise ArenaError("multiprocessing.shared_memory is unavailable on this platform")
    fault_point("arena.attach", key=ref.name)
    segment = _ATTACHED.get(ref.name)
    if segment is None:
        try:
            segment = _open_untracked(ref.name)
        except (OSError, FileNotFoundError) as exc:
            raise ArenaError(f"shared segment {ref.name!r} is gone: {exc}") from exc
        if segment.size < ref.nbytes:
            segment.close()
            raise ArenaIntegrityError(
                f"shared segment {ref.name!r} holds {segment.size} bytes, "
                f"expected at least {ref.nbytes}"
            )
        digest = _content_digest(segment.buf[: ref.nbytes])
        if digest != ref.digest:
            segment.close()
            raise ArenaIntegrityError(
                f"shared segment {ref.name!r} content digest {digest} does not "
                f"match the published {ref.digest}"
            )
        _ATTACHED[ref.name] = segment
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    view.flags.writeable = False
    return view


def detach_all() -> None:
    """Close every cached attachment (test hygiene; never unlinks)."""
    for name, segment in list(_ATTACHED.items()):
        try:
            segment.close()
        except (OSError, BufferError):
            pass
        _ATTACHED.pop(name, None)


def list_segments(shm_dir: str = _SHM_DIR) -> List[str]:
    """Names of every live arena segment on this machine (Linux only)."""
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return []
    return sorted(entry for entry in entries if entry.startswith(ARENA_PREFIX))


def _owner_pid(segment_name: str) -> Optional[int]:
    """Owner pid embedded in an arena segment name, if parseable."""
    parts = segment_name.split("-")
    # repro-arena-<pid>-<tag>-<key>
    if len(parts) < 5 or parts[0] != "repro" or parts[1] != "arena":
        return None
    try:
        return int(parts[2])
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    return True


def reap_stale(shm_dir: str = _SHM_DIR) -> List[str]:
    """Unlink arena segments whose owner process is dead; return their names.

    Run before every publish: a run killed with SIGKILL never executes
    its unlink path, so its successor sweeps the orphans.  Only names
    matching the arena convention with a dead embedded pid are touched.
    """
    reaped: List[str] = []
    for segment_name in list_segments(shm_dir):
        pid = _owner_pid(segment_name)
        if pid is None or pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            # Plain (tracked) open: unlink() below unregisters the very
            # registration this constructor makes, so they balance out.
            stale = shared_memory.SharedMemory(name=segment_name, create=False)
        except (OSError, FileNotFoundError):
            continue
        fault_point("arena.unlink", key=segment_name, stale=True)
        try:
            stale.close()
            stale.unlink()
        except (OSError, FileNotFoundError):
            continue
        reaped.append(segment_name)
    return reaped
