"""repro — reproduction of "Enhancing the Performance of Bandit-based
Hyperparameter Optimization" (Chen, Wen, Chen & Huang, ICDE 2024).

The package layers:

- :mod:`repro.learners`, :mod:`repro.cluster`, :mod:`repro.model_selection`,
  :mod:`repro.metrics`, :mod:`repro.datasets` — from-scratch substrate
  replacing scikit-learn for this reproduction;
- :mod:`repro.space`, :mod:`repro.bandit` — search spaces and the vanilla
  bandit-based HPO methods (random, SHA, HyperBand, BOHB, ASHA);
- :mod:`repro.engine` — the trial-execution engine: deterministic
  per-trial seeding, memoization, retry/degrade fault tolerance and
  pluggable serial/process-pool executors;
- :mod:`repro.guard` — the data-integrity guard layer: dataset
  validation/repair, typed degradation events and the policies
  (``strict``/``repair``/``warn``/``off``) threaded through grouping,
  folds, learners and scoring;
- :mod:`repro.telemetry` — zero-dependency observability: structured
  run/bracket/rung/trial/fold spans, a deterministic metrics registry and
  opt-in profiling hooks, threaded through engine, searchers and
  evaluator (see ``docs/OBSERVABILITY.md``);
- :mod:`repro.core` — the paper's contribution: instance grouping,
  general+special fold construction and the variance/size-aware metric,
  plugged into the bandit methods as SHA+/HB+/BOHB+/ASHA+;
- :mod:`repro.experiments` — runners regenerating every table and figure.

Quickstart::

    from repro import optimize
    from repro.datasets import load_dataset
    from repro.experiments import paper_search_space

    ds = load_dataset("australian")
    outcome = optimize(ds.X_train, ds.y_train, paper_search_space(4),
                       method="sha+", metric=ds.metric, random_state=0)
    print(outcome.best_config, outcome.model.score(ds.X_test, ds.y_test))
"""

from .bandit import (
    ASHA,
    BOHB,
    PASHA,
    BaseSearcher,
    EvaluationResult,
    HyperBand,
    RandomSearch,
    SearchResult,
    SuccessiveHalving,
    Trial,
)
from .core import (
    GeneralSpecialFolds,
    InstanceGrouping,
    MLPModelFactory,
    OptimizationOutcome,
    ScoreParams,
    SubsetCVEvaluator,
    beta_weight,
    generate_groups,
    grouped_evaluator,
    make_searcher,
    optimize,
    ucb_score,
    vanilla_evaluator,
)
from .engine import (
    EvaluationCache,
    ParallelExecutor,
    SerialExecutor,
    TrialEngine,
    TrialOutcome,
    TrialRequest,
)
from .guard import (
    GUARD_POLICIES,
    DataReport,
    GuardError,
    GuardEvent,
    GuardLog,
    GuardWarning,
    validate_dataset,
)
from .results import load_result, result_from_dict, result_to_dict, save_result
from .space import Categorical, Float, Integer, SearchSpace
from .telemetry import MetricsRegistry, Telemetry, TraceSink, Tracer, profiled

__version__ = "1.0.0"

__all__ = [
    "ASHA",
    "BOHB",
    "PASHA",
    "BaseSearcher",
    "load_result",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "Categorical",
    "EvaluationResult",
    "Float",
    "GUARD_POLICIES",
    "DataReport",
    "GuardError",
    "GuardEvent",
    "GuardLog",
    "GuardWarning",
    "validate_dataset",
    "GeneralSpecialFolds",
    "HyperBand",
    "InstanceGrouping",
    "Integer",
    "MLPModelFactory",
    "OptimizationOutcome",
    "RandomSearch",
    "ScoreParams",
    "EvaluationCache",
    "ParallelExecutor",
    "SearchResult",
    "SearchSpace",
    "SerialExecutor",
    "SubsetCVEvaluator",
    "SuccessiveHalving",
    "Trial",
    "TrialEngine",
    "TrialOutcome",
    "TrialRequest",
    "MetricsRegistry",
    "Telemetry",
    "TraceSink",
    "Tracer",
    "profiled",
    "beta_weight",
    "generate_groups",
    "grouped_evaluator",
    "make_searcher",
    "optimize",
    "ucb_score",
    "vanilla_evaluator",
]
